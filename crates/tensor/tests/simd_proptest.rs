//! Property tests pinning the SIMD kernels to their scalar references.
//!
//! Lane-wise kernels ([`Unary`], [`Binary`], [`Ternary`], the fused
//! gated activation) must be **bit-identical** to scalar for every
//! input bit pattern — NaN payloads excepted (both paths must produce
//! *a* NaN, but x86 scalar/vector payload propagation is unspecified).
//! Horizontal reductions are only tolerance-checked (the 8-accumulator
//! fold changes association order), and their dispatch is flag-gated.
//!
//! Coverage deliberately includes the awkward cases: lengths 0, 1, 7,
//! 8, 9 (remainder lanes around one vector), 4095 (many vectors plus a
//! 7-element tail), unaligned slice starts (offsets 1/2/3/5 floats off
//! a 32-byte boundary), and special values (±0, ±inf, NaN, subnormals,
//! branch-boundary inputs of the activation kernels) injected into
//! otherwise random data.
//!
//! All comparisons use the forced entry points (`try_*_avx2` vs
//! `simd::scalar::*`), so they are race-free and skip cleanly on
//! machines without AVX2.

use proptest::prelude::*;
use traffic_tensor::simd::{self, scalar, Binary, Ternary, Unary};

/// Lengths around vector boundaries, plus empty and a big odd size.
const LENS: [usize; 7] = [0, 1, 7, 8, 9, 32, 4095];
/// Slice start offsets: element 0 of a fresh Vec is 32-byte aligned
/// often enough that these exercise genuinely unaligned loads.
const OFFSETS: [usize; 4] = [1, 2, 3, 5];
/// Pool large enough for every (offset, len) window.
const POOL: usize = 4110;

fn bits_eq(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// Random finite data with special values and activation branch
/// boundaries scattered through it.
fn decorated_pool() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-50.0f32..50.0, POOL).prop_map(|mut v| {
        const SPECIALS: [f32; 12] = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            1.0e-40, // subnormal
            f32::MAX,
            f32::MIN_POSITIVE,
            0.25, // tanh poly/exp seam
            -0.25,
            9.02,  // tanh saturation seam
            -88.0, // exp underflow neighbourhood
        ];
        for (k, i) in (0..v.len()).step_by(13).enumerate() {
            v[i] = SPECIALS[k % SPECIALS.len()];
        }
        v
    })
}

fn unary_ops() -> Vec<Unary> {
    vec![
        Unary::AddS(0.37),
        Unary::MulS(-1.7),
        Unary::SqMulS(0.001),
        Unary::Neg,
        Unary::Abs,
        Unary::MaxS(0.0),
        Unary::MinS(2.5),
        Unary::Tanh,
        Unary::Sigmoid,
    ]
}

fn binary_ops() -> Vec<Binary> {
    vec![
        Binary::Add,
        Binary::Sub,
        Binary::Mul,
        Binary::Div,
        Binary::Axpy(0.3),
        Binary::Axpy(-0.01),
        Binary::ScaleAdd(0.9),
        Binary::Lerp(0.9, 0.1),
        Binary::SqLerp(0.999, 0.001),
        Binary::TanhBwd,
        Binary::SigmoidBwd,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unary_kernels_bit_identical(pool in decorated_pool()) {
        for op in unary_ops() {
            for &off in &OFFSETS {
                for &n in &LENS {
                    let src = &pool[off..off + n];
                    let mut want = vec![0.0f32; n];
                    scalar::unary(op, src, &mut want);
                    let mut got = vec![0.0f32; n];
                    if !simd::try_unary_avx2(op, src, &mut got) {
                        return Ok(()); // no AVX2 on this host
                    }
                    for i in 0..n {
                        prop_assert!(
                            bits_eq(got[i], want[i]),
                            "{op:?} lane {i}/{n} off {off}: {:08x} vs {:08x} (x={})",
                            got[i].to_bits(), want[i].to_bits(), src[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binary_kernels_bit_identical(pa in decorated_pool(), pb in decorated_pool()) {
        for op in binary_ops() {
            for &off in &OFFSETS {
                for &n in &LENS {
                    let a = &pa[off..off + n];
                    let b = &pb[off + 1..off + 1 + n]; // different misalignment
                    let mut want = vec![0.0f32; n];
                    scalar::binary(op, a, b, &mut want);
                    let mut got = vec![0.0f32; n];
                    if !simd::try_binary_avx2(op, a, b, &mut got) {
                        return Ok(());
                    }
                    for i in 0..n {
                        prop_assert!(
                            bits_eq(got[i], want[i]),
                            "{op:?} lane {i}/{n} off {off}: {:08x} vs {:08x} (a={}, b={})",
                            got[i].to_bits(), want[i].to_bits(), a[i], b[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn adam_update_bit_identical(
        pp in decorated_pool(),
        pm in decorated_pool(),
        pv in decorated_pool(),
        inv_bc1 in 0.5f32..2.0,
        inv_bc2 in 0.5f32..2.0,
    ) {
        let op = Ternary::AdamUpdate { inv_bc1, inv_bc2, eps: 1e-8, lr: 1e-3 };
        for &off in &OFFSETS {
            for &n in &LENS {
                let m = &pm[off..off + n];
                let v = &pv[off + 2..off + 2 + n];
                let mut want: Vec<f32> = pp[off + 1..off + 1 + n].to_vec();
                scalar::ternary_assign(op, &mut want, m, v);
                let mut got: Vec<f32> = pp[off + 1..off + 1 + n].to_vec();
                if !simd::try_ternary_assign_avx2(op, &mut got, m, v) {
                    return Ok(());
                }
                for i in 0..n {
                    prop_assert!(
                        bits_eq(got[i], want[i]),
                        "adam lane {i}/{n} off {off}: {:08x} vs {:08x}",
                        got[i].to_bits(), want[i].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn gated_kernels_bit_identical(pf in decorated_pool(), pg in decorated_pool()) {
        for &off in &OFFSETS {
            for &n in &LENS {
                let f = &pf[off..off + n];
                let g = &pg[off + 3..off + 3 + n];
                // Forward.
                let (mut t0, mut s0, mut o0) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
                scalar::gated_fwd(f, g, &mut t0, &mut s0, &mut o0);
                let (mut t1, mut s1, mut o1) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
                if !simd::try_gated_fwd_avx2(f, g, &mut t1, &mut s1, &mut o1) {
                    return Ok(());
                }
                for i in 0..n {
                    prop_assert!(bits_eq(t1[i], t0[i]), "gated t lane {i}/{n}");
                    prop_assert!(bits_eq(s1[i], s0[i]), "gated s lane {i}/{n}");
                    prop_assert!(bits_eq(o1[i], o0[i]), "gated out lane {i}/{n}");
                }
                // Backward, fed with the scalar forward's activations.
                let (mut gf0, mut gg0) = (vec![0.0f32; n], vec![0.0f32; n]);
                scalar::gated_bwd(f, &t0, &s0, &mut gf0, &mut gg0);
                let (mut gf1, mut gg1) = (vec![0.0f32; n], vec![0.0f32; n]);
                if !simd::try_gated_bwd_avx2(f, &t0, &s0, &mut gf1, &mut gg1) {
                    return Ok(());
                }
                for i in 0..n {
                    prop_assert!(bits_eq(gf1[i], gf0[i]), "gated gf lane {i}/{n}");
                    prop_assert!(bits_eq(gg1[i], gg0[i]), "gated gg lane {i}/{n}");
                }
            }
        }
    }

    #[test]
    fn simd_sum_within_accumulation_tolerance(pool in decorated_pool()) {
        // Finite data only: ±inf/NaN make both orders degenerate.
        let clean: Vec<f32> = pool.iter().map(|v| {
            if v.is_finite() && v.abs() < 1e6 { *v } else { 0.125 }
        }).collect();
        for &off in &OFFSETS {
            for &n in &LENS {
                let src = &clean[off..off + n];
                let want = scalar::sum(src);
                let Some(got) = simd::try_sum_avx2(src) else { return Ok(()); };
                // 1e-6 relative to the absolute mass bounds both
                // accumulation orders' divergence from the real sum.
                let mass: f64 = src.iter().map(|v| v.abs() as f64).sum();
                let tol = (mass + 1.0) * 1e-6;
                prop_assert!(
                    ((got as f64) - (want as f64)).abs() <= tol,
                    "sum n={n} off={off}: simd {got} vs scalar {want} (tol {tol})"
                );
            }
        }
    }

    /// The routed Tensor entry points must compute exactly what the
    /// pre-SIMD closure forms computed (dispatch may pick either path —
    /// both are pinned to the same bits).
    #[test]
    fn tensor_routing_matches_closures(pool in decorated_pool()) {
        use traffic_tensor::Tensor;
        let n = 515; // odd length: vectors + remainder
        let a = Tensor::from_vec(pool[..n].to_vec(), &[5, 103]);
        let b = Tensor::from_vec(pool[n..2 * n].to_vec(), &[5, 103]);
        let cases: Vec<(Tensor, Tensor)> = vec![
            (a.add(&b), a.zip_map(&b, |x, y| x + y)),
            (a.sub(&b), a.zip_map(&b, |x, y| x - y)),
            (a.mul(&b), a.zip_map(&b, |x, y| x * y)),
            (a.div(&b), a.zip_map(&b, |x, y| x / y)),
            (a.neg(), a.map(|x| -x)),
            (a.abs(), a.map(f32::abs)),
            (a.add_scalar(0.7), a.map(|x| x + 0.7)),
            (a.mul_scalar(-2.3), a.map(|x| x * -2.3)),
            // clamp_min/max tie-break like maxps/minps: second operand
            // on ties and NaN (see simd::scalar::unary_one).
            (a.clamp_min(0.0), a.map(|x| if x > 0.0 { x } else { 0.0 })),
            (a.clamp_max(1.5), a.map(|x| if x < 1.5 { x } else { 1.5 })),
            (a.tanh(), a.map(traffic_tensor::fastmath::tanh)),
            (a.sigmoid(), a.map(traffic_tensor::fastmath::sigmoid)),
        ];
        for (ci, (got, want)) in cases.iter().enumerate() {
            for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                prop_assert!(bits_eq(*x, *y), "case {ci} elem {i}: {x} vs {y}");
            }
        }
    }
}
