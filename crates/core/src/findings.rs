//! Programmatic checks of the paper's qualitative claims against measured
//! results — the "shape" of the reproduction. Each check produces a
//! [`Finding`] with a verdict and the evidence behind it, consumed by the
//! report generator and the integration tests.

use crate::experiment::{Fig1Row, Fig2Row};
use crate::timing::Table3Row;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Short id, e.g. `fig1.gwn_short_term`.
    pub id: &'static str,
    /// The paper's claim, paraphrased.
    pub claim: &'static str,
    /// Whether the measured results support it (`None` = not evaluable
    /// from the provided rows).
    pub verdict: Option<bool>,
    /// Human-readable evidence.
    pub evidence: String,
}

impl Finding {
    fn new(id: &'static str, claim: &'static str, verdict: Option<bool>, evidence: String) -> Self {
        Finding { id, claim, verdict, evidence }
    }
}

/// Mean MAE of one model over the given rows, optionally filtered by
/// horizon label.
fn mean_mae(rows: &[Fig1Row], model: &str, horizon: Option<&str>) -> Option<f32> {
    let vals: Vec<f32> = rows
        .iter()
        .filter(|r| r.model == model && horizon.is_none_or(|h| r.horizon == h))
        .map(|r| r.mae.0)
        .filter(|v| v.is_finite())
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f32>() / vals.len() as f32)
    }
}

/// Ranks models by a key ascending; returns the best model name.
fn best_by<F: Fn(&str) -> Option<f32>>(models: &[String], key: F) -> Option<(String, f32)> {
    models
        .iter()
        .filter_map(|m| key(m).map(|v| (m.clone(), v)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
}

fn model_names(rows: &[Fig1Row]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in rows {
        if !names.contains(&r.model) {
            names.push(r.model.clone());
        }
    }
    names
}

/// Checks the Fig 1 claims (§V-A).
pub fn check_fig1(rows: &[Fig1Row]) -> Vec<Finding> {
    let models = model_names(rows);
    let mut out = Vec::new();

    // Claim: Graph-WaveNet has the best average accuracy overall.
    let best_overall = best_by(&models, |m| mean_mae(rows, m, None));
    out.push(Finding::new(
        "fig1.gwn_best_average",
        "Graph-WaveNet is generally the most accurate across datasets",
        best_overall.as_ref().map(|(m, _)| m == "Graph-WaveNet"),
        best_overall
            .map(|(m, v)| format!("best mean MAE: {m} ({v:.3})"))
            .unwrap_or_else(|| "no data".into()),
    ));

    // Claim: GMAN is best (or near-best) at the 60-minute horizon.
    let best_60 = best_by(&models, |m| mean_mae(rows, m, Some("60 min")));
    let gman_rank_60 = {
        let mut pairs: Vec<(String, f32)> = models
            .iter()
            .filter_map(|m| mean_mae(rows, m, Some("60 min")).map(|v| (m.clone(), v)))
            .collect();
        pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        pairs.iter().position(|(m, _)| m == "GMAN")
    };
    out.push(Finding::new(
        "fig1.gman_long_term",
        "GMAN records higher accuracy than other models for 60-minute prediction",
        gman_rank_60.map(|rank| rank <= 2),
        match (best_60, gman_rank_60) {
            (Some((m, v)), Some(rank)) => {
                format!("best 60-min MAE: {m} ({v:.3}); GMAN rank #{}", rank + 1)
            }
            _ => "no data".into(),
        },
    ));

    // Claim: errors grow with horizon for every model.
    let mut grow_ok = true;
    let mut worst = String::new();
    for m in &models {
        if let (Some(short), Some(long)) =
            (mean_mae(rows, m, Some("15 min")), mean_mae(rows, m, Some("60 min")))
        {
            if long < short {
                grow_ok = false;
                worst = format!("{m}: 15 min {short:.3} vs 60 min {long:.3}");
            }
        }
    }
    out.push(Finding::new(
        "fig1.horizon_growth",
        "Accuracy declines as the prediction horizon grows",
        Some(grow_ok),
        if grow_ok { "all models degrade with horizon".into() } else { worst },
    ));

    // Claim (§VI): RNN seq2seq models accumulate error — their 60/30-minute
    // MAE ratio exceeds that of the direct-output models.
    let growth_ratio = |m: &str| -> Option<f32> {
        let short = mean_mae(rows, m, Some("30 min"))?;
        let long = mean_mae(rows, m, Some("60 min"))?;
        (short > 0.0).then(|| long / short)
    };
    let rnn: Vec<f32> = ["DCRNN", "ST-MetaNet"].iter().filter_map(|m| growth_ratio(m)).collect();
    let direct: Vec<f32> =
        ["Graph-WaveNet", "GMAN", "STSGCN"].iter().filter_map(|m| growth_ratio(m)).collect();
    if !rnn.is_empty() && !direct.is_empty() {
        let rnn_mean = rnn.iter().sum::<f32>() / rnn.len() as f32;
        let direct_mean = direct.iter().sum::<f32>() / direct.len() as f32;
        out.push(Finding::new(
            "fig1.rnn_error_accumulation",
            "RNN seq2seq models (DCRNN, ST-MetaNet) suffer error accumulation at long horizons",
            Some(rnn_mean > direct_mean),
            format!(
                "60/30-min MAE growth: RNN models ×{rnn_mean:.2} vs direct models ×{direct_mean:.2}"
            ),
        ));
    }

    out
}

/// Checks the flow-dataset claims of §V-A: models do better on PeMSD3 and
/// PeMSD8 (MAE/RMSE) than on PeMSD4 and PeMSD7, Graph-WaveNet leads on
/// PeMSD3/PeMSD8 while GMAN is relatively stronger on PeMSD4/PeMSD7.
pub fn check_fig1_flow(rows: &[Fig1Row]) -> Vec<Finding> {
    let mut out = Vec::new();
    let dataset_mean = |ds: &str| -> Option<f32> {
        let vals: Vec<f32> = rows
            .iter()
            .filter(|r| r.dataset == ds && r.mae.0.is_finite())
            .map(|r| r.mae.0)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f32>() / vals.len() as f32)
        }
    };
    let small = [dataset_mean("PeMSD3"), dataset_mean("PeMSD8")];
    let large = [dataset_mean("PeMSD4"), dataset_mean("PeMSD7")];
    if let (Some(s3), Some(s8), Some(s4), Some(s7)) = (small[0], small[1], large[0], large[1]) {
        let verdict = (s3 + s8) / 2.0 < (s4 + s7) / 2.0;
        out.push(Finding::new(
            "fig1.flow_small_datasets_easier",
            "All models perform better with PeMSD3 and PeMSD8 (MAE)",
            Some(verdict),
            format!("mean MAE: PeMSD3 {s3:.2}, PeMSD8 {s8:.2} vs PeMSD4 {s4:.2}, PeMSD7 {s7:.2}"),
        ));
    }
    // Relative GWN-vs-GMAN advantage per flow dataset.
    let pair_gap = |ds: &str| -> Option<f32> {
        let gwn = mean_mae(
            &rows.iter().filter(|r| r.dataset == ds).cloned().collect::<Vec<_>>(),
            "Graph-WaveNet",
            None,
        )?;
        let gman = mean_mae(
            &rows.iter().filter(|r| r.dataset == ds).cloned().collect::<Vec<_>>(),
            "GMAN",
            None,
        )?;
        Some((gwn - gman) / gman) // negative = GWN better
    };
    if let (Some(g3), Some(g8), Some(g4), Some(g7)) =
        (pair_gap("PeMSD3"), pair_gap("PeMSD8"), pair_gap("PeMSD4"), pair_gap("PeMSD7"))
    {
        // GWN's relative advantage should be larger (more negative) on
        // PeMSD3/8 than on PeMSD4/7.
        let verdict = (g3 + g8) / 2.0 < (g4 + g7) / 2.0;
        out.push(Finding::new(
            "fig1.gwn_gman_flow_split",
            "Graph-WaveNet does relatively better on PeMSD3/PeMSD8, GMAN on PeMSD4/PeMSD7",
            Some(verdict),
            format!(
                "GWN-vs-GMAN gap: D3 {g3:+.2}, D8 {g8:+.2} vs D4 {g4:+.2}, D7 {g7:+.2} (negative = GWN ahead)"
            ),
        ));
    }
    out
}

/// Checks the Table III claims (§V-A).
pub fn check_table3(rows: &[Table3Row]) -> Vec<Finding> {
    let mut out = Vec::new();
    let find = |n: &str| rows.iter().find(|r| r.model == n);
    let min_train = rows.iter().min_by_key(|r| r.train_time_per_epoch);
    let min_inf = rows.iter().min_by_key(|r| r.inference_time);
    let max_params = rows.iter().max_by_key(|r| r.params);

    out.push(Finding::new(
        "table3.stgcn_fast_training",
        "STGCN requires the shortest training time per epoch",
        min_train.map(|r| r.model == "STGCN"),
        min_train
            .map(|r| {
                format!("fastest training: {} ({:.2?}/epoch)", r.model, r.train_time_per_epoch)
            })
            .unwrap_or_default(),
    ));
    out.push(Finding::new(
        "table3.gwn_fast_inference",
        "Graph-WaveNet is the fastest at producing predictions",
        min_inf.map(|r| r.model == "Graph-WaveNet"),
        min_inf
            .map(|r| format!("fastest inference: {} ({:.2?})", r.model, r.inference_time))
            .unwrap_or_default(),
    ));
    out.push(Finding::new(
        "table3.stsgcn_most_params",
        "STSGCN requires the largest number of parameters",
        max_params.map(|r| r.model == "STSGCN"),
        max_params
            .map(|r| format!("largest: {} ({} params)", r.model, r.params))
            .unwrap_or_default(),
    ));
    // STGCN inference penalty relative to its own training speed.
    if let (Some(stgcn), Some(gwn)) = (find("STGCN"), find("Graph-WaveNet")) {
        let verdict = stgcn.inference_time > gwn.inference_time;
        out.push(Finding::new(
            "table3.stgcn_inference_penalty",
            "STGCN needs longer inference because its many-to-one head predicts steps separately",
            Some(verdict),
            format!(
                "STGCN inference {:.2?} vs Graph-WaveNet {:.2?}",
                stgcn.inference_time, gwn.inference_time
            ),
        ));
    }
    out
}

/// Checks the Fig 2 claims (§V-B).
pub fn check_fig2(rows: &[Fig2Row]) -> Vec<Finding> {
    let mut out = Vec::new();
    let finite: Vec<&Fig2Row> = rows.iter().filter(|r| r.degradation_pct.is_finite()).collect();
    if finite.is_empty() {
        return vec![Finding::new(
            "fig2.empty",
            "difficult-interval rows available",
            None,
            "no finite degradation rows".into(),
        )];
    }
    // Claim: every model degrades on difficult intervals.
    let all_degrade = finite.iter().all(|r| r.degradation_pct > 0.0);
    let lo = finite.iter().map(|r| r.degradation_pct).fold(f32::INFINITY, f32::min);
    let hi = finite.iter().map(|r| r.degradation_pct).fold(f32::NEG_INFINITY, f32::max);
    out.push(Finding::new(
        "fig2.all_models_degrade",
        "All models show large performance decline on difficult intervals (paper: 67–180%)",
        Some(all_degrade),
        format!("measured degradation range: {lo:.1}% … {hi:.1}%"),
    ));
    // Claim: ASTGCN is the most robust (smallest decline).
    let most_robust =
        finite.iter().min_by(|a, b| a.degradation_pct.partial_cmp(&b.degradation_pct).unwrap());
    out.push(Finding::new(
        "fig2.astgcn_robust",
        "ASTGCN shows the lowest performance decline (most robust to abrupt change)",
        most_robust.map(|r| r.model == "ASTGCN"),
        most_robust
            .map(|r| format!("most robust: {} ({:+.1}%)", r.model, r.degradation_pct))
            .unwrap_or_default(),
    ));
    // Claim: ST-MetaNet is (nearly) the worst on difficult intervals.
    let least_robust =
        finite.iter().max_by(|a, b| a.degradation_pct.partial_cmp(&b.degradation_pct).unwrap());
    out.push(Finding::new(
        "fig2.stmetanet_fragile",
        "ST-MetaNet shows almost the worst performance with difficult intervals",
        least_robust.map(|r| r.model == "ST-MetaNet"),
        least_robust
            .map(|r| format!("least robust: {} ({:+.1}%)", r.model, r.degradation_pct))
            .unwrap_or_default(),
    ));
    out
}

/// Winner per (dataset, horizon) from Fig 1 rows — the quick summary the
/// paper narrates ("Graph-WaveNet outperforms for 15/30-minute predictions
/// across speed datasets…").
pub fn fig1_winners(rows: &[Fig1Row]) -> Vec<(String, &'static str, String, f32)> {
    let mut out: Vec<(String, &'static str, String, f32)> = Vec::new();
    for r in rows {
        if !r.mae.0.is_finite() {
            continue;
        }
        match out.iter_mut().find(|(d, h, _, _)| *d == r.dataset && *h == r.horizon) {
            Some(slot) => {
                if r.mae.0 < slot.3 {
                    slot.2 = r.model.clone();
                    slot.3 = r.mae.0;
                }
            }
            None => out.push((r.dataset.clone(), r.horizon, r.model.clone(), r.mae.0)),
        }
    }
    out
}

/// Renders findings as a markdown checklist.
pub fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let mark = match f.verdict {
            Some(true) => "✅",
            Some(false) => "❌",
            None => "⚠️",
        };
        out.push_str(&format!(
            "- {mark} **{}** — {}\n    - evidence: {}\n",
            f.id, f.claim, f.evidence
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_metrics::MetricSet;

    fn fig1_row(model: &str, horizon: &'static str, mae: f32) -> Fig1Row {
        Fig1Row {
            dataset: "D".into(),
            model: model.into(),
            horizon,
            mae: (mae, 0.0),
            rmse: (mae * 1.5, 0.0),
            mape: (mae * 2.0, 0.0),
            error: None,
        }
    }

    #[test]
    fn fig1_checks_detect_expected_shape() {
        let rows = vec![
            fig1_row("Graph-WaveNet", "15 min", 1.0),
            fig1_row("Graph-WaveNet", "60 min", 1.8),
            fig1_row("GMAN", "15 min", 1.2),
            fig1_row("GMAN", "60 min", 1.7),
            fig1_row("STGCN", "15 min", 1.4),
            fig1_row("STGCN", "60 min", 3.0),
        ];
        let f = check_fig1(&rows);
        let get = |id: &str| f.iter().find(|x| x.id == id).unwrap();
        assert_eq!(get("fig1.gwn_best_average").verdict, Some(true));
        assert_eq!(get("fig1.gman_long_term").verdict, Some(true)); // GMAN best at 60
        assert_eq!(get("fig1.horizon_growth").verdict, Some(true));
    }

    #[test]
    fn fig1_checks_detect_violations() {
        let rows = vec![
            fig1_row("STGCN", "15 min", 1.0),
            fig1_row("STGCN", "60 min", 0.5), // shrinking error: violation
            fig1_row("Graph-WaveNet", "15 min", 2.0),
            fig1_row("Graph-WaveNet", "60 min", 3.0),
        ];
        let f = check_fig1(&rows);
        let get = |id: &str| f.iter().find(|x| x.id == id).unwrap();
        assert_eq!(get("fig1.gwn_best_average").verdict, Some(false));
        assert_eq!(get("fig1.horizon_growth").verdict, Some(false));
    }

    #[test]
    fn fig2_checks() {
        let mk = |model: &str, overall: f32, difficult: f32| Fig2Row {
            model: model.into(),
            overall: MetricSet { mae: overall, rmse: 0.0, mape: 0.0, count: 10 },
            difficult: MetricSet { mae: difficult, rmse: 0.0, mape: 0.0, count: 5 },
            degradation_pct: 100.0 * (difficult - overall) / overall,
            error: None,
        };
        let rows = vec![
            mk("ASTGCN", 2.0, 3.0),        // +50%
            mk("ST-MetaNet", 2.0, 5.6),    // +180%
            mk("Graph-WaveNet", 1.5, 3.0), // +100%
        ];
        let f = check_fig2(&rows);
        let get = |id: &str| f.iter().find(|x| x.id == id).unwrap();
        assert_eq!(get("fig2.all_models_degrade").verdict, Some(true));
        assert_eq!(get("fig2.astgcn_robust").verdict, Some(true));
        assert_eq!(get("fig2.stmetanet_fragile").verdict, Some(true));
    }

    #[test]
    fn flow_checks_detect_shape() {
        let rows = vec![
            fig1_row_ds("PeMSD3", "Graph-WaveNet", 10.0),
            fig1_row_ds("PeMSD3", "GMAN", 12.0),
            fig1_row_ds("PeMSD8", "Graph-WaveNet", 11.0),
            fig1_row_ds("PeMSD8", "GMAN", 13.0),
            fig1_row_ds("PeMSD4", "Graph-WaveNet", 20.0),
            fig1_row_ds("PeMSD4", "GMAN", 18.0),
            fig1_row_ds("PeMSD7", "Graph-WaveNet", 21.0),
            fig1_row_ds("PeMSD7", "GMAN", 19.0),
        ];
        let f = check_fig1_flow(&rows);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].verdict, Some(true), "{}", f[0].evidence);
        assert_eq!(f[1].verdict, Some(true), "{}", f[1].evidence);
    }

    fn fig1_row_ds(ds: &str, model: &str, mae: f32) -> Fig1Row {
        Fig1Row {
            dataset: ds.into(),
            model: model.into(),
            horizon: "15 min",
            mae: (mae, 0.0),
            rmse: (mae, 0.0),
            mape: (mae, 0.0),
            error: None,
        }
    }

    #[test]
    fn winners_pick_minimum_mae() {
        let rows = vec![
            fig1_row("A", "15 min", 2.0),
            fig1_row("B", "15 min", 1.0),
            fig1_row("A", "60 min", 3.0),
            fig1_row("B", "60 min", 4.0),
        ];
        let w = fig1_winners(&rows);
        let find = |h: &str| w.iter().find(|(_, hh, _, _)| *hh == h).unwrap();
        assert_eq!(find("15 min").2, "B");
        assert_eq!(find("60 min").2, "A");
    }

    #[test]
    fn render_contains_marks() {
        let f = vec![Finding::new("x", "claim", Some(true), "ev".into())];
        let md = render_findings(&f);
        assert!(md.contains("✅"));
        assert!(md.contains("claim"));
    }
}
