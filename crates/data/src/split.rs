//! Chronological train/validation/test splitting (paper §V: 7:1:2).

use std::ops::Range;

/// Step ranges for train / validation / test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitRanges {
    /// Training steps.
    pub train: Range<usize>,
    /// Validation steps.
    pub val: Range<usize>,
    /// Test steps.
    pub test: Range<usize>,
}

/// Splits `total` steps chronologically by the given fractions.
/// The test range takes whatever remains, so the three ranges always tile
/// `0..total` exactly.
pub fn chronological_split(total: usize, train_frac: f64, val_frac: f64) -> SplitRanges {
    assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
    let train_end = (total as f64 * train_frac).round() as usize;
    let val_end = (total as f64 * (train_frac + val_frac)).round() as usize;
    SplitRanges { train: 0..train_end, val: train_end..val_end, test: val_end..total }
}

/// The paper's 7:1:2 split.
pub fn paper_split(total: usize) -> SplitRanges {
    chronological_split(total, 0.7, 0.1)
}

/// Rolling-origin evaluation splits (time-series cross-validation): `k`
/// folds, each training on everything before its validation block and
/// testing on the block after it. An extension beyond the paper's single
/// 7:1:2 split, useful for variance estimates on small simulated datasets.
pub fn rolling_origin_splits(total: usize, k: usize, min_train_frac: f64) -> Vec<SplitRanges> {
    assert!(k >= 1, "need at least one fold");
    assert!((0.0..1.0).contains(&min_train_frac));
    let first_train_end = (total as f64 * min_train_frac).round() as usize;
    let remaining = total - first_train_end;
    let block = remaining / (k + 1);
    assert!(block > 0, "total {total} too small for {k} rolling folds");
    (0..k)
        .map(|i| {
            let train_end = first_train_end + i * block;
            SplitRanges {
                train: 0..train_end,
                val: train_end..train_end + block,
                test: train_end + block..(train_end + 2 * block).min(total),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_completely() {
        let s = paper_split(1000);
        assert_eq!(s.train, 0..700);
        assert_eq!(s.val, 700..800);
        assert_eq!(s.test, 800..1000);
    }

    #[test]
    fn no_overlap_any_total() {
        for total in [10, 123, 288, 999, 12345] {
            let s = paper_split(total);
            assert_eq!(s.train.end, s.val.start);
            assert_eq!(s.val.end, s.test.start);
            assert_eq!(s.test.end, total);
        }
    }

    #[test]
    fn rolling_origin_monotone() {
        let folds = rolling_origin_splits(1000, 3, 0.5);
        assert_eq!(folds.len(), 3);
        for (i, f) in folds.iter().enumerate() {
            assert_eq!(f.train.start, 0);
            assert_eq!(f.train.end, f.val.start);
            assert_eq!(f.val.end, f.test.start);
            assert!(f.test.end <= 1000);
            if i > 0 {
                assert!(f.train.end > folds[i - 1].train.end, "training set must grow");
            }
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rolling_origin_rejects_tiny_series() {
        rolling_origin_splits(10, 20, 0.5);
    }

    #[test]
    fn custom_fractions() {
        let s = chronological_split(100, 0.5, 0.25);
        assert_eq!(s.train.len(), 50);
        assert_eq!(s.val.len(), 25);
        assert_eq!(s.test.len(), 25);
    }
}
