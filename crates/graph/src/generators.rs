//! Synthetic road-network generators.
//!
//! Each of the paper's seven datasets is backed by one of these topologies,
//! scaled to the node counts of Table I (or a configurable fraction of
//! them): freeway corridors for the LA/Bay-Area speed networks, and mixed
//! corridor-grid meshes for the metropolitan flow networks.

use rand::Rng;

use crate::network::RoadNetwork;

/// A linear freeway corridor: sensors spaced along a line with mild jitter,
/// bidirectional edges between consecutive sensors, plus occasional
/// longer-range "express" links that model on/off-ramps rejoining.
pub fn freeway_corridor(n: usize, mean_spacing_km: f64, rng: &mut impl Rng) -> RoadNetwork {
    assert!(n >= 2, "corridor needs at least 2 sensors");
    let mut net = RoadNetwork::new();
    let mut x = 0.0;
    for i in 0..n {
        let jitter = rng.gen_range(-0.3..0.3) * mean_spacing_km;
        let y = rng.gen_range(-0.2..0.2);
        net.add_sensor(i as u32, x, y);
        x += mean_spacing_km + jitter;
    }
    for i in 0..n - 1 {
        let d = net.euclidean(i, i + 1).max(0.1);
        net.add_edge(i, i + 1, d);
        net.add_edge(i + 1, i, d);
    }
    // Express links every ~10 sensors (both directions).
    let mut i = 0;
    while i + 3 < n {
        if rng.gen_bool(0.3) {
            let j = i + 3;
            let d = net.euclidean(i, j).max(0.1);
            net.add_edge(i, j, d);
            net.add_edge(j, i, d);
        }
        i += rng.gen_range(5..12);
    }
    net
}

/// A `rows × cols` urban grid with bidirectional edges between neighbours.
/// To hit an exact sensor count that is not a product of two integers, use
/// [`metro_mix`], which truncates its grid part.
pub fn grid(rows: usize, cols: usize, spacing_km: f64, rng: &mut impl Rng) -> RoadNetwork {
    assert!(rows >= 1 && cols >= 1);
    let mut net = RoadNetwork::new();
    for r in 0..rows {
        for c in 0..cols {
            let jx = rng.gen_range(-0.1..0.1) * spacing_km;
            let jy = rng.gen_range(-0.1..0.1) * spacing_km;
            net.add_sensor(
                (r * cols + c) as u32,
                c as f64 * spacing_km + jx,
                r as f64 * spacing_km + jy,
            );
        }
    }
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let d = net.euclidean(idx(r, c), idx(r, c + 1)).max(0.1);
                net.add_edge(idx(r, c), idx(r, c + 1), d);
                net.add_edge(idx(r, c + 1), idx(r, c), d);
            }
            if r + 1 < rows {
                let d = net.euclidean(idx(r, c), idx(r + 1, c)).max(0.1);
                net.add_edge(idx(r, c), idx(r + 1, c), d);
                net.add_edge(idx(r + 1, c), idx(r, c), d);
            }
        }
    }
    net
}

/// Random geometric graph: `n` sensors scattered in a square, connected
/// when within `radius_km` of each other. Guarantees connectivity by
/// chaining nearest unvisited neighbours if needed.
pub fn random_geometric(n: usize, side_km: f64, radius_km: f64, rng: &mut impl Rng) -> RoadNetwork {
    assert!(n >= 2);
    let mut net = RoadNetwork::new();
    for i in 0..n {
        net.add_sensor(i as u32, rng.gen_range(0.0..side_km), rng.gen_range(0.0..side_km));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let d = net.euclidean(i, j);
                if d <= radius_km && d > 0.0 {
                    net.add_edge(i, j, d);
                }
            }
        }
    }
    // Stitch isolated nodes to their nearest neighbour so every sensor
    // participates in the graph.
    for iso in net.isolated_nodes() {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for j in 0..n {
            if j != iso {
                let d = net.euclidean(iso, j);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
        }
        if best != usize::MAX {
            let d = best_d.max(0.1);
            net.add_edge(iso, best, d);
            net.add_edge(best, iso, d);
        }
    }
    net
}

/// Generates a network of exactly `n` nodes with a corridor-plus-grid mix
/// that loosely matches metropolitan PeMS districts: a backbone corridor
/// covering 60% of sensors and a downtown grid with the rest, joined at
/// both ends.
pub fn metro_mix(n: usize, rng: &mut impl Rng) -> RoadNetwork {
    assert!(n >= 8, "metro_mix needs at least 8 sensors");
    let corridor_n = (n * 3) / 5;
    let grid_n = n - corridor_n;
    let cols = (grid_n as f64).sqrt().ceil() as usize;
    let rows = grid_n.div_ceil(cols);
    let mut net = freeway_corridor(corridor_n, 1.5, rng);
    // Append grid sensors offset below the corridor.
    let base = net.num_nodes();
    let g = grid(rows, cols, 0.8, rng);
    for (added, s) in g.sensors().iter().enumerate().take(grid_n) {
        net.add_sensor((base + added) as u32, s.x, s.y - 5.0);
    }
    for e in g.edges() {
        if base + e.from < net.num_nodes() && base + e.to < net.num_nodes() {
            net.add_edge(base + e.from, base + e.to, e.distance_km);
        }
    }
    // Join corridor ends to the grid corners.
    let d1 = net.euclidean(0, base).max(0.1);
    net.add_edge(0, base, d1);
    net.add_edge(base, 0, d1);
    let last_grid = net.num_nodes() - 1;
    let d2 = net.euclidean(corridor_n - 1, last_grid).max(0.1);
    net.add_edge(corridor_n - 1, last_grid, d2);
    net.add_edge(last_grid, corridor_n - 1, d2);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn corridor_connected_chain() {
        let net = freeway_corridor(20, 1.0, &mut rng());
        assert_eq!(net.num_nodes(), 20);
        assert!(net.num_edges() >= 2 * 19);
        assert!(net.isolated_nodes().is_empty());
    }

    #[test]
    fn grid_edge_count() {
        let net = grid(3, 4, 1.0, &mut rng());
        assert_eq!(net.num_nodes(), 12);
        // 3*3 horizontal + 2*4 vertical, both directions
        assert_eq!(net.num_edges(), 2 * (3 * 3 + 2 * 4));
    }

    #[test]
    fn random_geometric_no_isolates() {
        let net = random_geometric(30, 10.0, 2.0, &mut rng());
        assert_eq!(net.num_nodes(), 30);
        assert!(net.isolated_nodes().is_empty());
    }

    #[test]
    fn metro_mix_exact_count() {
        for n in [8, 20, 57] {
            let net = metro_mix(n, &mut rng());
            assert_eq!(net.num_nodes(), n, "metro_mix({n})");
            assert!(net.isolated_nodes().is_empty());
        }
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let a = freeway_corridor(10, 1.0, &mut StdRng::seed_from_u64(5));
        let b = freeway_corridor(10, 1.0, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.sensors(), b.sensors());
        assert_eq!(a.edges(), b.edges());
    }
}
