//! Hot-reload robustness against corrupted checkpoints.
//!
//! Two layers: a proptest sweep proving the snapshot *reader* rejects
//! arbitrary truncations and single-bit flips anywhere in a `TNN2`
//! blob (every byte is load-bearing — magic, version, counts, lengths,
//! names, CRCs, payloads), and an engine-level test proving a rejected
//! reload never displaces the last-good model: the server keeps
//! answering with bit-identical predictions throughout.

use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use traffic_serve::{Engine, EngineConfig, ServeRequest, ServeResponse, ServeSnapshot};

/// One encoded good snapshot, shared across proptest cases (building a
/// model per case would dominate the test's runtime).
fn good_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| traffic_serve::export_fresh("STGCN", 4, 9).encode())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_snapshots_never_decode(cut_frac in 0.0f64..1.0) {
        let bytes = good_bytes();
        let cut = (cut_frac * (bytes.len() - 1) as f64) as usize;
        prop_assert!(
            ServeSnapshot::decode(&bytes[..cut]).is_err(),
            "truncation to {cut} of {} bytes must be rejected",
            bytes.len()
        );
    }

    #[test]
    fn bit_flipped_snapshots_never_decode(pos_frac in 0.0f64..1.0, bit in 0u32..8) {
        let bytes = good_bytes();
        let pos = ((pos_frac * (bytes.len() - 1) as f64) as usize).min(bytes.len() - 1);
        let mut bad = bytes.to_vec();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            ServeSnapshot::decode(&bad).is_err(),
            "bit {bit} flipped at byte {pos} of {} must be rejected",
            bytes.len()
        );
    }
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("serve_reload_{tag}_{}.tnn2", std::process::id()))
}

fn request(n: usize, t_in: usize) -> ServeRequest {
    let window = (0..t_in * n).map(|k| 50.0 + (k % 13) as f32).collect();
    ServeRequest { window, tod: 0.5, deadline_ns: u64::MAX }
}

fn predict_ok(engine: &Engine, req: ServeRequest) -> Vec<u32> {
    match engine.predict(req) {
        ServeResponse::Ok(v) => v.iter().map(|f| f.to_bits()).collect(),
        other => panic!("expected OK, got {}", other.status()),
    }
}

/// A hot reload that changes model geometry (here n: 4 → 6) must not
/// crash the worker on jobs admitted under the old geometry: they were
/// valid at admission, the swap happens before the drain, and the
/// worker re-validates against the live model — stale jobs get a
/// terminal `ERROR`, new-geometry requests serve normally.
#[test]
fn geometry_changing_reload_answers_stale_jobs_instead_of_crashing() {
    let small = tmp("geom_small");
    let big = tmp("geom_big");
    traffic_serve::export_fresh("STGCN", 4, 9).save(&small).expect("save n=4 snapshot");
    traffic_serve::export_fresh("STGCN", 6, 9).save(&big).expect("save n=6 snapshot");
    let engine = Engine::start_from_path(&small, EngineConfig::default()).expect("start engine");

    // Stall the worker so the old-geometry job is still queued when the
    // reload swaps the live model; control drains before the queue, so
    // the swap always lands first.
    engine.stall(Duration::from_millis(300));
    std::thread::sleep(Duration::from_millis(50));
    let stale_rx = engine.submit(request(4, 12));
    assert!(engine.reload(Some(&big)).is_ok(), "n=6 snapshot must validate and swap");

    match stale_rx.recv().expect("stale job must still be answered") {
        ServeResponse::Error(msg) => {
            assert!(msg.contains("geometry"), "error should say why: {msg}")
        }
        other => panic!("stale-geometry job must answer ERROR, got {}", other.status()),
    }
    // The worker survived and serves the new geometry.
    predict_ok(&engine, request(6, 12));
    assert_eq!(engine.status().state, "HEALTHY");
    assert_eq!(engine.status().n, 6);

    std::fs::remove_file(&small).ok();
    std::fs::remove_file(&big).ok();
}

#[test]
fn rejected_reloads_keep_the_last_good_model_serving() {
    let good = tmp("good");
    let bad = tmp("bad");
    traffic_serve::export_fresh("STGCN", 4, 9).save(&good).expect("save good snapshot");
    let cfg = EngineConfig {
        reload_attempts: 1,
        reload_backoff: Duration::from_millis(1),
        ..Default::default()
    };
    let engine = Engine::start_from_path(&good, cfg).expect("start engine");
    let baseline = predict_ok(&engine, request(4, 12));

    let bytes = std::fs::read(&good).expect("read good snapshot back");
    let mut rng = TestRng::from_name("serve::tests::reload::last_good");
    for case in 0..24 {
        let mut b = bytes.clone();
        if case % 2 == 0 {
            let cut = 1 + (rng.next_u64() as usize) % (b.len() - 1);
            b.truncate(cut);
        } else {
            let pos = (rng.next_u64() as usize) % b.len();
            b[pos] ^= 1 << (rng.next_u64() % 8);
        }
        std::fs::write(&bad, &b).expect("write corrupted snapshot");
        assert!(
            engine.reload(Some(&bad)).is_err(),
            "corrupted reload (case {case}) must be rejected"
        );
        assert_eq!(
            predict_ok(&engine, request(4, 12)),
            baseline,
            "after rejected reload {case}, the last-good model must still answer bit-identically"
        );
    }

    // A good file still swaps in after any number of rejections.
    assert!(engine.reload(Some(&good)).is_ok(), "intact snapshot must reload");
    assert_eq!(predict_ok(&engine, request(4, 12)), baseline);
    let status = engine.status();
    assert_eq!(status.state, "HEALTHY");
    assert!(status.reload_failures >= 24);

    // A client that hung up mid-reload-storm must not wedge anything:
    // drop the receiver before the worker answers.
    let rx: mpsc::Receiver<ServeResponse> = engine.submit(request(4, 12));
    drop(rx);
    assert_eq!(predict_ok(&engine, request(4, 12)), baseline);

    std::fs::remove_file(&good).ok();
    std::fs::remove_file(&bad).ok();
}
