//! # traffic-graph
//!
//! Road-network graphs and the matrix machinery traffic GNNs consume:
//! Gaussian-kernel adjacencies (`W_ij = exp(−d²/σ²)`, paper §IV-B),
//! normalised/rescaled Laplacians for spectral GCNs, random-walk transition
//! matrices for diffusion convolutions, spectral node embeddings (the
//! deterministic node2vec substitute for GMAN), and synthetic network
//! generators matching the topologies of the seven PeMS datasets.

pub mod adjacency;
pub mod eigen;
pub mod embedding;
pub mod generators;
pub mod laplacian;
pub mod network;
pub mod transition;

pub use adjacency::{binary_adjacency, gaussian_adjacency, row_normalize, symmetrize};
pub use embedding::spectral_embedding;
pub use generators::{freeway_corridor, grid, metro_mix, random_geometric};
pub use laplacian::{normalized_laplacian, scaled_laplacian, scaled_laplacian_propagator};
pub use network::{Edge, RoadNetwork, Sensor};
pub use transition::{
    backward_transition, diffusion_support_propagators, diffusion_supports, forward_transition,
};
