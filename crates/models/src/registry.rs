//! Model factory: builds any of the paper's eight models by name with
//! default (width-reduced) configurations.

use rand::rngs::StdRng;

use crate::astgcn::{Astgcn, AstgcnConfig};
use crate::common::{GraphContext, TrafficModel};
use crate::dcrnn::{Dcrnn, DcrnnConfig};
use crate::gman::{Gman, GmanConfig};
use crate::graph_wavenet::{GraphWavenet, GraphWavenetConfig};
use crate::stg2seq::{Stg2Seq, Stg2SeqConfig};
use crate::stgcn::{Stgcn, StgcnConfig};
use crate::stmetanet::{StMetaNet, StMetaNetConfig};
use crate::stsgcn::{Stsgcn, StsgcnConfig};

/// The eight model names in the paper's presentation order.
pub const ALL_MODELS: [&str; 8] =
    ["STGCN", "DCRNN", "ASTGCN", "ST-MetaNet", "Graph-WaveNet", "STG2Seq", "STSGCN", "GMAN"];

/// Builds a model by name with default configuration.
///
/// Panics on an unknown name; use [`ALL_MODELS`] for the valid set.
pub fn build_model(name: &str, ctx: &GraphContext, rng: &mut StdRng) -> Box<dyn TrafficModel> {
    match name.to_ascii_uppercase().as_str() {
        "STGCN" => Box::new(Stgcn::new(ctx, StgcnConfig::default(), rng)),
        "DCRNN" => Box::new(Dcrnn::new(ctx, DcrnnConfig::default(), rng)),
        "ASTGCN" => Box::new(Astgcn::new(ctx, AstgcnConfig::default(), rng)),
        "ST-METANET" => Box::new(StMetaNet::new(ctx, StMetaNetConfig::default(), rng)),
        "GRAPH-WAVENET" => Box::new(GraphWavenet::new(ctx, GraphWavenetConfig::default(), rng)),
        "STG2SEQ" => Box::new(Stg2Seq::new(ctx, Stg2SeqConfig::default(), rng)),
        "STSGCN" => Box::new(Stsgcn::new(ctx, StsgcnConfig::default(), rng)),
        "GMAN" => Box::new(Gman::new(ctx, GmanConfig::default(), rng)),
        other => panic!("unknown model: {other} (valid: {ALL_MODELS:?})"),
    }
}

/// Per-model training hyper-parameters, standing in for the paper's "same
/// hyperparameter settings from the original work" (§V): attention-heavy
/// GMAN needs a higher learning rate and roughly twice the optimisation
/// steps of the convolutional models to converge.
#[derive(Debug, Clone, Copy)]
pub struct TrainProfile {
    /// Adam learning rate.
    pub lr: f32,
    /// Multiplier on the experiment's epoch budget.
    pub epoch_multiplier: f32,
}

/// Training profile for a model (defaults: lr 3e-3, multiplier 1).
pub fn train_profile(name: &str) -> TrainProfile {
    match name.to_ascii_uppercase().as_str() {
        "GMAN" => TrainProfile { lr: 6e-3, epoch_multiplier: 2.0 },
        _ => TrainProfile { lr: 3e-3, epoch_multiplier: 1.0 },
    }
}

/// Number of target steps the training loss should cover for this model
/// (1 for the many-to-one STGCN, the full horizon otherwise).
pub fn train_horizon(name: &str, t_out: usize) -> usize {
    if name.eq_ignore_ascii_case("STGCN") {
        1
    } else {
        t_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;
    use traffic_tensor::{Tape, Tensor};

    #[test]
    fn all_models_build_and_run() {
        let mut rng = StdRng::seed_from_u64(20);
        let net = freeway_corridor(6, 1.0, &mut rng);
        let ctx = GraphContext::from_network(&net, 4);
        for name in ALL_MODELS {
            let model = build_model(name, &ctx, &mut rng);
            assert_eq!(model.name(), name);
            let tape = Tape::new();
            let x = tape.constant(Tensor::zeros(&[1, 12, 6, 2]));
            let y = model.forward(&tape, x, None);
            assert_eq!(y.shape(), vec![1, 12, 6], "{name}");
            assert!(!y.value().has_non_finite(), "{name} produced non-finite output");
            assert!(model.num_params() > 0, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = freeway_corridor(4, 1.0, &mut rng);
        let ctx = GraphContext::from_network(&net, 2);
        build_model("LSTM", &ctx, &mut rng);
    }

    #[test]
    fn train_horizons() {
        assert_eq!(train_horizon("STGCN", 12), 1);
        assert_eq!(train_horizon("stgcn", 12), 1);
        assert_eq!(train_horizon("GMAN", 12), 12);
    }

    #[test]
    fn profiles_default_and_gman() {
        let d = train_profile("STGCN");
        assert_eq!(d.lr, 3e-3);
        assert_eq!(d.epoch_multiplier, 1.0);
        let g = train_profile("gman");
        assert!(g.lr > d.lr);
        assert!(g.epoch_multiplier > 1.0);
    }

    #[test]
    fn stsgcn_has_most_params() {
        // Table III: STSGCN requires the largest number of parameters.
        let mut rng = StdRng::seed_from_u64(21);
        let net = freeway_corridor(8, 1.0, &mut rng);
        let ctx = GraphContext::from_network(&net, 4);
        let counts: Vec<(String, usize)> = ALL_MODELS
            .iter()
            .map(|&n| (n.to_string(), build_model(n, &ctx, &mut rng).num_params()))
            .collect();
        let stsgcn = counts.iter().find(|(n, _)| n == "STSGCN").unwrap().1;
        for (name, c) in &counts {
            if name != "STSGCN" {
                assert!(stsgcn > *c, "STSGCN ({stsgcn}) should exceed {name} ({c})");
            }
        }
    }
}
