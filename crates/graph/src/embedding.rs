//! Spectral node embeddings: the deterministic substitute for GMAN's
//! node2vec spatial embeddings (DESIGN.md §2).
//!
//! Laplacian eigenmaps place strongly-connected sensors close together in
//! embedding space — the same proximity structure node2vec's random walks
//! capture, without a stochastic training corpus.

use traffic_tensor::Tensor;

use crate::eigen::sym_eigen;
use crate::laplacian::normalized_laplacian;

/// Computes a `[N, dim]` spectral embedding from the adjacency.
///
/// Uses the eigenvectors of the normalised Laplacian belonging to the
/// `dim` smallest *non-trivial* eigenvalues (the constant eigenvector at
/// λ≈0 is skipped). If the graph has fewer usable eigenvectors than `dim`,
/// the remaining columns are zero.
pub fn spectral_embedding(adj: &Tensor, dim: usize) -> Tensor {
    let n = adj.shape()[0];
    assert_eq!(adj.shape(), &[n, n]);
    assert!(dim >= 1, "embedding dim must be >= 1");
    let l = normalized_laplacian(adj);
    let e = sym_eigen(&l, 16);
    let mut out = Tensor::zeros(&[n, dim]);
    {
        let buf = out.make_mut();
        // Skip the first (trivial/constant) eigenvector.
        for d in 0..dim.min(n.saturating_sub(1)) {
            let vec = &e.vectors[d + 1];
            for i in 0..n {
                buf[i * dim + d] = vec[i];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two path-triangles joined by a single weak bridge.
    fn two_clusters() -> Tensor {
        let n = 6;
        let mut a = Tensor::zeros(&[n, n]);
        {
            let buf = a.make_mut();
            let mut connect = |i: usize, j: usize, w: f32| {
                buf[i * n + j] = w;
                buf[j * n + i] = w;
            };
            connect(0, 1, 1.0);
            connect(1, 2, 1.0);
            connect(0, 2, 1.0);
            connect(3, 4, 1.0);
            connect(4, 5, 1.0);
            connect(3, 5, 1.0);
            connect(2, 3, 0.05); // weak bridge
        }
        a
    }

    #[test]
    fn embedding_shape() {
        let e = spectral_embedding(&two_clusters(), 4);
        assert_eq!(e.shape(), &[6, 4]);
        assert!(!e.has_non_finite());
    }

    #[test]
    fn fiedler_vector_separates_clusters() {
        // First embedding dimension (Fiedler vector) should give the two
        // triangles opposite signs.
        let e = spectral_embedding(&two_clusters(), 1);
        let sign = |i: usize| e.at(&[i, 0]).signum();
        assert_eq!(sign(0), sign(1));
        assert_eq!(sign(1), sign(2));
        assert_eq!(sign(3), sign(4));
        assert_eq!(sign(4), sign(5));
        assert_ne!(sign(0), sign(5), "clusters should separate");
    }

    #[test]
    fn dim_larger_than_graph_pads_zero() {
        let a = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
        let e = spectral_embedding(&a, 5);
        assert_eq!(e.shape(), &[2, 5]);
        // only one non-trivial eigenvector exists; columns 1.. are zero
        for d in 1..5 {
            assert_eq!(e.at(&[0, d]), 0.0);
            assert_eq!(e.at(&[1, d]), 0.0);
        }
    }
}
