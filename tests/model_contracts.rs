//! Cross-cutting behavioural contracts every model must satisfy:
//! batch independence, determinism in eval mode, and sensitivity to graph
//! structure.

use traffic_suite::models::{build_model, GraphContext, ALL_MODELS};
use traffic_suite::tensor::{Tape, Tensor};

fn ctx_and_input(nodes: usize) -> (GraphContext, Tensor) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    let net = traffic_suite::graph::freeway_corridor(nodes, 1.0, &mut rng);
    let ctx = GraphContext::from_network(&net, 4);
    // Realistic input: value feature varying, proper tod track.
    let mut x = Vec::new();
    for b in 0..2 {
        for t in 0..12 {
            for i in 0..nodes {
                x.push(((b * 31 + t * 7 + i * 3) as f32 * 0.37).sin());
                x.push(t as f32 / 288.0);
            }
        }
    }
    (ctx, Tensor::from_vec(x, &[2, 12, nodes, 2]))
}

#[test]
fn eval_forward_is_deterministic() {
    let (ctx, x) = ctx_and_input(6);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    for name in ALL_MODELS {
        let model = build_model(name, &ctx, &mut rng);
        let tape1 = Tape::new();
        let y1 = model.forward(&tape1, tape1.constant(x.clone()), None).value();
        let tape2 = Tape::new();
        let y2 = model.forward(&tape2, tape2.constant(x.clone()), None).value();
        assert_eq!(y1, y2, "{name} must be deterministic in eval mode");
    }
}

#[test]
fn batch_samples_are_independent() {
    // Running a sample alone must give the same output as running it in a
    // batch — no cross-sample leakage (none of the models use batch norm).
    let (ctx, x) = ctx_and_input(6);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    for name in ALL_MODELS {
        let model = build_model(name, &ctx, &mut rng);
        let tape = Tape::new();
        let batch_out = model.forward(&tape, tape.constant(x.clone()), None).value();
        let single = x.narrow(0, 1, 1); // second sample alone
        let tape2 = Tape::new();
        let solo_out = model.forward(&tape2, tape2.constant(single), None).value();
        let n = 6;
        for h in 0..12 {
            for i in 0..n {
                let a = batch_out.at(&[1, h, i]);
                let b = solo_out.at(&[0, h, i]);
                assert!(
                    (a - b).abs() < 1e-4,
                    "{name}: sample output depends on batch ({a} vs {b} at h={h}, i={i})"
                );
            }
        }
    }
}

#[test]
fn models_use_graph_structure() {
    // Perturbing one sensor's history must affect its neighbours'
    // predictions for every graph-aware model (spatial information flows).
    let (ctx, x) = ctx_and_input(6);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let mut bumped = x.clone();
    {
        // bump sensor 2's value feature over the last 4 input steps, sample 0
        let buf = bumped.make_mut();
        let n = 6;
        for t in 8..12 {
            buf[((t * n) + 2) * 2] += 2.0;
        }
    }
    for name in ALL_MODELS {
        let model = build_model(name, &ctx, &mut rng);
        let tape = Tape::new();
        let base = model.forward(&tape, tape.constant(x.clone()), None).value();
        let tape2 = Tape::new();
        let pert = model.forward(&tape2, tape2.constant(bumped.clone()), None).value();
        // neighbour = sensor 1 or 3 on the corridor
        let mut moved = 0.0f32;
        for h in 0..12 {
            moved += (base.at(&[0, h, 1]) - pert.at(&[0, h, 1])).abs();
            moved += (base.at(&[0, h, 3]) - pert.at(&[0, h, 3])).abs();
        }
        assert!(
            moved > 1e-4,
            "{name}: perturbing sensor 2 should influence neighbours (moved {moved})"
        );
    }
}

#[test]
fn untrained_outputs_are_bounded() {
    // Fresh models must not blow up on moderately scaled inputs.
    let (ctx, x) = ctx_and_input(6);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
    for name in ALL_MODELS {
        let model = build_model(name, &ctx, &mut rng);
        let tape = Tape::new();
        let y = model.forward(&tape, tape.constant(x.clone()), None).value();
        assert!(!y.has_non_finite(), "{name}");
        assert!(y.abs().max_all() < 1e3, "{name}: output magnitude {}", y.abs().max_all());
    }
}
