//! Vectorized elementwise kernels with runtime dispatch.
//!
//! The hot elementwise rails — scalar/broadcast arithmetic, the
//! fastmath activations, the fused gated-activation tape node, the
//! fused optimizer updates, and contiguous sums — funnel through the
//! fixed kernel vocabulary in [`Unary`] / [`Binary`] / [`Ternary`]
//! instead of opaque closures, which lets this module run them 8 lanes
//! at a time with AVX2 `core::arch` intrinsics when the CPU supports
//! it. Generic `Tensor::map`/`zip_map` closures that don't fit the
//! vocabulary keep their scalar loops.
//!
//! ## Bit-identity policy
//!
//! Lane-wise kernels are **bit-identical** to their scalar fallbacks
//! for every input bit pattern (NaN payloads excepted — both paths
//! produce *a* NaN through the same arithmetic, but x86 scalar/vector
//! NaN payload propagation is not specified identically). This holds
//! because:
//!
//! - every kernel uses only correctly-rounded IEEE ops (add, sub, mul,
//!   div, sqrt), `floor`, compare-and-blend, and sign-bit logic, all of
//!   which have exact 8-lane AVX counterparts;
//! - **FMA is deliberately not used** — neither `mul_add` in scalar
//!   code nor `_mm256_fmadd_ps` in vector code — since contraction
//!   would make the two paths (and non-FMA targets) disagree;
//! - the [`crate::fastmath`] activations are written as straight-line
//!   blend-friendly arithmetic, and the AVX2 versions here are 1:1
//!   transliterations evaluating all branches and selecting with masks
//!   in the same order the scalar branches resolve;
//! - remainder elements (len % 8) run the scalar per-element function,
//!   which computes the same bits as a vector lane would.
//!
//! Horizontal reductions ([`sum`]) are the exception: an 8-accumulator
//! sum changes association order, so SIMD reduction is **off by
//! default** and opt-in via `TRAFFIC_SIMD_REDUCE=1` (or
//! [`set_reduce_simd`]). Training losses stay bit-identical across
//! SIMD on/off unless that flag is flipped; `tests/determinism.rs`
//! pins both modes.
//!
//! ## Dispatch
//!
//! Detection runs once (AVX2 via `is_x86_feature_detected!`), cached in
//! an atomic. `TRAFFIC_SIMD=0` forces the scalar path (used by the CI
//! scalar-fallback job); [`set_force_scalar`] does the same
//! programmatically for in-process A/B tests. The kernels are plain
//! slice functions, so they compose with the worker pool unchanged —
//! `parallel_chunks_mut` splits the buffer and each chunk body calls
//! into this module; lane-wise kernels don't care where chunk
//! boundaries fall, preserving thread-count determinism.

use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------
// Dispatch state
// ---------------------------------------------------------------------

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Lane-wise kernel dispatch: AVX2 (2) or scalar (1), resolved lazily.
static SIMD_STATE: AtomicU8 = AtomicU8::new(UNINIT);
/// SIMD reductions (association-order change): default OFF.
static REDUCE_STATE: AtomicU8 = AtomicU8::new(UNINIT);

fn env_flag(name: &str) -> Option<bool> {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            Some(!(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")))
        }
        Err(_) => None,
    }
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether lane-wise kernels run vectorized. First call reads
/// `TRAFFIC_SIMD` (set to `0` to force scalar) and probes the CPU;
/// the decision is cached for the process lifetime unless overridden
/// by [`set_force_scalar`].
pub fn simd_enabled() -> bool {
    match SIMD_STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = env_flag("TRAFFIC_SIMD").unwrap_or(true) && avx2_available();
            SIMD_STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatic override of the lane-wise dispatch (tests, benches).
/// `set_force_scalar(true)` pins the scalar path; `false` re-enables
/// SIMD if the CPU supports it.
pub fn set_force_scalar(force: bool) {
    let on = !force && avx2_available();
    SIMD_STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Whether horizontal reductions run vectorized. Requires both
/// [`simd_enabled`] and the opt-in `TRAFFIC_SIMD_REDUCE=1` (default
/// off: SIMD sums change association order and therefore low-order
/// bits — see the module doc's determinism policy).
pub fn reduce_simd_enabled() -> bool {
    if !simd_enabled() {
        return false;
    }
    match REDUCE_STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = env_flag("TRAFFIC_SIMD_REDUCE").unwrap_or(false);
            REDUCE_STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatic override of the reduction opt-in (tests, benches).
pub fn set_reduce_simd(on: bool) {
    REDUCE_STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Active lane-wise backend name, for bench/report metadata.
pub fn active_backend() -> &'static str {
    if simd_enabled() {
        "avx2"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------
// Kernel vocabulary
// ---------------------------------------------------------------------

/// One-input elementwise kernels: `dst[i] = op(src[i])`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Unary {
    /// `x + c`
    AddS(f32),
    /// `x * c`
    MulS(f32),
    /// `(x * x) * c` (Adam first-step second moment)
    SqMulS(f32),
    /// `-x`
    Neg,
    /// `|x|` (sign-bit clear; bit-exact incl. NaN)
    Abs,
    /// `x.max(c)` (clamp_min / relu)
    MaxS(f32),
    /// `x.min(c)` (clamp_max)
    MinS(f32),
    /// [`crate::fastmath::tanh`]
    Tanh,
    /// [`crate::fastmath::sigmoid`]
    Sigmoid,
}

impl Unary {
    /// Static name for profiler attribution.
    pub fn name(self) -> &'static str {
        match self {
            Unary::AddS(_) => "add_s",
            Unary::MulS(_) => "mul_s",
            Unary::SqMulS(_) => "sq_mul_s",
            Unary::Neg => "neg",
            Unary::Abs => "abs",
            Unary::MaxS(_) => "max_s",
            Unary::MinS(_) => "min_s",
            Unary::Tanh => "tanh",
            Unary::Sigmoid => "sigmoid",
        }
    }

    /// Nominal flop count per element (polynomial kernels count their
    /// arithmetic ops), for GFLOP/s attribution.
    pub fn flops_per_elem(self) -> usize {
        match self {
            Unary::Tanh => 22,
            Unary::Sigmoid => 18,
            Unary::SqMulS(_) => 2,
            _ => 1,
        }
    }
}

/// Two-input elementwise kernels: `dst[i] = op(a[i], b[i])` (or
/// in-place with `a = dst`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Binary {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a + alpha * b` (axpy / scaled accumulate / SGD update with
    /// `alpha = -lr`)
    Axpy(f32),
    /// `a * c0 + b` (SGD momentum)
    ScaleAdd(f32),
    /// `a * c0 + b * c1` (Adam first moment)
    Lerp(f32, f32),
    /// `a * c0 + (b * b) * c1` (Adam second moment)
    SqLerp(f32, f32),
    /// `a * (1 - b*b)` — tanh backward with `a = grad`, `b = tanh(x)`
    TanhBwd,
    /// `(a*b) * (1 - b)` — sigmoid backward with `a = grad`, `b = σ(x)`
    SigmoidBwd,
}

impl Binary {
    /// Static name for profiler attribution.
    pub fn name(self) -> &'static str {
        match self {
            Binary::Add => "add",
            Binary::Sub => "sub",
            Binary::Mul => "mul",
            Binary::Div => "div",
            Binary::Axpy(_) => "axpy",
            Binary::ScaleAdd(_) => "scale_add",
            Binary::Lerp(_, _) => "lerp",
            Binary::SqLerp(_, _) => "sq_lerp",
            Binary::TanhBwd => "tanh_bwd",
            Binary::SigmoidBwd => "sigmoid_bwd",
        }
    }

    /// Nominal flop count per element, for GFLOP/s attribution.
    pub fn flops_per_elem(self) -> usize {
        match self {
            Binary::Add | Binary::Sub | Binary::Mul | Binary::Div => 1,
            Binary::Axpy(_) | Binary::ScaleAdd(_) => 2,
            Binary::Lerp(_, _) => 3,
            Binary::SqLerp(_, _) | Binary::TanhBwd | Binary::SigmoidBwd => 4,
        }
    }
}

/// Three-input in-place kernels: `dst[i] = op(dst[i], b[i], c[i])`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Ternary {
    /// Fused Adam parameter update with `dst = p`, `b = m`, `c = v`:
    /// `p - ((m*inv_bc1) / ((v*inv_bc2).sqrt() + eps)) * lr`.
    AdamUpdate { inv_bc1: f32, inv_bc2: f32, eps: f32, lr: f32 },
}

impl Ternary {
    /// Static name for profiler attribution.
    pub fn name(self) -> &'static str {
        match self {
            Ternary::AdamUpdate { .. } => "adam_update",
        }
    }

    /// Nominal flop count per element, for GFLOP/s attribution.
    pub fn flops_per_elem(self) -> usize {
        match self {
            Ternary::AdamUpdate { .. } => 6,
        }
    }
}

// ---------------------------------------------------------------------
// Scalar reference implementations
// ---------------------------------------------------------------------

/// Scalar per-element and whole-slice reference implementations. The
/// AVX2 path is defined to match these bit-for-bit (lane-wise ops);
/// proptests in `tests/simd_proptest.rs` enforce it.
pub mod scalar {
    use super::{Binary, Ternary, Unary};
    use crate::fastmath;

    /// One element of a [`Unary`] kernel.
    #[inline(always)]
    pub fn unary_one(op: Unary, x: f32) -> f32 {
        match op {
            Unary::AddS(c) => x + c,
            Unary::MulS(c) => x * c,
            Unary::SqMulS(c) => (x * x) * c,
            Unary::Neg => -x,
            Unary::Abs => x.abs(),
            // Exact scalar models of `maxps`/`minps`: return the
            // SECOND operand on ties (so -0 vs +0 picks `c`) and on
            // NaN. Rust's `f32::max` leaves the ±0 order unspecified,
            // which cannot be transliterated — these can.
            Unary::MaxS(c) => {
                if x > c {
                    x
                } else {
                    c
                }
            }
            Unary::MinS(c) => {
                if x < c {
                    x
                } else {
                    c
                }
            }
            Unary::Tanh => fastmath::tanh(x),
            Unary::Sigmoid => fastmath::sigmoid(x),
        }
    }

    /// One element of a [`Binary`] kernel.
    #[inline(always)]
    pub fn binary_one(op: Binary, a: f32, b: f32) -> f32 {
        match op {
            Binary::Add => a + b,
            Binary::Sub => a - b,
            Binary::Mul => a * b,
            Binary::Div => a / b,
            Binary::Axpy(alpha) => a + alpha * b,
            Binary::ScaleAdd(c0) => a * c0 + b,
            Binary::Lerp(c0, c1) => a * c0 + b * c1,
            Binary::SqLerp(c0, c1) => a * c0 + (b * b) * c1,
            Binary::TanhBwd => a * (1.0 - b * b),
            Binary::SigmoidBwd => (a * b) * (1.0 - b),
        }
    }

    /// One element of a [`Ternary`] kernel.
    #[inline(always)]
    pub fn ternary_one(op: Ternary, a: f32, b: f32, c: f32) -> f32 {
        match op {
            Ternary::AdamUpdate { inv_bc1, inv_bc2, eps, lr } => {
                let update = (b * inv_bc1) / ((c * inv_bc2).sqrt() + eps);
                a - update * lr
            }
        }
    }

    pub fn unary(op: Unary, src: &[f32], dst: &mut [f32]) {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = unary_one(op, v);
        }
    }

    pub fn unary_inplace(op: Unary, buf: &mut [f32]) {
        for v in buf.iter_mut() {
            *v = unary_one(op, *v);
        }
    }

    pub fn binary(op: Binary, a: &[f32], b: &[f32], dst: &mut [f32]) {
        for (i, o) in dst.iter_mut().enumerate() {
            *o = binary_one(op, a[i], b[i]);
        }
    }

    pub fn binary_assign(op: Binary, dst: &mut [f32], b: &[f32]) {
        for (v, &bv) in dst.iter_mut().zip(b) {
            *v = binary_one(op, *v, bv);
        }
    }

    pub fn ternary_assign(op: Ternary, dst: &mut [f32], b: &[f32], c: &[f32]) {
        for (i, v) in dst.iter_mut().enumerate() {
            *v = ternary_one(op, *v, b[i], c[i]);
        }
    }

    /// Fused `tanh(f) ⊙ σ(g)` forward: fills `t`, `s`, `out`.
    pub fn gated_fwd(f: &[f32], g: &[f32], t: &mut [f32], s: &mut [f32], out: &mut [f32]) {
        for i in 0..out.len() {
            let tv = fastmath::tanh(f[i]);
            let sv = fastmath::sigmoid(g[i]);
            t[i] = tv;
            s[i] = sv;
            out[i] = tv * sv;
        }
    }

    /// Fused gated backward: `gf = (grad·s)·(1−t²)`,
    /// `gg = ((grad·t)·s)·(1−s)`.
    pub fn gated_bwd(grad: &[f32], t: &[f32], s: &[f32], gf: &mut [f32], gg: &mut [f32]) {
        for i in 0..gf.len() {
            let (g, tv, sv) = (grad[i], t[i], s[i]);
            gf[i] = (g * sv) * (1.0 - tv * tv);
            gg[i] = ((g * tv) * sv) * (1.0 - sv);
        }
    }

    /// Sequential left-to-right sum — the deterministic default.
    pub fn sum(src: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for &v in src {
            acc += v;
        }
        acc
    }
}

// ---------------------------------------------------------------------
// AVX2 implementations (x86_64 only)
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{scalar, Binary, Ternary, Unary};
    use crate::fastmath::{EXP_C0, EXP_C1, EXP_C2, EXP_C3, EXP_C4, EXP_C5, EXP_HI, EXP_LO};
    use std::arch::x86_64::*;

    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // Cody–Waite split, same literals as crate::fastmath (exactly
    // representable; full decimal kept on purpose).
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;

    const SIGN_BIT: i32 = i32::MIN; // 0x8000_0000
    const ABS_MASK: i32 = i32::MAX; // 0x7fff_ffff

    /// Main-path arithmetic of [`crate::fastmath::exp`] — everything
    /// except the NaN/±clamp early-returns. Lanes outside
    /// `[EXP_LO, EXP_HI]` (and NaN lanes) produce garbage; callers must
    /// either apply the blends (see [`exp8`]) or discard those lanes
    /// themselves (see [`tanh8`], whose saturation/NaN blends already
    /// overwrite every lane the clamps could fire on).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn exp8_core(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let kf = _mm256_floor_ps(_mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2E)),
            _mm256_set1_ps(0.5),
        ));
        let r = _mm256_sub_ps(x, _mm256_mul_ps(kf, _mm256_set1_ps(LN2_HI)));
        let r = _mm256_sub_ps(r, _mm256_mul_ps(kf, _mm256_set1_ps(LN2_LO)));
        let p = _mm256_set1_ps(EXP_C0);
        let p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_C1));
        let p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_C2));
        let p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_C3));
        let p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_C4));
        let p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(EXP_C5));
        let p = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, r), r), r), one);
        // 2^k via exponent-field construction. `kf` is integral in
        // range here; out-of-range lanes produce the garbage the doc
        // comment warns about.
        let k = _mm256_cvtps_epi32(kf);
        let two_k = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            k,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(p, two_k)
    }

    /// 8-lane transliteration of [`crate::fastmath::exp`]: identical
    /// operation sequence, with the scalar early-returns (NaN, ±clamp)
    /// realised as final mask blends. Bit-identical per lane.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn exp8(x: __m256) -> __m256 {
        let res = exp8_core(x);
        let res = _mm256_blendv_ps(
            res,
            _mm256_set1_ps(f32::INFINITY),
            _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_set1_ps(EXP_HI)),
        );
        let res = _mm256_blendv_ps(
            res,
            _mm256_setzero_ps(),
            _mm256_cmp_ps::<_CMP_LT_OQ>(x, _mm256_set1_ps(EXP_LO)),
        );
        // NaN lanes: the scalar kernel returns its argument.
        _mm256_blendv_ps(res, x, _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x))
    }

    /// 8-lane transliteration of [`crate::fastmath::tanh`]: all three
    /// branches evaluated, selected by mask in scalar resolution order.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn tanh8(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(ABS_MASK));
        let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(SIGN_BIT));
        let ax = _mm256_and_ps(x, abs_mask);
        let sign = _mm256_and_ps(x, sign_mask);
        // |x| < 0.25: odd Taylor polynomial in u = x².
        let u = _mm256_mul_ps(x, x);
        let p = _mm256_set1_ps(62.0 / 2835.0);
        let p = _mm256_sub_ps(_mm256_mul_ps(p, u), _mm256_set1_ps(17.0 / 315.0));
        let p = _mm256_add_ps(_mm256_mul_ps(p, u), _mm256_set1_ps(2.0 / 15.0));
        let p = _mm256_sub_ps(_mm256_mul_ps(p, u), _mm256_set1_ps(1.0 / 3.0));
        let small = _mm256_mul_ps(x, _mm256_add_ps(one, _mm256_mul_ps(u, p)));
        // 0.25 ≤ |x| < 9.02: 1 − 2/(e^{2|x|} + 1), sign restored.
        // exp8_core suffices: 2|x| is never below EXP_LO (it is ≥ 0),
        // lanes with 2|x| > EXP_HI have |x| > 44 and are overwritten by
        // the saturation blend below, and NaN lanes by the UNORD blend —
        // so every surviving lane matches the scalar exp main path
        // bit-for-bit while the three clamp blends are skipped.
        let e = exp8_core(_mm256_mul_ps(_mm256_set1_ps(2.0), ax));
        let big = _mm256_sub_ps(one, _mm256_div_ps(_mm256_set1_ps(2.0), _mm256_add_ps(e, one)));
        let big = _mm256_or_ps(_mm256_and_ps(big, abs_mask), sign);
        // |x| ≥ 9.02 (incl. ±inf): ±1.
        let sat = _mm256_or_ps(one, sign);
        let r = _mm256_blendv_ps(sat, big, _mm256_cmp_ps::<_CMP_LT_OQ>(ax, _mm256_set1_ps(9.02)));
        let r = _mm256_blendv_ps(r, small, _mm256_cmp_ps::<_CMP_LT_OQ>(ax, _mm256_set1_ps(0.25)));
        _mm256_blendv_ps(r, x, _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x))
    }

    /// 8-lane transliteration of [`crate::fastmath::sigmoid`].
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn sigmoid8(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(SIGN_BIT));
        let neg_x = _mm256_xor_ps(x, sign_mask);
        _mm256_div_ps(one, _mm256_add_ps(one, exp8(neg_x)))
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn unary8(op: Unary, v: __m256) -> __m256 {
        match op {
            Unary::AddS(c) => _mm256_add_ps(v, _mm256_set1_ps(c)),
            Unary::MulS(c) => _mm256_mul_ps(v, _mm256_set1_ps(c)),
            Unary::SqMulS(c) => _mm256_mul_ps(_mm256_mul_ps(v, v), _mm256_set1_ps(c)),
            Unary::Neg => _mm256_xor_ps(v, _mm256_castsi256_ps(_mm256_set1_epi32(SIGN_BIT))),
            Unary::Abs => _mm256_and_ps(v, _mm256_castsi256_ps(_mm256_set1_epi32(ABS_MASK))),
            Unary::MaxS(c) => _mm256_max_ps(v, _mm256_set1_ps(c)),
            Unary::MinS(c) => _mm256_min_ps(v, _mm256_set1_ps(c)),
            Unary::Tanh => tanh8(v),
            Unary::Sigmoid => sigmoid8(v),
        }
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn binary8(op: Binary, a: __m256, b: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        match op {
            Binary::Add => _mm256_add_ps(a, b),
            Binary::Sub => _mm256_sub_ps(a, b),
            Binary::Mul => _mm256_mul_ps(a, b),
            Binary::Div => _mm256_div_ps(a, b),
            Binary::Axpy(alpha) => _mm256_add_ps(a, _mm256_mul_ps(_mm256_set1_ps(alpha), b)),
            Binary::ScaleAdd(c0) => _mm256_add_ps(_mm256_mul_ps(a, _mm256_set1_ps(c0)), b),
            Binary::Lerp(c0, c1) => _mm256_add_ps(
                _mm256_mul_ps(a, _mm256_set1_ps(c0)),
                _mm256_mul_ps(b, _mm256_set1_ps(c1)),
            ),
            Binary::SqLerp(c0, c1) => _mm256_add_ps(
                _mm256_mul_ps(a, _mm256_set1_ps(c0)),
                _mm256_mul_ps(_mm256_mul_ps(b, b), _mm256_set1_ps(c1)),
            ),
            Binary::TanhBwd => _mm256_mul_ps(a, _mm256_sub_ps(one, _mm256_mul_ps(b, b))),
            Binary::SigmoidBwd => _mm256_mul_ps(_mm256_mul_ps(a, b), _mm256_sub_ps(one, b)),
        }
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn ternary8(op: Ternary, a: __m256, b: __m256, c: __m256) -> __m256 {
        match op {
            Ternary::AdamUpdate { inv_bc1, inv_bc2, eps, lr } => {
                let update = _mm256_div_ps(
                    _mm256_mul_ps(b, _mm256_set1_ps(inv_bc1)),
                    _mm256_add_ps(
                        _mm256_sqrt_ps(_mm256_mul_ps(c, _mm256_set1_ps(inv_bc2))),
                        _mm256_set1_ps(eps),
                    ),
                );
                _mm256_sub_ps(a, _mm256_mul_ps(update, _mm256_set1_ps(lr)))
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn unary(op: Unary, src: &[f32], dst: &mut [f32]) {
        let n = dst.len();
        let n8 = n - n % 8;
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n8 {
            _mm256_storeu_ps(dp.add(i), unary8(op, _mm256_loadu_ps(sp.add(i))));
            i += 8;
        }
        for j in n8..n {
            *dp.add(j) = scalar::unary_one(op, *sp.add(j));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn unary_inplace(op: Unary, buf: &mut [f32]) {
        let n = buf.len();
        let n8 = n - n % 8;
        let p = buf.as_mut_ptr();
        let mut i = 0;
        while i < n8 {
            _mm256_storeu_ps(p.add(i), unary8(op, _mm256_loadu_ps(p.add(i))));
            i += 8;
        }
        for j in n8..n {
            *p.add(j) = scalar::unary_one(op, *p.add(j));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn binary(op: Binary, a: &[f32], b: &[f32], dst: &mut [f32]) {
        let n = dst.len();
        let n8 = n - n % 8;
        let (ap, bp, dp) = (a.as_ptr(), b.as_ptr(), dst.as_mut_ptr());
        let mut i = 0;
        while i < n8 {
            _mm256_storeu_ps(
                dp.add(i),
                binary8(op, _mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i))),
            );
            i += 8;
        }
        for j in n8..n {
            *dp.add(j) = scalar::binary_one(op, *ap.add(j), *bp.add(j));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn binary_assign(op: Binary, dst: &mut [f32], b: &[f32]) {
        let n = dst.len();
        let n8 = n - n % 8;
        let (dp, bp) = (dst.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i < n8 {
            _mm256_storeu_ps(
                dp.add(i),
                binary8(op, _mm256_loadu_ps(dp.add(i)), _mm256_loadu_ps(bp.add(i))),
            );
            i += 8;
        }
        for j in n8..n {
            *dp.add(j) = scalar::binary_one(op, *dp.add(j), *bp.add(j));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn ternary_assign(op: Ternary, dst: &mut [f32], b: &[f32], c: &[f32]) {
        let n = dst.len();
        let n8 = n - n % 8;
        let (dp, bp, cp) = (dst.as_mut_ptr(), b.as_ptr(), c.as_ptr());
        let mut i = 0;
        while i < n8 {
            _mm256_storeu_ps(
                dp.add(i),
                ternary8(
                    op,
                    _mm256_loadu_ps(dp.add(i)),
                    _mm256_loadu_ps(bp.add(i)),
                    _mm256_loadu_ps(cp.add(i)),
                ),
            );
            i += 8;
        }
        for j in n8..n {
            *dp.add(j) = scalar::ternary_one(op, *dp.add(j), *bp.add(j), *cp.add(j));
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gated_fwd(f: &[f32], g: &[f32], t: &mut [f32], s: &mut [f32], out: &mut [f32]) {
        let n = out.len();
        let n8 = n - n % 8;
        let (fp, gp) = (f.as_ptr(), g.as_ptr());
        let (tp, sp, op_) = (t.as_mut_ptr(), s.as_mut_ptr(), out.as_mut_ptr());
        let mut i = 0;
        // 2×8 main loop: two independent tanh/sigmoid chains per
        // iteration give the out-of-order core more to overlap (the
        // chains are latency-bound through exp's Horner ladder).
        let n16 = n - n % 16;
        while i < n16 {
            let t0 = tanh8(_mm256_loadu_ps(fp.add(i)));
            let t1 = tanh8(_mm256_loadu_ps(fp.add(i + 8)));
            let s0 = sigmoid8(_mm256_loadu_ps(gp.add(i)));
            let s1 = sigmoid8(_mm256_loadu_ps(gp.add(i + 8)));
            _mm256_storeu_ps(tp.add(i), t0);
            _mm256_storeu_ps(tp.add(i + 8), t1);
            _mm256_storeu_ps(sp.add(i), s0);
            _mm256_storeu_ps(sp.add(i + 8), s1);
            _mm256_storeu_ps(op_.add(i), _mm256_mul_ps(t0, s0));
            _mm256_storeu_ps(op_.add(i + 8), _mm256_mul_ps(t1, s1));
            i += 16;
        }
        while i < n8 {
            let tv = tanh8(_mm256_loadu_ps(fp.add(i)));
            let sv = sigmoid8(_mm256_loadu_ps(gp.add(i)));
            _mm256_storeu_ps(tp.add(i), tv);
            _mm256_storeu_ps(sp.add(i), sv);
            _mm256_storeu_ps(op_.add(i), _mm256_mul_ps(tv, sv));
            i += 8;
        }
        if n8 < n {
            scalar::gated_fwd(&f[n8..], &g[n8..], &mut t[n8..], &mut s[n8..], &mut out[n8..]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gated_bwd(grad: &[f32], t: &[f32], s: &[f32], gf: &mut [f32], gg: &mut [f32]) {
        let one = _mm256_set1_ps(1.0);
        let n = gf.len();
        let n8 = n - n % 8;
        let (gp, tp, sp) = (grad.as_ptr(), t.as_ptr(), s.as_ptr());
        let (gfp, ggp) = (gf.as_mut_ptr(), gg.as_mut_ptr());
        let mut i = 0;
        while i < n8 {
            let g = _mm256_loadu_ps(gp.add(i));
            let tv = _mm256_loadu_ps(tp.add(i));
            let sv = _mm256_loadu_ps(sp.add(i));
            // (g·s)·(1 − t²)
            let a = _mm256_mul_ps(_mm256_mul_ps(g, sv), _mm256_sub_ps(one, _mm256_mul_ps(tv, tv)));
            // ((g·t)·s)·(1 − s)
            let b = _mm256_mul_ps(_mm256_mul_ps(_mm256_mul_ps(g, tv), sv), _mm256_sub_ps(one, sv));
            _mm256_storeu_ps(gfp.add(i), a);
            _mm256_storeu_ps(ggp.add(i), b);
            i += 8;
        }
        if n8 < n {
            scalar::gated_bwd(&grad[n8..], &t[n8..], &s[n8..], &mut gf[n8..], &mut gg[n8..]);
        }
    }

    /// 8-accumulator sum + horizontal fold. NOT bit-identical to the
    /// sequential scalar sum (association order differs) — gated behind
    /// `TRAFFIC_SIMD_REDUCE`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(src: &[f32]) -> f32 {
        let n = src.len();
        let n8 = n - n % 8;
        let p = src.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < n8 {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let s4 = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps::<1>(s2, s2));
        let mut total = _mm_cvtss_f32(s1);
        for j in n8..n {
            total += *p.add(j);
        }
        total
    }
}

// ---------------------------------------------------------------------
// Dispatched API
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($avx2:expr, $scalar:expr) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if simd_enabled() {
                // SAFETY: simd_enabled() implies AVX2 was detected at
                // runtime on this CPU.
                return unsafe { $avx2 };
            }
        }
        $scalar
    }};
}

/// `dst[i] = op(src[i])`. Slices must be the same length.
pub fn unary(op: Unary, src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    dispatch!(avx2::unary(op, src, dst), scalar::unary(op, src, dst))
}

/// `buf[i] = op(buf[i])` in place.
pub fn unary_inplace(op: Unary, buf: &mut [f32]) {
    dispatch!(avx2::unary_inplace(op, buf), scalar::unary_inplace(op, buf))
}

/// `dst[i] = op(a[i], b[i])`. Slices must be the same length.
pub fn binary(op: Binary, a: &[f32], b: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(a.len(), dst.len());
    debug_assert_eq!(b.len(), dst.len());
    dispatch!(avx2::binary(op, a, b, dst), scalar::binary(op, a, b, dst))
}

/// `dst[i] = op(dst[i], b[i])` in place.
pub fn binary_assign(op: Binary, dst: &mut [f32], b: &[f32]) {
    debug_assert_eq!(b.len(), dst.len());
    dispatch!(avx2::binary_assign(op, dst, b), scalar::binary_assign(op, dst, b))
}

/// `dst[i] = op(dst[i], b[i], c[i])` in place.
pub fn ternary_assign(op: Ternary, dst: &mut [f32], b: &[f32], c: &[f32]) {
    debug_assert_eq!(b.len(), dst.len());
    debug_assert_eq!(c.len(), dst.len());
    dispatch!(avx2::ternary_assign(op, dst, b, c), scalar::ternary_assign(op, dst, b, c))
}

/// Fused gated-activation forward: `t = tanh(f)`, `s = σ(g)`,
/// `out = t ⊙ s`, one pass.
pub fn gated_fwd(f: &[f32], g: &[f32], t: &mut [f32], s: &mut [f32], out: &mut [f32]) {
    debug_assert!(f.len() == out.len() && g.len() == out.len());
    debug_assert!(t.len() == out.len() && s.len() == out.len());
    dispatch!(avx2::gated_fwd(f, g, t, s, out), scalar::gated_fwd(f, g, t, s, out))
}

/// Fused gated-activation backward: `gf = (grad·s)·(1−t²)`,
/// `gg = ((grad·t)·s)·(1−s)`, one pass.
pub fn gated_bwd(grad: &[f32], t: &[f32], s: &[f32], gf: &mut [f32], gg: &mut [f32]) {
    debug_assert!(grad.len() == gf.len() && t.len() == gf.len());
    debug_assert!(s.len() == gf.len() && gg.len() == gf.len());
    dispatch!(avx2::gated_bwd(grad, t, s, gf, gg), scalar::gated_bwd(grad, t, s, gf, gg))
}

/// Contiguous sum. Runs the 8-accumulator SIMD fold only when both
/// [`simd_enabled`] and [`reduce_simd_enabled`] hold; otherwise the
/// deterministic sequential scalar sum.
pub fn sum(src: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    {
        if reduce_simd_enabled() {
            // SAFETY: reduce_simd_enabled() implies simd_enabled(),
            // which implies AVX2 was detected at runtime.
            return unsafe { avx2::sum(src) };
        }
    }
    scalar::sum(src)
}

// ---------------------------------------------------------------------
// Forced AVX2 entry points (tests / benches)
// ---------------------------------------------------------------------
//
// These bypass the global dispatch so scalar-vs-SIMD comparisons are
// race-free (no process-wide toggles). Each returns whether the AVX2
// path actually ran — `false` means the CPU (or target) lacks AVX2 and
// the caller should skip the comparison.

/// Forced-AVX2 [`unary`]; returns `false` (dst untouched) without AVX2.
pub fn try_unary_avx2(op: Unary, src: &[f32], dst: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            unsafe { avx2::unary(op, src, dst) };
            return true;
        }
    }
    let _ = (op, src, dst);
    false
}

/// Forced-AVX2 [`binary`]; returns `false` (dst untouched) without AVX2.
pub fn try_binary_avx2(op: Binary, a: &[f32], b: &[f32], dst: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            unsafe { avx2::binary(op, a, b, dst) };
            return true;
        }
    }
    let _ = (op, a, b, dst);
    false
}

/// Forced-AVX2 [`ternary_assign`]; returns `false` without AVX2.
pub fn try_ternary_assign_avx2(op: Ternary, dst: &mut [f32], b: &[f32], c: &[f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            unsafe { avx2::ternary_assign(op, dst, b, c) };
            return true;
        }
    }
    let _ = (op, dst, b, c);
    false
}

/// Forced-AVX2 [`gated_fwd`]; returns `false` without AVX2.
pub fn try_gated_fwd_avx2(
    f: &[f32],
    g: &[f32],
    t: &mut [f32],
    s: &mut [f32],
    out: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            unsafe { avx2::gated_fwd(f, g, t, s, out) };
            return true;
        }
    }
    let _ = (f, g, t, s, out);
    false
}

/// Forced-AVX2 [`gated_bwd`]; returns `false` without AVX2.
pub fn try_gated_bwd_avx2(
    grad: &[f32],
    t: &[f32],
    s: &[f32],
    gf: &mut [f32],
    gg: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            unsafe { avx2::gated_bwd(grad, t, s, gf, gg) };
            return true;
        }
    }
    let _ = (grad, t, s, gf, gg);
    false
}

/// Forced-AVX2 [`sum`]; `None` without AVX2.
pub fn try_sum_avx2(src: &[f32]) -> Option<f32> {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            return Some(unsafe { avx2::sum(src) });
        }
    }
    let _ = src;
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_eq(a: f32, b: f32) -> bool {
        a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
    }

    #[test]
    fn dispatch_flags_resolve() {
        // Exercise the lazy init paths; on x86_64 CI hosts AVX2 is
        // present, elsewhere this still must not panic.
        let _ = simd_enabled();
        assert!(["avx2", "scalar"].contains(&active_backend()));
        // Reductions default off unless the env opts in.
        if std::env::var("TRAFFIC_SIMD_REDUCE").is_err() {
            assert!(!reduce_simd_enabled());
        }
    }

    #[test]
    fn forced_avx2_matches_scalar_smoke() {
        // The exhaustive comparison lives in tests/simd_proptest.rs;
        // this is the in-crate smoke check over awkward lengths.
        for n in [0usize, 1, 7, 8, 9, 31] {
            let src: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 3.0).collect();
            let mut want = vec![0.0f32; n];
            scalar::unary(Unary::Tanh, &src, &mut want);
            let mut got = vec![0.0f32; n];
            if try_unary_avx2(Unary::Tanh, &src, &mut got) {
                for i in 0..n {
                    assert!(bits_eq(got[i], want[i]), "lane {i} of {n}");
                }
            }
        }
    }

    #[test]
    fn simd_sum_close_to_scalar() {
        let src: Vec<f32> = (0..4095).map(|i| ((i % 97) as f32) * 0.013 - 0.5).collect();
        let want = scalar::sum(&src);
        // Both orders approximate the same real sum; their gap is
        // bounded by worst-case f32 accumulation error over the
        // absolute mass (n·ε·Σ|x|, dominated by the sequential side).
        let mass: f32 = src.iter().map(|v| v.abs()).sum();
        let bound = (mass + 1.0) * f32::EPSILON * (src.len() as f32) * 0.5;
        if let Some(got) = try_sum_avx2(&src) {
            assert!((got - want).abs() <= bound, "simd {got} vs scalar {want} (bound {bound})");
        }
    }
}
