//! DCRNN (Li et al., ICLR 2018): diffusion convolutional recurrent neural
//! network. GRU cells whose gate transforms are diffusion convolutions over
//! forward/backward random-walk transition matrices, arranged encoder →
//! decoder with scheduled sampling.
//!
//! The autoregressive decoder is the source of the error accumulation the
//! paper observes at long horizons (§VI).

use rand::rngs::StdRng;
use rand::Rng;
use traffic_nn::{DiffusionConv, Linear, ParamStore};
use traffic_tensor::{Tape, Tensor, Var};

use crate::common::{GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// DCRNN hyper-parameters.
#[derive(Debug, Clone)]
pub struct DcrnnConfig {
    /// GRU hidden width.
    pub hidden: usize,
    /// Stacked DCGRU layers in encoder and decoder (the original uses 2).
    pub num_layers: usize,
    /// Diffusion steps `K`.
    pub diffusion_steps: usize,
    /// Input horizon.
    pub t_in: usize,
    /// Output horizon.
    pub t_out: usize,
    /// Input feature count.
    pub in_features: usize,
}

impl Default for DcrnnConfig {
    fn default() -> Self {
        DcrnnConfig {
            hidden: 16,
            num_layers: 2,
            diffusion_steps: 2,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

/// GRU cell with diffusion-convolution gates, over `[B, N, F]` states.
struct DcGruCell {
    gates: DiffusionConv,
    candidate: DiffusionConv,
    hidden: usize,
}

impl DcGruCell {
    fn new(
        store: &mut ParamStore,
        prefix: &str,
        ctx: &GraphContext,
        k: usize,
        input: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        let gates = DiffusionConv::new(
            store,
            &format!("{prefix}.gates"),
            ctx.supports.clone(),
            0,
            k,
            input + hidden,
            2 * hidden,
            rng,
        );
        let candidate = DiffusionConv::new(
            store,
            &format!("{prefix}.candidate"),
            ctx.supports.clone(),
            0,
            k,
            input + hidden,
            hidden,
            rng,
        );
        DcGruCell { gates, candidate, hidden }
    }

    /// `x: [B, N, F]`, `h: [B, N, H]` → `[B, N, H]`.
    fn step<'t>(&self, tape: &'t Tape, x: Var<'t>, h: Var<'t>) -> Var<'t> {
        let xh = Var::concat(&[x, h], 2);
        let rz = self.gates.forward(tape, xh).sigmoid();
        let r = rz.narrow(2, 0, self.hidden);
        let z = rz.narrow(2, self.hidden, self.hidden);
        let xrh = Var::concat(&[x, r.mul(&h)], 2);
        let c = self.candidate.forward(tape, xrh).tanh();
        z.mul(&h).add(&z.neg().add_scalar(1.0).mul(&c))
    }
}

/// The DCRNN model.
pub struct Dcrnn {
    store: ParamStore,
    encoder: Vec<DcGruCell>,
    decoder: Vec<DcGruCell>,
    proj: Linear,
    cfg: DcrnnConfig,
}

impl Dcrnn {
    /// Builds DCRNN for a graph context.
    pub fn new(ctx: &GraphContext, cfg: DcrnnConfig, rng: &mut StdRng) -> Self {
        assert!(cfg.num_layers >= 1);
        let mut store = ParamStore::new();
        let encoder = (0..cfg.num_layers)
            .map(|l| {
                let input = if l == 0 { cfg.in_features } else { cfg.hidden };
                DcGruCell::new(
                    &mut store,
                    &format!("encoder{l}"),
                    ctx,
                    cfg.diffusion_steps,
                    input,
                    cfg.hidden,
                    rng,
                )
            })
            .collect();
        // Decoder input: previous prediction (1 feature) at layer 0.
        let decoder = (0..cfg.num_layers)
            .map(|l| {
                let input = if l == 0 { 1 } else { cfg.hidden };
                DcGruCell::new(
                    &mut store,
                    &format!("decoder{l}"),
                    ctx,
                    cfg.diffusion_steps,
                    input,
                    cfg.hidden,
                    rng,
                )
            })
            .collect();
        let proj = Linear::new(&mut store, "proj", cfg.hidden, 1, true, rng);
        Dcrnn { store, encoder, decoder, proj, cfg }
    }
}

impl TrafficModel for Dcrnn {
    fn name(&self) -> &'static str {
        "DCRNN"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("DCRNN").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        mut train: Option<&mut TrainCtx<'_>>,
    ) -> Var<'t> {
        let shape = x.shape();
        let (b, t_in, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(t_in, self.cfg.t_in);
        // Encode through the stacked layers.
        let mut enc_h: Vec<Var<'t>> = (0..self.cfg.num_layers)
            .map(|_| tape.constant(Tensor::zeros(&[b, n, self.cfg.hidden])))
            .collect();
        for t in 0..t_in {
            let mut inp = x.narrow(1, t, 1).reshape(&[b, n, self.cfg.in_features]);
            for (l, cell) in self.encoder.iter().enumerate() {
                enc_h[l] = cell.step(tape, inp, enc_h[l]);
                inp = enc_h[l];
            }
        }
        // Decode autoregressively from a GO (zero) symbol; decoder layers
        // start from the encoder's final states.
        let mut dec_h = enc_h;
        let mut dec_in = tape.constant(Tensor::zeros(&[b, n, 1]));
        let mut outs = Vec::with_capacity(self.cfg.t_out);
        for t in 0..self.cfg.t_out {
            let mut inp = dec_in;
            for (l, cell) in self.decoder.iter().enumerate() {
                dec_h[l] = cell.step(tape, inp, dec_h[l]);
                inp = dec_h[l];
            }
            let y = self.proj.forward(tape, inp); // [B, N, 1]
            outs.push(y.reshape(&[b, 1, n]));
            // Scheduled sampling: with probability teacher_prob feed the
            // ground truth, else the model's own prediction.
            let use_teacher = train.as_deref_mut().is_some_and(|ctx| {
                ctx.teacher.is_some() && ctx.rng.gen::<f32>() < ctx.teacher_prob
            });
            dec_in = if use_teacher {
                let teach = train.as_deref().and_then(|c| c.teacher).expect("checked above");
                tape.constant(teach.narrow(1, t, 1).reshape(&[b, n, 1]))
            } else {
                y
            };
        }
        Var::concat(&outs, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(6);
        let net = freeway_corridor(6, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn forward_shapes() {
        let (ctx, mut rng) = setup();
        let model = Dcrnn::new(&ctx, DcrnnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 6, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 6]);
    }

    #[test]
    fn scheduled_sampling_uses_teacher() {
        let (ctx, mut rng) = setup();
        let model = Dcrnn::new(&ctx, DcrnnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 12, 6, 2]));
        let teacher = Tensor::ones(&[1, 12, 6]);
        let mut trng = StdRng::seed_from_u64(1);
        let mut always = TrainCtx { rng: &mut trng, teacher: Some(&teacher), teacher_prob: 1.0 };
        let y1 = model.forward(&tape, x, Some(&mut always)).value();
        let tape2 = Tape::new();
        let x2 = tape2.constant(Tensor::zeros(&[1, 12, 6, 2]));
        let mut trng2 = StdRng::seed_from_u64(1);
        let mut never = TrainCtx { rng: &mut trng2, teacher: Some(&teacher), teacher_prob: 0.0 };
        let y2 = model.forward(&tape2, x2, Some(&mut never)).value();
        // Feeding teacher values must change downstream predictions.
        assert_ne!(y1, y2);
        // But the first step (before any feedback) must be identical.
        assert_eq!(y1.at(&[0, 0, 0]), y2.at(&[0, 0, 0]));
    }

    #[test]
    fn grads_reach_all_params() {
        let (ctx, mut rng) = setup();
        let model = Dcrnn::new(&ctx, DcrnnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(traffic_tensor::init::uniform(&[1, 12, 6, 2], -1.0, 1.0, &mut rng));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn taxonomy_is_spatial_rnn() {
        let (ctx, mut rng) = setup();
        let model = Dcrnn::new(&ctx, DcrnnConfig::default(), &mut rng);
        let m = model.meta();
        assert_eq!(m.spatial, crate::meta::SpatialComponent::SpatialGcn);
        assert_eq!(m.temporal, crate::meta::TemporalComponent::Rnn);
    }
}
