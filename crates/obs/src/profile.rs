//! traffic-prof: op-level profiling with flame-table and Chrome-trace
//! export.
//!
//! Spans ([`crate::span`]) time coarse regions (`train/epoch`,
//! `train/batch`); this module times individual *ops* — one GEMM, one
//! tape node's backward closure, one pool task, one mem-pool
//! take/recycle — so a training step can be attributed kernel by
//! kernel. Design rules:
//!
//! - **Off means off.** [`op`] starts with a single relaxed atomic
//!   load; when profiling is disabled it returns an inert guard
//!   without touching a thread-local, taking a lock, or allocating
//!   (asserted by a counting-allocator test). Instrumented hot paths
//!   stay within noise of uninstrumented ones.
//! - **Per-thread recording.** Each thread appends [`OpRecord`]s to
//!   its own buffer (registered globally once per thread), so
//!   recording never contends across pool workers. Buffers are capped
//!   at [`MAX_RECORDS_PER_THREAD`]; overflow increments a `dropped`
//!   counter instead of growing without bound.
//! - **Self time vs total time.** A per-thread frame stack subtracts
//!   child op time from each parent, so the flame table can rank ops
//!   by *self* time (where the cycles actually went) while still
//!   reporting inclusive totals.
//!
//! Two exporters read the buffers back:
//!
//! - [`flame_table`] / [`render_flame_table`]: per-op aggregates
//!   (count, total, self, % of self time, gflops, GB/s), sorted by
//!   self time.
//! - [`chrome_trace`]: a Chrome `trace_event` JSON document (complete
//!   `"X"` events plus `"M"` thread-name metadata, one lane per
//!   thread including pool workers) loadable in Perfetto or
//!   `chrome://tracing`.
//!
//! [`crate::RunBuilder::profiled`] wires both into the run lifecycle:
//! profiling starts with the run and, at run end, the flame table
//! lands in the manifest (as `op_stat` events) and both report files
//! land under the chosen directory.

use std::cell::{Cell, RefCell};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::push_json_str;

/// Per-thread record cap (~25 MB worst case at ~96 B/record). Beyond
/// it, records are counted as dropped rather than stored.
pub const MAX_RECORDS_PER_THREAD: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while profiling is recording. One relaxed atomic load — cheap
/// enough for per-node and per-allocation call sites.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One finished op.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Coarse category (`gemm`, `bwd`, `pool`, `mem`, `conv`, …).
    pub cat: &'static str,
    /// Op name within the category (`nn`, `mul`, `take`, …).
    pub name: &'static str,
    /// Start, nanoseconds on the process-wide telemetry clock.
    pub start_ns: u64,
    /// Inclusive wall-clock duration.
    pub dur_ns: u64,
    /// Duration minus time spent in nested ops on the same thread.
    pub self_ns: u64,
    /// Floating-point operations attributed to this op (0 = n/a).
    pub flops: u64,
    /// Bytes moved (read + written) by this op (0 = n/a).
    pub bytes: u64,
    /// Tape node id for `bwd` ops (-1 = not a tape node).
    pub node: i64,
    /// Per-thread op sequence number (assigned at start).
    pub seq: u64,
    /// `seq` of the enclosing op on the same thread (-1 = top level).
    pub parent: i64,
}

struct ThreadBuf {
    /// Dense obs thread id ([`crate::current_thread_id`]).
    thread: u64,
    /// Lane label for the trace (OS thread name when available).
    name: Mutex<String>,
    records: Mutex<Vec<OpRecord>>,
    dropped: AtomicU64,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct Frame {
    seq: u64,
    child_ns: u64,
}

thread_local! {
    static BUF: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            thread: crate::current_thread_id(),
            name: Mutex::new(
                std::thread::current().name().unwrap_or("thread").to_string(),
            ),
            records: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        registry().lock().expect("profile registry poisoned").push(Arc::clone(&buf));
        buf
    };
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static NEXT_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Clears all recorded ops and starts recording.
pub fn start() {
    clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording. Recorded ops stay readable until the next
/// [`start`] / [`clear`].
pub fn stop() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Drops every recorded op (thread buffers keep their lane names).
pub fn clear() {
    for buf in registry().lock().expect("profile registry poisoned").iter() {
        buf.records.lock().expect("profile buffer poisoned").clear();
        buf.dropped.store(0, Ordering::Relaxed);
    }
}

/// Overrides the calling thread's lane label in the Chrome trace
/// (defaults to the OS thread name, e.g. `traffic-compute-3`).
pub fn set_thread_name(name: &str) {
    BUF.with(|b| *b.name.lock().expect("profile buffer poisoned") = name.to_string());
}

/// Opens an op. Records on drop when profiling is enabled; otherwise
/// the guard is inert and the call costs one atomic load.
#[inline]
pub fn op(cat: &'static str, name: &'static str) -> OpGuard {
    if !enabled() {
        return OpGuard {
            active: false,
            cat,
            name,
            start_ns: 0,
            seq: 0,
            parent: -1,
            flops: 0,
            bytes: 0,
            node: -1,
        };
    }
    let start_ns = crate::elapsed_ns();
    let seq = NEXT_SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    });
    let parent = FRAMES.with(|frames| {
        let mut frames = frames.borrow_mut();
        let parent = frames.last().map(|f| f.seq as i64).unwrap_or(-1);
        frames.push(Frame { seq, child_ns: 0 });
        parent
    });
    OpGuard { active: true, cat, name, start_ns, seq, parent, flops: 0, bytes: 0, node: -1 }
}

/// RAII guard for one op; see [`op`].
pub struct OpGuard {
    active: bool,
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    seq: u64,
    parent: i64,
    flops: u64,
    bytes: u64,
    node: i64,
}

impl OpGuard {
    /// Attributes floating-point work to this op.
    #[inline]
    pub fn set_flops(&mut self, flops: usize) {
        self.flops = flops as u64;
    }

    /// Attributes bytes moved (read + written) to this op.
    #[inline]
    pub fn set_bytes(&mut self, bytes: usize) {
        self.bytes = bytes as u64;
    }

    /// Tags this op with a tape node id (`bwd` ops).
    #[inline]
    pub fn set_node(&mut self, id: usize) {
        self.node = id as i64;
    }
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = crate::elapsed_ns().saturating_sub(self.start_ns);
        let child_ns = FRAMES.with(|frames| {
            let mut frames = frames.borrow_mut();
            // Pop our own frame; search from the top so a leaked guard
            // cannot desynchronise every later op on this thread.
            let child = match frames.iter().rposition(|f| f.seq == self.seq) {
                Some(pos) => frames.remove(pos).child_ns,
                None => 0,
            };
            if let Some(top) = frames.last_mut() {
                top.child_ns += dur_ns;
            }
            child
        });
        let record = OpRecord {
            cat: self.cat,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns,
            self_ns: dur_ns.saturating_sub(child_ns),
            flops: self.flops,
            bytes: self.bytes,
            node: self.node,
            seq: self.seq,
            parent: self.parent,
        };
        BUF.with(|buf| {
            let mut records = buf.records.lock().expect("profile buffer poisoned");
            if records.len() < MAX_RECORDS_PER_THREAD {
                records.push(record);
            } else {
                buf.dropped.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

/// Snapshot of one thread's recorded ops.
#[derive(Debug, Clone)]
pub struct ThreadProfile {
    /// Dense obs thread id.
    pub thread: u64,
    /// Lane label (OS thread name unless overridden).
    pub name: String,
    /// Recorded ops in finish order.
    pub records: Vec<OpRecord>,
    /// Ops dropped after the per-thread cap was hit.
    pub dropped: u64,
}

/// Copies every thread's recorded ops out of the registry.
pub fn snapshot() -> Vec<ThreadProfile> {
    registry()
        .lock()
        .expect("profile registry poisoned")
        .iter()
        .map(|buf| ThreadProfile {
            thread: buf.thread,
            name: buf.name.lock().expect("profile buffer poisoned").clone(),
            records: buf.records.lock().expect("profile buffer poisoned").clone(),
            dropped: buf.dropped.load(Ordering::Relaxed),
        })
        .collect()
}

/// Total recorded ops across all threads.
pub fn op_count() -> usize {
    registry()
        .lock()
        .expect("profile registry poisoned")
        .iter()
        .map(|buf| buf.records.lock().expect("profile buffer poisoned").len())
        .sum()
}

/// Per-op aggregate over every thread.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStat {
    /// Category (`gemm`, `bwd`, …).
    pub cat: &'static str,
    /// Op name within the category.
    pub name: &'static str,
    /// Number of recorded instances.
    pub count: u64,
    /// Sum of inclusive durations.
    pub total_ns: u64,
    /// Sum of self (exclusive) durations.
    pub self_ns: u64,
    /// Sum of attributed flops.
    pub flops: u64,
    /// Sum of attributed bytes.
    pub bytes: u64,
}

/// Aggregates all recorded ops into per-`(cat, name)` stats, sorted by
/// self time descending — the flame table.
pub fn flame_table() -> Vec<OpStat> {
    let mut agg: std::collections::BTreeMap<(&'static str, &'static str), OpStat> =
        std::collections::BTreeMap::new();
    for tp in snapshot() {
        for r in &tp.records {
            let stat = agg.entry((r.cat, r.name)).or_insert(OpStat {
                cat: r.cat,
                name: r.name,
                count: 0,
                total_ns: 0,
                self_ns: 0,
                flops: 0,
                bytes: 0,
            });
            stat.count += 1;
            stat.total_ns += r.dur_ns;
            stat.self_ns += r.self_ns;
            stat.flops += r.flops;
            stat.bytes += r.bytes;
        }
    }
    let mut stats: Vec<OpStat> = agg.into_values().collect();
    stats.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
    stats
}

/// Renders a flame table as fixed-width text. `self%` is each op's
/// share of the summed self time, so the column totals ≈ 100%.
pub fn render_flame_table(stats: &[OpStat]) -> String {
    let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>8} {:>11} {:>11} {:>7} {:>8} {:>8}\n",
        "op", "count", "total_ms", "self_ms", "self%", "gflops", "GB/s"
    ));
    for s in stats {
        let pct = if total_self > 0 { s.self_ns as f64 / total_self as f64 * 100.0 } else { 0.0 };
        let secs = s.total_ns as f64 * 1e-9;
        let gflops = if s.flops > 0 && secs > 0.0 { s.flops as f64 / secs / 1e9 } else { 0.0 };
        let gbs = if s.bytes > 0 && secs > 0.0 { s.bytes as f64 / secs / 1e9 } else { 0.0 };
        out.push_str(&format!(
            "{:<22} {:>8} {:>11.3} {:>11.3} {:>6.1}% {:>8.2} {:>8.2}\n",
            format!("{}/{}", s.cat, s.name),
            s.count,
            s.total_ns as f64 * 1e-6,
            s.self_ns as f64 * 1e-6,
            pct,
            gflops,
            gbs,
        ));
    }
    let dropped: u64 = snapshot().iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        out.push_str(&format!("({dropped} ops dropped past the per-thread record cap)\n"));
    }
    out
}

/// Serialises every recorded op as a Chrome `trace_event` JSON document
/// (one `"X"` complete event per op, `"M"` thread-name metadata per
/// lane). Load the file in <https://ui.perfetto.dev> or
/// `chrome://tracing`; nesting is reconstructed from timestamps, and
/// pool workers appear as their own lanes so queue stalls are visible.
pub fn chrome_trace() -> String {
    let threads = snapshot();
    let n: usize = threads.iter().map(|t| t.records.len() + 1).sum();
    let mut out = String::with_capacity(64 + n * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for tp in &threads {
        push_sep(&mut out);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
            tp.thread
        ));
        push_json_str(&mut out, &tp.name);
        out.push_str("}}");
        for r in &tp.records {
            push_sep(&mut out);
            out.push_str(&format!("{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":", tp.thread));
            push_json_str(&mut out, &format!("{}/{}", r.cat, r.name));
            out.push_str(&format!(",\"cat\":\"{}\"", r.cat));
            // trace_event timestamps are microseconds.
            out.push_str(&format!(
                ",\"ts\":{:.3},\"dur\":{:.3}",
                r.start_ns as f64 * 1e-3,
                r.dur_ns as f64 * 1e-3
            ));
            out.push_str(&format!(",\"args\":{{\"seq\":{},\"parent\":{}", r.seq, r.parent));
            if r.flops > 0 {
                out.push_str(&format!(",\"flops\":{}", r.flops));
            }
            if r.bytes > 0 {
                out.push_str(&format!(",\"bytes\":{}", r.bytes));
            }
            if r.node >= 0 {
                out.push_str(&format!(",\"node\":{}", r.node));
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}");
    out
}

/// Writes the flame table to `<dir>/<run>.txt` and the Chrome trace to
/// `<dir>/<run>.trace.json`; returns both paths.
pub fn write_reports(dir: &Path, run: &str) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let txt = dir.join(format!("{run}.txt"));
    let trace = dir.join(format!("{run}.trace.json"));
    std::fs::write(&txt, render_flame_table(&flame_table()))?;
    std::fs::write(&trace, chrome_trace())?;
    Ok((txt, trace))
}
