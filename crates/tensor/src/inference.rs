//! Thread-local inference mode.
//!
//! The trainer's no-grad paths (`predict`, `validation_loss`) enter
//! this mode via the RAII [`InferenceGuard`]; model code can then skip
//! work that only matters for backprop — e.g. Graph-WaveNet serves its
//! adaptive adjacency from a materialized cache instead of rebuilding
//! the `softmax(relu(E₁E₂ᵀ))` subgraph every forward pass.
//!
//! Rules:
//!
//! - **Thread-local.** Concurrent experiment cells on other threads are
//!   unaffected; the guard is `!Send` so it drops where it was created.
//! - **Nestable.** A depth counter, not a flag: nested guards are fine
//!   and the mode ends when the outermost guard drops.
//! - **Value-preserving only.** Inference mode may change *how* a value
//!   is computed (cached vs recomputed), never the value itself — the
//!   parallel-vs-serial determinism tests pin this down.
//!
//! `set_force_off` (the `TRAFFIC_INFER_CACHE=0` equivalent) makes
//! [`active`] report `false` regardless of guards, so benches can
//! measure the uncached path in-process — mirroring
//! [`crate::simd::set_force_scalar`].

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

static FORCE_OFF: AtomicBool = AtomicBool::new(false);

/// RAII guard marking the current thread as inside a no-grad inference
/// region. `!Send`: must drop on the creating thread.
#[must_use = "inference mode ends when the guard drops"]
pub struct InferenceGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl InferenceGuard {
    /// Enters inference mode on the current thread (nestable).
    pub fn enter() -> Self {
        DEPTH.with(|d| d.set(d.get() + 1));
        InferenceGuard { _not_send: std::marker::PhantomData }
    }
}

impl Drop for InferenceGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// True while the current thread is inside an [`InferenceGuard`] and
/// the mode is not force-disabled.
pub fn active() -> bool {
    !FORCE_OFF.load(Ordering::Relaxed) && DEPTH.with(|d| d.get()) > 0
}

/// Force-disables inference-mode shortcuts process-wide (benches and
/// ablations measuring the uncached path). Pass `false` to restore.
pub fn set_force_off(off: bool) {
    FORCE_OFF.store(off, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_nests_and_restores() {
        assert!(!active());
        {
            let _a = InferenceGuard::enter();
            assert!(active());
            {
                let _b = InferenceGuard::enter();
                assert!(active());
            }
            assert!(active());
        }
        assert!(!active());
    }

    #[test]
    fn mode_is_thread_local() {
        let _g = InferenceGuard::enter();
        assert!(active());
        std::thread::spawn(|| assert!(!active(), "inference mode must not leak across threads"))
            .join()
            .unwrap();
    }
}
