//! Substrate micro-benchmarks: the tensor/autograd kernels every model is
//! built from. Useful for tracking performance regressions in the engine
//! itself, independent of any experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_tensor::{init, Tape, Tensor};

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("kernels");
    let mut rng = StdRng::seed_from_u64(0);

    let mut group = c.benchmark_group("kernels/matmul");
    for n in [32usize, 64, 128] {
        let a = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[n, n], -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernels/batched_matmul");
    let a = init::uniform(&[16, 32, 32], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[32, 32], -1.0, 1.0, &mut rng);
    group.bench_function("16x32x32_by_32x32", |bch| bch.iter(|| a.matmul(&b)));
    group.finish();

    let mut group = c.benchmark_group("kernels/conv2d");
    let x = init::uniform(&[8, 8, 20, 12], -1.0, 1.0, &mut rng);
    let w = init::uniform(&[8, 8, 1, 2], -1.0, 1.0, &mut rng);
    group.bench_function("gated_tcn_shape", |bch| bch.iter(|| x.conv2d(&w, 1, 1)));
    group.bench_function("dilated", |bch| bch.iter(|| x.conv2d(&w, 1, 4)));
    group.finish();

    let mut group = c.benchmark_group("kernels/autograd");
    let wt = init::uniform(&[64, 64], -0.1, 0.1, &mut rng);
    let xt = init::uniform(&[32, 64], -1.0, 1.0, &mut rng);
    group.bench_function("mlp_forward_backward", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let w = tape.leaf(wt.clone(), true);
            let x = tape.constant(xt.clone());
            let loss = x.matmul(&w).relu().matmul(&w.t()).powf(2.0).mean_all();
            tape.backward(loss)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("kernels/broadcast");
    let big = Tensor::ones(&[64, 1, 32]);
    let small = Tensor::ones(&[16, 1]);
    group.bench_function("add_64x16x32", |bch| bch.iter(|| big.add(&small)));
    group.finish();

    let mut group = c.benchmark_group("kernels/softmax");
    let scores = init::uniform(&[16, 50, 50], -2.0, 2.0, &mut rng);
    group.bench_function("attention_scores_16x50x50", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            tape.constant(scores.clone()).softmax(2).value()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
