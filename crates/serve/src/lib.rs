//! # traffic-serve
//!
//! Robust warm-model inference serving for the traffic predictors:
//! the layer that turns the paper's Table III inference-time findings
//! into production findings with SLO numbers under load and failure.
//!
//! Zero runtime dependencies beyond the workspace: std TCP for HTTP,
//! the `TNN2` container for weights, the tensor worker pool for
//! parallel kernels inside each batched forward.
//!
//! ## Robustness by construction
//!
//! - **Every request gets a deadline** — [`queue::DeadlineQueue`]
//!   answers `TIMEOUT` without compute once it passes, whether at
//!   admission or while queued.
//! - **Every overload sheds predictably** — a high-water mark bounds
//!   the queue; past it, requests get an instant `SHED`, never
//!   unbounded memory.
//! - **A bad checkpoint can never take down a healthy server** —
//!   [`snapshot`] hot reload is validate-then-swap: CRC-checked read,
//!   strict weight application, canary smoke-forward; any failure
//!   keeps the last-good model serving.
//! - **A bad model degrades, it doesn't crash** — [`Breaker`] trips to
//!   `DEGRADED` on consecutive panics/non-finite outputs and serves a
//!   persistence-baseline fallback until a probe forward succeeds.
//!
//! The degradation ladder, end to end:
//!
//! ```text
//! HEALTHY ──(breaker trips)──▶ DEGRADED ──(probe succeeds)──▶ HEALTHY
//!    │                            │
//!    └──(queue > high water)── SHED at admission (either state)
//! ```

#![warn(missing_docs)]

pub mod breaker;
pub mod engine;
pub mod http;
pub mod loadgen;
pub mod queue;
pub mod snapshot;

pub use breaker::Breaker;
pub use engine::{Engine, EngineConfig, EngineStatus, Processor};
pub use http::HttpServer;
pub use queue::{Admission, DeadlineQueue, Job, ServeRequest, ServeResponse};
pub use snapshot::{load_file, load_file_with_retry, LoadedModel, ServeSnapshot};

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_graph::freeway_corridor;
use traffic_models::{build_model, GraphContext};

/// Builds a fresh (untrained) serving snapshot for a simulated corridor
/// — the serving analogue of the experiment defaults (`se_dim=8`,
/// `t_in=t_out=12`, z-scale ≈ simulated speeds). Real deployments
/// export from a trained run; smokes and benches start here so they
/// need no dataset on disk.
pub fn export_fresh(model: &str, nodes: usize, seed: u64) -> ServeSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = freeway_corridor(nodes, 1.0, &mut rng);
    let ctx = GraphContext::from_network(&net, 8);
    let m = build_model(model, &ctx, &mut rng);
    ServeSnapshot::capture(m.as_ref(), &ctx.adjacency, 8, 12, 12, 55.0, 12.0, seed)
}
