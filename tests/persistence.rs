//! Integration tests for persistence: model checkpoints round-trip through
//! disk and reproduce identical predictions; datasets round-trip through
//! CSV and reproduce identical experiments.

use traffic_suite::core::{predict, train, TrainConfig};
use traffic_suite::data::{load_dataset, prepare, save_dataset, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::nn::{load_weights, save_weights};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("traffic_persist_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn trained_model_checkpoint_reproduces_predictions() {
    let ds = simulate(&SimConfig::new("ckpt", Task::Speed, 6, 4));
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let model = build_model("Graph-WaveNet", &ctx, &mut rng);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        max_batches_per_epoch: Some(5),
        ..Default::default()
    };
    train(model.as_ref(), &data, &cfg);

    let test = data.test.truncate(10);
    let pred_before = predict(model.as_ref(), &test, &data.scaler, 8);

    let dir = tmpdir("ckpt");
    let path = dir.join("gwn.tnn");
    save_weights(model.store(), &path).unwrap();

    // Fresh model with different init must differ, then match after load.
    let mut rng2 = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(999);
    let fresh = build_model("Graph-WaveNet", &ctx, &mut rng2);
    let pred_fresh = predict(fresh.as_ref(), &test, &data.scaler, 8);
    assert_ne!(pred_before, pred_fresh, "different init should differ");
    load_weights(fresh.store(), &path).unwrap();
    let pred_after = predict(fresh.as_ref(), &test, &data.scaler, 8);
    assert_eq!(pred_before, pred_after, "checkpoint must reproduce predictions exactly");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_rejects_cross_model_load() {
    let ds = simulate(&SimConfig::new("cross", Task::Speed, 6, 4));
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let gwn = build_model("Graph-WaveNet", &ctx, &mut rng);
    let gman = build_model("GMAN", &ctx, &mut rng);
    let dir = tmpdir("cross");
    let path = dir.join("gwn.tnn");
    save_weights(gwn.store(), &path).unwrap();
    assert!(load_weights(gman.store(), &path).is_err(), "GMAN must reject GWN checkpoint");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_roundtrip_preserves_experiment() {
    let ds = simulate(&SimConfig::new("dsrt", Task::Flow, 8, 4));
    let dir = tmpdir("dsrt");
    let path = save_dataset(&ds, &dir).unwrap();
    let back = load_dataset(&path).unwrap();
    // Windowing must produce identical sample counts and near-identical
    // scalers (f32 text roundtrip).
    let a = prepare(&ds, 12, 12);
    let b = prepare(&back, 12, 12);
    assert_eq!(a.train.len(), b.train.len());
    assert_eq!(a.test.len(), b.test.len());
    assert!((a.scaler.mean - b.scaler.mean).abs() < 1e-2);
    assert!((a.scaler.std - b.scaler.std).abs() < 1e-2);
    std::fs::remove_dir_all(&dir).ok();
}
