//! Axis reductions and the `unbroadcast` adjoint used by autograd.

use crate::pool;
use crate::shape::{broadcast_strides, for_each_broadcast2, numel, strides_for};
use crate::tensor::{Tensor, ELEMENTWISE_PAR_THRESHOLD};

impl Tensor {
    /// Sums over the given axes. With `keepdim` the reduced axes stay as
    /// size-1; otherwise they are removed.
    ///
    /// Output-slot-major: each output element owns its reduction, so
    /// slots parallelise across the worker pool while the per-slot
    /// accumulation order (ascending input offset) — and therefore the
    /// result — is identical at any thread count.
    pub fn sum_axes(&self, axes: &[usize], keepdim: bool) -> Tensor {
        let rank = self.rank();
        let mut reduce = vec![false; rank];
        for &a in axes {
            crate::shape::check_axis(a, rank);
            reduce[a] = true;
        }
        let kept_shape: Vec<usize> =
            self.shape().iter().enumerate().map(|(i, &d)| if reduce[i] { 1 } else { d }).collect();
        let out_len = numel(&kept_shape);
        let in_strides = strides_for(self.shape());
        // Offsets of the reduced subspace relative to a slot's base,
        // in ascending order (one odometer sweep, shared by all slots).
        let red_axes: Vec<usize> = (0..rank).filter(|&i| reduce[i]).collect();
        let red_len: usize = red_axes.iter().map(|&i| self.shape()[i]).product();
        let mut red_offsets = Vec::with_capacity(red_len);
        {
            let mut coords = vec![0usize; red_axes.len()];
            let mut off = 0usize;
            for _ in 0..red_len {
                red_offsets.push(off);
                for ci in (0..red_axes.len()).rev() {
                    let axis = red_axes[ci];
                    coords[ci] += 1;
                    off += in_strides[axis];
                    if coords[ci] < self.shape()[axis] {
                        break;
                    }
                    off -= coords[ci] * in_strides[axis];
                    coords[ci] = 0;
                }
            }
        }
        // Contiguous when the reduced subspace is a trailing block.
        let contiguous = red_offsets.last().map(|&o| o == red_len - 1).unwrap_or(true);
        let kept_axes: Vec<(usize, usize)> =
            (0..rank).filter(|&i| !reduce[i]).map(|i| (self.shape()[i], in_strides[i])).collect();
        let data = self.as_slice();
        let slot_base = |slot: usize| -> usize {
            let mut rem = slot;
            let mut base = 0usize;
            for &(dim, stride) in kept_axes.iter().rev() {
                base += (rem % dim) * stride;
                rem /= dim;
            }
            base
        };
        // Every slot is written exactly once (`*slot_out = acc`).
        let mut prof = traffic_obs::profile::op("elem", "sum_axes");
        prof.set_flops(self.len());
        prof.set_bytes((self.len() + out_len) * 4);
        let mut out = crate::mem::take_uninit(out_len);
        let chunk = if self.len() < ELEMENTWISE_PAR_THRESHOLD {
            out_len // single chunk → runs inline
        } else {
            out_len.div_ceil(pool::effective_threads() * 2).max(1)
        };
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            for (local, slot_out) in dst.iter_mut().enumerate() {
                let base = slot_base(ci * chunk + local);
                // Whole-slot reductions at any thread count: only the
                // TRAFFIC_SIMD_REDUCE flag (not threads or chunking)
                // can change the per-slot accumulation order.
                *slot_out = if contiguous {
                    crate::simd::sum(&data[base..base + red_len])
                } else {
                    let mut acc = 0.0f32;
                    for &off in &red_offsets {
                        acc += data[base + off];
                    }
                    acc
                };
            }
        });
        let t = Tensor::from_vec(out, &kept_shape);
        if keepdim {
            t
        } else {
            let squeezed: Vec<usize> = kept_shape
                .iter()
                .enumerate()
                .filter(|(i, _)| !reduce[*i])
                .map(|(_, &d)| d)
                .collect();
            t.reshape(&squeezed)
        }
    }

    /// Mean over the given axes.
    pub fn mean_axes(&self, axes: &[usize], keepdim: bool) -> Tensor {
        let count: usize = axes.iter().map(|&a| self.shape()[a]).product();
        self.sum_axes(axes, keepdim).mul_scalar(1.0 / count.max(1) as f32)
    }

    /// Maximum over a single axis (keepdim). Used for numerically stable
    /// softmax; not differentiable through our tape (softmax handles its own
    /// backward).
    pub fn max_axis_keepdim(&self, axis: usize) -> Tensor {
        crate::shape::check_axis(axis, self.rank());
        let outer: usize = self.shape()[..axis].iter().product();
        let d = self.shape()[axis];
        let inner: usize = self.shape()[axis + 1..].iter().product();
        let mut out = crate::mem::take_filled(outer * inner, f32::NEG_INFINITY);
        let data = self.as_slice();
        for o in 0..outer {
            for k in 0..d {
                let base = (o * d + k) * inner;
                for i in 0..inner {
                    let v = data[base + i];
                    let slot = &mut out[o * inner + i];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
        }
        let mut shape = self.shape().to_vec();
        shape[axis] = 1;
        Tensor::from_vec(out, &shape)
    }

    /// Adjoint of broadcasting: reduces `self` (shaped like the broadcast
    /// output) back to `target_shape` by summing over expanded axes.
    pub fn unbroadcast(&self, target_shape: &[usize]) -> Tensor {
        if self.shape() == target_shape {
            return self.clone();
        }
        let rank = self.rank();
        let offset = rank - target_shape.len();
        // Sum away leading extra axes plus axes where target had size 1.
        let mut axes: Vec<usize> = (0..offset).collect();
        for (i, &d) in target_shape.iter().enumerate() {
            if d == 1 && self.shape()[offset + i] != 1 {
                axes.push(offset + i);
            }
        }
        let reduced = self.sum_axes(&axes, true);
        reduced.reshape(target_shape)
    }

    /// Expands `self` to `shape` by broadcasting (materialised copy).
    pub fn broadcast_to(&self, shape: &[usize]) -> Tensor {
        if self.shape() == shape {
            return self.clone();
        }
        let src = broadcast_strides(self.shape(), shape);
        let zero = vec![0usize; shape.len()];
        // Every slot is written exactly once by the broadcast sweep.
        let mut out = crate::mem::take_uninit(numel(shape));
        let data = self.as_slice();
        for_each_broadcast2(shape, &src, &zero, |o, s, _| out[o] = data[s]);
        Tensor::from_vec(out, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_one_axis() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let s0 = a.sum_axes(&[0], false);
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.as_slice(), &[3.0, 5.0, 7.0]);
        let s1 = a.sum_axes(&[1], true);
        assert_eq!(s1.shape(), &[2, 1]);
        assert_eq!(s1.as_slice(), &[3.0, 12.0]);
    }

    #[test]
    fn sum_multi_axis() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = a.sum_axes(&[0, 2], false);
        assert_eq!(s.shape(), &[3]);
        // axis-1 slice k sums rows k of both batches over last axis
        assert_eq!(s.as_slice(), &[60.0, 92.0, 124.0]);
    }

    #[test]
    fn mean_axes_matches_sum() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let m = a.mean_axes(&[0], false);
        assert_eq!(m.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn max_axis() {
        let a = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0, 0.0, 6.0], &[2, 3]);
        let m = a.max_axis_keepdim(1);
        assert_eq!(m.shape(), &[2, 1]);
        assert_eq!(m.as_slice(), &[9.0, 6.0]);
        let m0 = a.max_axis_keepdim(0);
        assert_eq!(m0.as_slice(), &[4.0, 9.0, 6.0]);
    }

    #[test]
    fn unbroadcast_reverses_broadcast() {
        let a = Tensor::ones(&[2, 1, 3]);
        let big = a.broadcast_to(&[4, 2, 5, 3]);
        assert_eq!(big.shape(), &[4, 2, 5, 3]);
        let back = big.unbroadcast(&[2, 1, 3]);
        assert_eq!(back.shape(), &[2, 1, 3]);
        // each element was replicated 4*5 = 20 times
        assert!(back.as_slice().iter().all(|&v| v == 20.0));
    }

    #[test]
    fn broadcast_to_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = a.broadcast_to(&[2, 3]);
        assert_eq!(b.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }
}
