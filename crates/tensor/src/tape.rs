//! Reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation of a forward pass; [`Var`] is a cheap
//! copyable handle to a node on that tape. Calling [`Tape::backward`] on a
//! scalar loss returns the gradients of every `requires_grad` leaf.
//!
//! Nodes are appended in topological order (parents always precede
//! children), so backpropagation is a single reverse sweep over the node
//! list — no sorting needed.
//!
//! Allocation discipline (traffic-mem): node values and closure captures
//! are refcounted buffer handles, so recording and backward closures never
//! deep-copy tensor data. Parent links are stored inline (no per-node
//! `Vec` for the 1–2 parent common case), backward closures stream parent
//! gradients into a sink instead of materialising a `Vec<Tensor>` per
//! node, and the sweep accumulates diamonds in place with
//! [`Tensor::add_assign`]. A tape is reusable across mini-batches via
//! [`Tape::reset`], which keeps the node list's capacity.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::conv::{col2im, conv_out_len, im2col};
use crate::tensor::Tensor;

static TAPE_IDS: AtomicU64 = AtomicU64::new(1);

/// Largest node count any tape reached (published as the
/// `mem/tape_peak_nodes` gauge at each backward pass).
static PEAK_NODES: AtomicUsize = AtomicUsize::new(0);

fn peak_nodes_gauge() -> &'static traffic_obs::Gauge {
    static GAUGE: OnceLock<&'static traffic_obs::Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| traffic_obs::gauge("mem/tape_peak_nodes"))
}

/// Streams gradient contributions to parents: `sink(slot, grad)` where
/// `slot` indexes the node's parent list. No intermediate `Vec<Tensor>`.
type BackFn = Box<dyn Fn(&Tensor, &mut dyn FnMut(usize, Tensor))>;

/// Parent links, inline for the ubiquitous 1–2 parent nodes so tape
/// recording does not allocate a `Vec<usize>` per node.
enum Parents {
    None,
    One(usize),
    Two(usize, usize),
    Many(Vec<usize>),
}

impl Parents {
    fn len(&self) -> usize {
        match self {
            Parents::None => 0,
            Parents::One(_) => 1,
            Parents::Two(..) => 2,
            Parents::Many(v) => v.len(),
        }
    }

    fn get(&self, slot: usize) -> usize {
        match (self, slot) {
            (Parents::One(a), 0) => *a,
            (Parents::Two(a, _), 0) => *a,
            (Parents::Two(_, b), 1) => *b,
            (Parents::Many(v), s) => v[s],
            _ => panic!("parent slot {slot} out of range"),
        }
    }
}

struct Node {
    /// Static op name recorded at forward time; names the `bwd` profile
    /// op when `Tape::backward` runs under the profiler.
    op: &'static str,
    value: Tensor,
    requires_grad: bool,
    parents: Parents,
    /// Maps the gradient flowing into this node to gradient contributions
    /// for each parent slot. `None` for leaves.
    backward: Option<BackFn>,
}

/// The recording tape for one forward/backward pass.
pub struct Tape {
    id: u64,
    nodes: RefCell<Vec<Node>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape with a process-unique id.
    pub fn new() -> Self {
        Tape { id: TAPE_IDS.fetch_add(1, Ordering::Relaxed), nodes: RefCell::new(Vec::new()) }
    }

    /// Process-unique identifier (used by parameter caches).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Clears the tape for the next forward pass while keeping the node
    /// list's capacity, so a trainer reuses one tape for a whole run
    /// instead of reallocating it every mini-batch. Dropped node values
    /// recycle their buffers into the traffic-mem pool. The tape gets a
    /// fresh id, invalidating any cached parameter bindings (exactly as
    /// if a new tape had been built).
    pub fn reset(&mut self) {
        let nodes = self.nodes.get_mut();
        let peak = PEAK_NODES.fetch_max(nodes.len(), Ordering::Relaxed).max(nodes.len());
        peak_nodes_gauge().set(peak as f64);
        nodes.clear();
        self.id = TAPE_IDS.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, node: Node) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        nodes.len() - 1
    }

    /// Inserts a leaf tensor. Set `requires_grad` for trainable parameters.
    pub fn leaf(&self, value: Tensor, requires_grad: bool) -> Var<'_> {
        let id = self.push(Node {
            op: "leaf",
            value,
            requires_grad,
            parents: Parents::None,
            backward: None,
        });
        Var { tape: self, id }
    }

    /// Convenience: a non-differentiable constant leaf.
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.leaf(value, false)
    }

    /// Reconstructs a [`Var`] from a node id previously obtained via
    /// [`Var::id`]. Used by parameter stores to cache leaf bindings across a
    /// forward pass. Panics if the id is out of range.
    pub fn var(&self, id: usize) -> Var<'_> {
        assert!(id < self.len(), "var id {id} out of range (tape has {} nodes)", self.len());
        Var { tape: self, id }
    }

    fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    fn requires_grad(&self, id: usize) -> bool {
        self.nodes.borrow()[id].requires_grad
    }

    pub(crate) fn unary(
        &self,
        op: &'static str,
        parent: &Var<'_>,
        value: Tensor,
        back: impl Fn(&Tensor) -> Tensor + 'static,
    ) -> Var<'_> {
        let rg = self.requires_grad(parent.id);
        let node = Node {
            op,
            value,
            requires_grad: rg,
            parents: Parents::One(parent.id),
            backward: if rg { Some(Box::new(move |g, sink| sink(0, back(g)))) } else { None },
        };
        Var { tape: self, id: self.push(node) }
    }

    fn binary(
        &self,
        op: &'static str,
        a: &Var<'_>,
        b: &Var<'_>,
        value: Tensor,
        back: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var<'_> {
        let rg = self.requires_grad(a.id) || self.requires_grad(b.id);
        let node = Node {
            op,
            value,
            requires_grad: rg,
            parents: Parents::Two(a.id, b.id),
            backward: if rg {
                Some(Box::new(move |g, sink| {
                    let (ga, gb) = back(g);
                    sink(0, ga);
                    sink(1, gb);
                }))
            } else {
                None
            },
        };
        Var { tape: self, id: self.push(node) }
    }

    /// Walks the recorded forward pass and aggregates activation
    /// saturation per op kind (training-health telemetry).
    ///
    /// "Saturated" means the activation sits in its flat region where
    /// the local gradient has all but vanished: `|tanh| > 0.995`,
    /// `σ < 0.005` or `σ > 0.995`, `|tanh·σ| > 0.99` for the fused
    /// gated nonlinearity, and exactly-zero outputs ("dead" units) for
    /// ReLU. Ops without a saturation notion are skipped.
    ///
    /// The fraction is a diagnostic, not a reduction the math depends
    /// on, so large activation buffers are strided down to at most
    /// [`Tape::SATURATION_SAMPLES`] probed elements each — the scan
    /// stays cheap enough for the insight sampler's per-step overhead
    /// budget while the estimate keeps sub-percent resolution.
    pub fn saturation_stats(&self) -> Vec<ActSaturation> {
        fn count(t: &Tensor, pred: impl Fn(f32) -> bool) -> (usize, usize) {
            let data = t.as_slice();
            let stride = data.len().div_ceil(Tape::SATURATION_SAMPLES).max(1);
            let probed = data.iter().step_by(stride);
            (probed.clone().count(), probed.filter(|&&v| pred(v)).count())
        }
        let nodes = self.nodes.borrow();
        let mut out: Vec<ActSaturation> = Vec::new();
        for n in nodes.iter() {
            let (elems, saturated) = match n.op {
                "tanh" => count(&n.value, |v| v.abs() > 0.995),
                "sigmoid" => count(&n.value, |v| !(0.005..=0.995).contains(&v)),
                "gated_tanh_sigmoid" => count(&n.value, |v| v.abs() > 0.99),
                "relu" => count(&n.value, |v| v == 0.0),
                _ => continue,
            };
            match out.iter_mut().find(|s| s.op == n.op) {
                Some(s) => {
                    s.elems += elems;
                    s.saturated += saturated;
                }
                None => out.push(ActSaturation { op: n.op, elems, saturated }),
            }
        }
        out
    }

    /// Per-node probe budget for [`Tape::saturation_stats`].
    pub const SATURATION_SAMPLES: usize = 4096;

    /// Runs reverse-mode differentiation from the scalar `loss`.
    pub fn backward(&self, loss: Var<'_>) -> Gradients {
        assert_eq!(loss.tape.id, self.id, "backward called with a Var from a different tape");
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.id].value.len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            nodes[loss.id].value.shape()
        );
        PEAK_NODES.fetch_max(nodes.len(), Ordering::Relaxed);
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.id] = Some(Tensor::ones(nodes[loss.id].value.shape()));
        // One load up front: when the profiler is off the sweep carries
        // zero per-node overhead beyond a branch on a local bool.
        let profiling = traffic_obs::profile::enabled();
        for id in (0..=loss.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &nodes[id];
            if let Some(back) = &node.backward {
                let mut prof = if profiling {
                    let mut guard = traffic_obs::profile::op("bwd", node.op);
                    guard.set_node(id);
                    guard.set_bytes(node.value.len() * 4);
                    Some(guard)
                } else {
                    None
                };
                let nparents = node.parents.len();
                back(&g, &mut |slot, pg| {
                    debug_assert!(slot < nparents);
                    let pid = node.parents.get(slot);
                    if !nodes[pid].requires_grad {
                        return;
                    }
                    match &mut grads[pid] {
                        // Diamonds accumulate in place into the (pooled,
                        // uniquely owned) accumulator — same elementwise
                        // add order as the allocating `acc.add(&pg)`.
                        Some(acc) => acc.add_assign(&pg),
                        slot => *slot = Some(pg),
                    }
                });
                prof.take(); // close the bwd op before the next node starts
            } else if node.requires_grad {
                grads[id] = Some(g); // keep leaf gradient
            }
        }
        Gradients { tape_id: self.id, grads }
    }
}

/// Saturation tally for one activation op kind over a recorded forward
/// pass (see [`Tape::saturation_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActSaturation {
    /// Activation op name (`tanh`, `sigmoid`, `gated_tanh_sigmoid`, `relu`).
    pub op: &'static str,
    /// Activations of this kind recorded on the tape.
    pub elems: usize,
    /// How many sit in the op's flat (vanishing-gradient) region.
    pub saturated: usize,
}

impl ActSaturation {
    /// Saturated fraction in `[0, 1]` (0 when no activations recorded).
    pub fn fraction(&self) -> f64 {
        if self.elems == 0 {
            0.0
        } else {
            self.saturated as f64 / self.elems as f64
        }
    }
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    tape_id: u64,
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient for `var`, if it was reached and requires grad.
    pub fn get(&self, var: Var<'_>) -> Option<&Tensor> {
        assert_eq!(var.tape.id, self.tape_id, "Var from a different tape");
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// Like [`Gradients::get`] but by raw node id (used by parameter stores
    /// that cache var ids across a forward pass).
    pub fn get_by_id(&self, id: usize) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

/// A handle to a node on a [`Tape`].
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl<'t> Var<'t> {
    /// Raw node id (stable for the lifetime of the tape).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The tape this variable belongs to.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// The forward value. With refcounted buffers this is a cheap handle
    /// copy (pointer + shape), not a deep clone of the data.
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.id)
    }

    /// Shape of the forward value.
    pub fn shape(&self) -> Vec<usize> {
        self.tape.nodes.borrow()[self.id].value.shape().to_vec()
    }

    // ------------------------------------------------------------------
    // Elementwise binary (broadcasting)
    // ------------------------------------------------------------------

    /// Broadcast addition.
    pub fn add(&self, other: &Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        self.tape.binary("add", self, other, av.add(&bv), move |g| {
            (g.unbroadcast(&ash), g.unbroadcast(&bsh))
        })
    }

    /// Broadcast subtraction.
    pub fn sub(&self, other: &Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        self.tape.binary("sub", self, other, av.sub(&bv), move |g| {
            (g.unbroadcast(&ash), g.neg().unbroadcast(&bsh))
        })
    }

    /// Broadcast elementwise product.
    pub fn mul(&self, other: &Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        let (ac, bc) = (av.clone(), bv.clone());
        self.tape.binary("mul", self, other, av.mul(&bv), move |g| {
            (g.mul(&bc).unbroadcast(&ash), g.mul(&ac).unbroadcast(&bsh))
        })
    }

    /// Broadcast elementwise division.
    pub fn div(&self, other: &Var<'t>) -> Var<'t> {
        let (av, bv) = (self.value(), other.value());
        let (ash, bsh) = (av.shape().to_vec(), bv.shape().to_vec());
        let (ac, bc) = (av.clone(), bv.clone());
        self.tape.binary("div", self, other, av.div(&bv), move |g| {
            let ga = g.div(&bc).unbroadcast(&ash);
            // d/db (a/b) = -a / b²
            let gb = g.mul(&ac).div(&bc.mul(&bc)).neg().unbroadcast(&bsh);
            (ga, gb)
        })
    }

    // ------------------------------------------------------------------
    // Elementwise unary
    // ------------------------------------------------------------------

    /// Negation.
    pub fn neg(&self) -> Var<'t> {
        self.tape.unary("neg", self, self.value().neg(), |g| g.neg())
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&self, s: f32) -> Var<'t> {
        self.tape.unary("add_scalar", self, self.value().add_scalar(s), |g| g.clone())
    }

    /// Multiplies by a scalar constant.
    pub fn mul_scalar(&self, s: f32) -> Var<'t> {
        self.tape.unary("mul_scalar", self, self.value().mul_scalar(s), move |g| g.mul_scalar(s))
    }

    /// Elementwise power with constant exponent.
    pub fn powf(&self, p: f32) -> Var<'t> {
        let x = self.value();
        let xc = x.clone();
        self.tape.unary("powf", self, x.powf(p), move |g| g.mul(&xc.powf(p - 1.0).mul_scalar(p)))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var<'t> {
        let x = self.value();
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        self.tape.unary("relu", self, x.clamp_min(0.0), move |g| g.mul(&mask))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Var<'t> {
        let x = self.value();
        let mask = x.map(|v| if v > 0.0 { 1.0 } else { alpha });
        let y = x.map(|v| if v > 0.0 { v } else { alpha * v });
        self.tape.unary("leaky_relu", self, y, move |g| g.mul(&mask))
    }

    /// Logistic sigmoid ([`crate::fastmath::sigmoid`], vectorized
    /// forward and backward). Backward is a single fused pass
    /// (`g · y·(1 − y)`) instead of two allocating elementwise ops.
    pub fn sigmoid(&self) -> Var<'t> {
        let y = self.value().sigmoid();
        let yc = y.clone();
        self.tape.unary("sigmoid", self, y, move |g| {
            g.apply_binary(&yc, crate::simd::Binary::SigmoidBwd)
        })
    }

    /// Hyperbolic tangent, via the ~4× faster [`crate::fastmath::tanh`]
    /// kernel (a few f32 ulps from libm), vectorized forward and
    /// backward. Backward is a single fused pass (`g · (1 − y²)`).
    pub fn tanh(&self) -> Var<'t> {
        let y = self.value().tanh();
        let yc = y.clone();
        self.tape.unary("tanh", self, y, move |g| g.apply_binary(&yc, crate::simd::Binary::TanhBwd))
    }

    /// Fused gated activation `tanh(self) ⊙ σ(gate)` — the
    /// STGCN/Graph-WaveNet gated-temporal-conv nonlinearity as one tape
    /// node. Forward computes `t = tanh(self)`, `s = σ(gate)` and the
    /// product in a single pass; backward streams both parent gradients
    /// (`(g·s)·(1 − t²)` and `((g·t)·s)·(1 − s)`) in one pass. Identical
    /// arithmetic to `self.tanh().mul(&gate.sigmoid())` but records one
    /// node instead of three and halves the elementwise traffic.
    pub fn gated_tanh_sigmoid(&self, gate: &Var<'t>) -> Var<'t> {
        let (out, t, s) = Tensor::gated_tanh_sigmoid(&self.value(), &gate.value());
        self.tape.binary("gated_tanh_sigmoid", self, gate, out, move |g| {
            Tensor::gated_tanh_sigmoid_backward(g, &t, &s)
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var<'t> {
        let y = self.value().exp();
        let yc = y.clone();
        self.tape.unary("exp", self, y, move |g| g.mul(&yc))
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Var<'t> {
        let x = self.value();
        let xc = x.clone();
        self.tape.unary("ln", self, x.ln(), move |g| g.div(&xc))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var<'t> {
        let y = self.value().sqrt();
        let yc = y.clone();
        self.tape.unary("sqrt", self, y, move |g| g.div(&yc.mul_scalar(2.0)))
    }

    /// Smooth absolute value: `sqrt(x² + eps)`; with `eps = 0` this is exact
    /// `|x|` with subgradient sign(x).
    pub fn abs(&self) -> Var<'t> {
        let x = self.value();
        let sign = x.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        self.tape.unary("abs", self, x.abs(), move |g| g.mul(&sign))
    }

    /// Multiplies by a constant mask tensor (no gradient into the mask).
    pub fn mul_const(&self, mask: &Tensor) -> Var<'t> {
        let m = mask.clone();
        let y = self.value().mul(mask);
        let tgt = self.shape();
        self.tape.unary("mul_const", self, y, move |g| g.mul(&m).unbroadcast(&tgt))
    }

    /// Adds a constant tensor (no gradient into the constant).
    pub fn add_const(&self, c: &Tensor) -> Var<'t> {
        let y = self.value().add(c);
        let tgt = self.shape();
        self.tape.unary("add_const", self, y, move |g| g.unbroadcast(&tgt))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum over all elements → scalar.
    pub fn sum_all(&self) -> Var<'t> {
        let x = self.value();
        let shape = x.shape().to_vec();
        self.tape.unary("sum_all", self, Tensor::scalar(x.sum_all()), move |g| {
            Tensor::full(&shape, g.item())
        })
    }

    /// Mean over all elements → scalar.
    pub fn mean_all(&self) -> Var<'t> {
        let n = self.value().len().max(1);
        self.sum_all().mul_scalar(1.0 / n as f32)
    }

    /// Sum over `axes` (keepdim).
    pub fn sum_axes(&self, axes: &[usize], keepdim: bool) -> Var<'t> {
        let x = self.value();
        let in_shape = x.shape().to_vec();
        let y = x.sum_axes(axes, keepdim);
        let kept: Vec<usize> = {
            let mut s = in_shape.clone();
            for &a in axes {
                s[a] = 1;
            }
            s
        };
        self.tape.unary("sum_axes", self, y, move |g| g.reshape(&kept).broadcast_to(&in_shape))
    }

    /// Mean over `axes` (keepdim).
    pub fn mean_axes(&self, axes: &[usize], keepdim: bool) -> Var<'t> {
        let count: usize = {
            let s = self.shape();
            axes.iter().map(|&a| s[a]).product()
        };
        self.sum_axes(axes, keepdim).mul_scalar(1.0 / count.max(1) as f32)
    }

    // ------------------------------------------------------------------
    // Linear algebra & shape
    // ------------------------------------------------------------------

    /// Batched matrix product with broadcasting batch axes.
    pub fn matmul(&self, other: &Var<'t>) -> Var<'t> {
        let (a, b) = (self.value(), other.value());
        assert!(a.rank() >= 2 && b.rank() >= 2, "Var::matmul requires rank >= 2 operands");
        let (ac, bc) = (a.clone(), b.clone());
        let (ash, bsh) = (a.shape().to_vec(), b.shape().to_vec());
        let y = a.matmul(&b);
        self.tape.binary("matmul", self, other, y, move |g| {
            // Transposed-storage kernels: bit-identical to materialising
            // `.t()` first, without the full permute copy per step.
            let ga = g.matmul_nt(&bc).unbroadcast(&ash);
            let gb = ac.matmul_tn(g).unbroadcast(&bsh);
            (ga, gb)
        })
    }

    /// Reshape (element count preserved).
    pub fn reshape(&self, shape: &[usize]) -> Var<'t> {
        let x = self.value();
        let orig = x.shape().to_vec();
        let y = x.reshape(shape);
        self.tape.unary("reshape", self, y, move |g| g.reshape(&orig))
    }

    /// Axis permutation.
    pub fn permute(&self, perm: &[usize]) -> Var<'t> {
        let x = self.value();
        let y = x.permute(perm);
        // Inverse permutation for the backward pass.
        let mut inv = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        self.tape.unary("permute", self, y, move |g| g.permute(&inv))
    }

    /// Transpose of the last two axes.
    pub fn t(&self) -> Var<'t> {
        let r = self.shape().len();
        let mut perm: Vec<usize> = (0..r).collect();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Narrow: `len` slices from `start` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var<'t> {
        let x = self.value();
        let full = x.shape()[axis];
        let y = x.narrow(axis, start, len);
        let rank = x.rank();
        self.tape.unary("narrow", self, y, move |g| {
            let mut pads = vec![(0usize, 0usize); rank];
            pads[axis] = (start, full - start - len);
            g.pad(&pads)
        })
    }

    /// Zero padding per axis.
    pub fn pad(&self, pads: &[(usize, usize)]) -> Var<'t> {
        let x = self.value();
        let y = x.pad(pads);
        let pads = pads.to_vec();
        self.tape.unary("pad", self, y, move |g| g.unpad(&pads))
    }

    /// Concatenates variables along `axis`.
    pub fn concat(parts: &[Var<'t>], axis: usize) -> Var<'t> {
        assert!(!parts.is_empty(), "concat of zero vars");
        let tape = parts[0].tape;
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let y = Tensor::concat(&refs, axis);
        let sizes: Vec<usize> = values.iter().map(|v| v.shape()[axis]).collect();
        let rg = parts.iter().any(|p| tape.requires_grad(p.id));
        let node = Node {
            op: "concat",
            value: y,
            requires_grad: rg,
            parents: Parents::Many(parts.iter().map(|p| p.id).collect()),
            backward: if rg {
                Some(Box::new(move |g, sink| {
                    let mut off = 0;
                    for (slot, &s) in sizes.iter().enumerate() {
                        sink(slot, g.narrow(axis, off, s));
                        off += s;
                    }
                }))
            } else {
                None
            },
        };
        Var { tape, id: tape.push(node) }
    }

    /// Stacks rank-equal variables along a new leading position of `axis`.
    pub fn stack(parts: &[Var<'t>], axis: usize) -> Var<'t> {
        let expanded: Vec<Var<'t>> = parts
            .iter()
            .map(|p| {
                let mut s = p.shape();
                s.insert(axis, 1);
                p.reshape(&s)
            })
            .collect();
        Var::concat(&expanded, axis)
    }

    /// Softmax along `axis` (numerically stable).
    pub fn softmax(&self, axis: usize) -> Var<'t> {
        let x = self.value();
        let m = x.max_axis_keepdim(axis);
        let e = x.sub(&m).exp();
        let s = e.sum_axes(&[axis], true);
        let y = e.div(&s);
        let yc = y.clone();
        self.tape.unary("softmax", self, y, move |g| {
            // dx = (g - sum(g*y, axis)) * y
            let dot = g.mul(&yc).sum_axes(&[axis], true);
            g.sub(&dot).mul(&yc)
        })
    }

    /// Inverted dropout. In training mode zeroes each element with
    /// probability `p` and rescales survivors by `1/(1-p)`; identity in eval
    /// mode. `mask_source` supplies uniform randoms in `[0, 1)`.
    pub fn dropout(&self, p: f32, training: bool, uniform: impl FnMut() -> f32) -> Var<'t> {
        if !training || p <= 0.0 {
            return *self;
        }
        assert!(p < 1.0, "dropout probability must be < 1, got {p}");
        let mut uniform = uniform;
        let scale = 1.0 / (1.0 - p);
        let x = self.value();
        let mask = Tensor::from_vec(
            (0..x.len()).map(|_| if uniform() < p { 0.0 } else { scale }).collect(),
            x.shape(),
        );
        self.mul_const(&mask)
    }

    /// Gathers rows of axis 0 (embedding lookup). Backward scatter-adds.
    pub fn index_select0(&self, indices: &[usize]) -> Var<'t> {
        let x = self.value();
        let y = x.index_select0(indices);
        let idx = indices.to_vec();
        let in_shape = x.shape().to_vec();
        self.tape.unary("index_select0", self, y, move |g| {
            let inner: usize = in_shape[1..].iter().product();
            let mut out = Tensor::zeros(&in_shape);
            {
                let buf = out.make_mut();
                let gs = g.as_slice();
                for (row, &i) in idx.iter().enumerate() {
                    for j in 0..inner {
                        buf[i * inner + j] += gs[row * inner + j];
                    }
                }
            }
            out
        })
    }

    /// Stride-1 dilated conv2d: `self` `[B, C, H, W]`, `weight`
    /// `[O, C, KH, KW]` → `[B, O, OH, OW]`.
    pub fn conv2d(&self, weight: &Var<'t>, dh: usize, dw: usize) -> Var<'t> {
        let x = self.value();
        let w = weight.value();
        let (b, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (o, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = conv_out_len(h, kh, dh);
        let ow = conv_out_len(wd, kw, dw);
        let cols = im2col(&x, kh, kw, dh, dw); // [B, CKK, L]
        let wmat = w.reshape(&[o, c * kh * kw]);
        let y = wmat.matmul(&cols).reshape(&[b, o, oh, ow]);
        let w_shape = w.shape().to_vec();
        self.tape.binary("conv2d", self, weight, y, move |g| {
            let gmat = g.reshape(&[b, o, oh * ow]); // [B, O, L]
                                                    // grad wrt weight: sum over batch of g · colsᵀ
            let gw = gmat.matmul_nt(&cols); // [B, O, CKK]
            let gw = gw.sum_axes(&[0], false).reshape(&w_shape);
            // grad wrt input: wᵀ · g, folded back
            let gcols = wmat.matmul_tn(&gmat); // [B, CKK, L]
            let gx = col2im(&gcols, c, h, wd, kh, kw, dh, dw);
            (gx, gw)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let b = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]), true);
        // loss = sum(a * b + a)
        let loss = a.mul(&b).add(&a).sum_all();
        assert_eq!(loss.value().item(), 1.0 * 3.0 + 1.0 + 2.0 * 4.0 + 2.0);
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().as_slice(), &[4.0, 5.0]); // b + 1
        assert_eq!(g.get(b).unwrap().as_slice(), &[1.0, 2.0]); // a
    }

    #[test]
    fn gated_tanh_sigmoid_matches_unfused_bitwise() {
        // Forward and both parent gradients must be bit-identical to the
        // three-op composition tanh(f) ⊙ σ(g) — same kernels, same
        // association order, one tape node.
        let vals: Vec<f32> = (0..257).map(|i| (i as f32 * 0.11).sin() * 4.0).collect();
        let gvals: Vec<f32> = (0..257).map(|i| (i as f32 * 0.07).cos() * 5.0).collect();
        let fused = {
            let tape = Tape::new();
            let f = tape.leaf(Tensor::from_vec(vals.clone(), &[257]), true);
            let g = tape.leaf(Tensor::from_vec(gvals.clone(), &[257]), true);
            let out = f.gated_tanh_sigmoid(&g);
            let grads = tape.backward(out.powf(2.0).sum_all());
            (out.value(), grads.get(f).unwrap().clone(), grads.get(g).unwrap().clone())
        };
        let unfused = {
            let tape = Tape::new();
            let f = tape.leaf(Tensor::from_vec(vals, &[257]), true);
            let g = tape.leaf(Tensor::from_vec(gvals, &[257]), true);
            let out = f.tanh().mul(&g.sigmoid());
            let grads = tape.backward(out.powf(2.0).sum_all());
            (out.value(), grads.get(f).unwrap().clone(), grads.get(g).unwrap().clone())
        };
        for (a, b) in [(&fused.0, &unfused.0), (&fused.1, &unfused.1), (&fused.2, &unfused.2)] {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn broadcast_backward_unbroadcasts() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2, 3]), true);
        let b = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]), true);
        let loss = a.mul(&b).sum_all();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().shape(), &[2, 3]);
        assert_eq!(g.get(b).unwrap().shape(), &[3]);
        assert_eq!(g.get(b).unwrap().as_slice(), &[2.0, 2.0, 2.0]); // summed over rows
    }

    #[test]
    fn matmul_backward_shapes() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[4, 2, 3]), true);
        let b = tape.leaf(Tensor::ones(&[3, 5]), true);
        let loss = a.matmul(&b).sum_all();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().shape(), &[4, 2, 3]);
        assert_eq!(g.get(b).unwrap().shape(), &[3, 5]);
        // each b element participates 4*2 times
        assert!(g.get(b).unwrap().as_slice().iter().all(|&v| v == 8.0));
    }

    #[test]
    fn no_grad_paths_skipped() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::ones(&[2]));
        let b = tape.leaf(Tensor::ones(&[2]), true);
        let loss = a.mul(&b).sum_all();
        let g = tape.backward(loss);
        assert!(g.get(a).is_none());
        assert!(g.get(b).is_some());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]), true);
        let y = x.softmax(1);
        let v = y.value();
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| v.at(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // gradient of sum(softmax) is ~0 (softmax outputs sum to constant)
        let g = tape.backward(y.sum_all());
        assert!(g.get(x).unwrap().as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn diamond_accumulates() {
        // loss = sum(x*x + x) — x used twice, gradients must accumulate.
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0], &[1]), true);
        let loss = x.mul(&x).add(&x).sum_all();
        let g = tape.backward(loss);
        assert_eq!(g.get(x).unwrap().as_slice(), &[7.0]); // 2x + 1
    }

    #[test]
    fn concat_narrow_backward() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2, 2]), true);
        let b = tape.leaf(Tensor::ones(&[2, 3]), true);
        let c = Var::concat(&[a, b], 1);
        assert_eq!(c.shape(), vec![2, 5]);
        // take only the b-part; a should get zero grad
        let loss = c.narrow(1, 2, 3).sum_all();
        let g = tape.backward(loss);
        assert!(g.get(a).unwrap().as_slice().iter().all(|&v| v == 0.0));
        assert!(g.get(b).unwrap().as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn dropout_eval_is_identity() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4]), true);
        let y = x.dropout(0.5, false, || 0.0);
        assert_eq!(y.value().as_slice(), &[1.0; 4]);
    }

    #[test]
    fn dropout_train_scales() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4]), true);
        // uniform always 0.9 > p: all survive with scale 2
        let y = x.dropout(0.5, true, || 0.9);
        assert_eq!(y.value().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn reset_reuses_tape_with_fresh_id() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        let loss = a.mul(&a).sum_all();
        let g = tape.backward(loss);
        assert_eq!(g.get(a).unwrap().as_slice(), &[2.0, 4.0]);
        let old_id = tape.id();
        tape.reset();
        assert_ne!(tape.id(), old_id, "reset must invalidate cached bindings");
        assert!(tape.is_empty());
        // The tape records and differentiates again after reset.
        let b = tape.leaf(Tensor::from_vec(vec![3.0], &[1]), true);
        let loss2 = b.mul(&b).sum_all();
        let g2 = tape.backward(loss2);
        assert_eq!(g2.get(b).unwrap().as_slice(), &[6.0]);
    }

    #[test]
    fn stack_shapes() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::ones(&[2, 3]));
        let b = tape.constant(Tensor::zeros(&[2, 3]));
        let s = Var::stack(&[a, b], 0);
        assert_eq!(s.shape(), vec![2, 2, 3]);
        let s1 = Var::stack(&[a, b], 1);
        assert_eq!(s1.shape(), vec![2, 2, 3]);
        assert_eq!(s1.value().at(&[0, 0, 0]), 1.0);
        assert_eq!(s1.value().at(&[0, 1, 0]), 0.0);
    }
}
