//! Table I: the seven-dataset catalog, plus simulated counterparts.
//!
//! ```text
//! cargo run --release --example dataset_catalog [-- --scale smoke|quick]
//! ```

use traffic_suite::core::render_table1;
use traffic_suite::data::{simulate, SimConfig, DATASETS};
use traffic_suite::scale_from_args;

fn main() {
    println!("== Table I: dataset characterisation (paper values) ==\n");
    print!("{}", render_table1());

    let scale = scale_from_args();
    println!("\n== Simulated counterparts at {:.0}% scale ==\n", scale.dataset_scale * 100.0);
    for info in &DATASETS {
        let cfg = SimConfig::for_dataset(info, scale.dataset_scale);
        let ds = simulate(&cfg);
        println!(
            "{:<10} {:>4} sensors × {:>3} days  [{}]  mean {:>7.2}  std {:>6.2}  missing {:.2}%",
            ds.name,
            ds.num_nodes(),
            ds.num_days(),
            ds.task,
            ds.values.mean_all(),
            ds.values.std_all(),
            ds.missing_fraction() * 100.0
        );
    }
}
