#!/usr/bin/env python3
"""Plot the CSV artifacts written by the examples (requires matplotlib).

Usage:
    python3 scripts/plot_results.py reports/

Produces PNGs next to each CSV:
- fig1_model_comparison.csv  -> grouped bar chart per dataset/horizon (MAE)
- fig2_difficult_intervals.csv -> overall-vs-difficult MAE bars + degradation
- fig3_case_study.csv        -> actual-vs-predicted traces with difficult
                                intervals shaded (the paper's Fig 3)
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path


def read(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def plot_fig1(path, plt):
    rows = read(path)
    datasets = sorted({r["dataset"] for r in rows})
    horizons = ["15 min", "30 min", "60 min"]
    for ds in datasets:
        sub = [r for r in rows if r["dataset"] == ds]
        models = sorted({r["model"] for r in sub})
        fig, ax = plt.subplots(figsize=(9, 4))
        width = 0.8 / len(horizons)
        for hi, h in enumerate(horizons):
            vals = []
            for m in models:
                match = [r for r in sub if r["model"] == m and r["horizon"] == h]
                vals.append(float(match[0]["mae_mean"]) if match else float("nan"))
            xs = [i + hi * width for i in range(len(models))]
            ax.bar(xs, vals, width, label=h)
        ax.set_xticks([i + width for i in range(len(models))])
        ax.set_xticklabels(models, rotation=30, ha="right")
        ax.set_ylabel("MAE")
        ax.set_title(f"Fig 1 — {ds}")
        ax.legend()
        out = path.parent / f"fig1_{ds.replace('(', '').replace(')', '')}.png"
        fig.tight_layout()
        fig.savefig(out, dpi=150)
        print("wrote", out)


def plot_fig2(path, plt):
    rows = read(path)
    models = [r["model"] for r in rows]
    overall = [float(r["overall_mae"]) for r in rows]
    difficult = [float(r["difficult_mae"]) for r in rows]
    fig, (a1, a2) = plt.subplots(2, 1, figsize=(8, 6), sharex=True)
    xs = range(len(models))
    a1.bar([x - 0.2 for x in xs], overall, 0.4, label="overall")
    a1.bar([x + 0.2 for x in xs], difficult, 0.4, label="difficult")
    a1.set_ylabel("MAE")
    a1.legend()
    a2.bar(xs, [float(r["degradation_pct"]) for r in rows], color="tab:red")
    a2.set_ylabel("degradation %")
    a2.set_xticks(list(xs))
    a2.set_xticklabels(models, rotation=30, ha="right")
    fig.suptitle("Fig 2 — difficult intervals")
    out = path.parent / "fig2.png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print("wrote", out)


def plot_fig3(path, plt):
    rows = read(path)
    roads = defaultdict(list)
    for r in rows:
        roads[r["road"]].append(r)
    fig, axes = plt.subplots(len(roads), 1, figsize=(10, 3 * len(roads)))
    if len(roads) == 1:
        axes = [axes]
    for ax, (road, rs) in zip(axes, roads.items()):
        steps = [int(r["step"]) for r in rs]
        ax.plot(steps, [float(r["actual"]) for r in rs], label="actual", color="black")
        ax.plot(steps, [float(r["predicted"]) for r in rs], label="predicted", color="tab:red")
        in_run = False
        start = 0
        for r in rs + [{"difficult": "0", "step": str(len(rs))}]:
            d = r["difficult"] == "1"
            if d and not in_run:
                start, in_run = int(r["step"]), True
            elif not d and in_run:
                ax.axvspan(start, int(r["step"]), alpha=0.2, color="tab:blue")
                in_run = False
        ax.set_title(f"Road {road} (sensor {rs[0]['sensor']})")
        ax.legend()
    out = path.parent / "fig3.png"
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print("wrote", out)


def main():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib required: pip install matplotlib")
    reports = Path(sys.argv[1] if len(sys.argv) > 1 else "reports")
    jobs = [
        ("fig1_model_comparison.csv", plot_fig1),
        ("fig2_difficult_intervals.csv", plot_fig2),
        ("fig3_case_study.csv", plot_fig3),
    ]
    for name, fn in jobs:
        p = reports / name
        if p.exists():
            fn(p, plt)
        else:
            print("skip (missing):", p)


if __name__ == "__main__":
    main()
