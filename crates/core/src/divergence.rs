//! Divergence detection for the trainer: a rolling-median loss monitor
//! and the policy that decides how to react (rollback + LR backoff).
//!
//! Gradient clipping bounds a single step, but it cannot save a run
//! whose loss has already blown up (too-high LR, fp32 overflow in an
//! attention softmax, a poisoned batch). The [`LossMonitor`] watches
//! the per-batch training loss and flags two conditions:
//!
//! - **non-finite** — the loss itself is NaN/∞; the step that produced
//!   it has already polluted nothing (the trainer skips the optimizer
//!   step on non-finite losses), but the run is clearly unstable;
//! - **exploding** — the loss exceeds `explode_factor ×` the rolling
//!   median of the last `window` batches. The median (not the mean)
//!   keeps one earlier spike from masking the next.
//!
//! The trainer reacts by restoring the last end-of-epoch snapshot
//! (weights, optimizer moments, RNG), scaling the learning rate by
//! `lr_backoff`, and retrying the epoch — the recovery recipe of the
//! DCRNN/Graph-WaveNet training scripts, automated. After
//! `max_retries` consecutive failed attempts of the same epoch it
//! gives up cleanly (`TrainReport::diverged`) instead of looping.

use std::collections::VecDeque;

/// How the trainer supervises and recovers from divergence.
#[derive(Debug, Clone)]
pub struct DivergencePolicy {
    /// Rolling window of recent batch losses fed to the median.
    pub window: usize,
    /// A batch loss above `median × explode_factor` counts as exploding.
    pub explode_factor: f32,
    /// Consecutive failed attempts of one epoch before giving up.
    pub max_retries: usize,
    /// Learning-rate multiplier applied at each rollback.
    pub lr_backoff: f32,
}

impl Default for DivergencePolicy {
    fn default() -> Self {
        DivergencePolicy { window: 16, explode_factor: 25.0, max_retries: 3, lr_backoff: 0.5 }
    }
}

/// What the monitor concluded from one batch loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Within the expected band.
    Healthy,
    /// The loss is NaN or infinite.
    NonFinite,
    /// The loss exceeds the rolling median by more than the factor.
    Exploding {
        /// The offending batch loss.
        loss: f32,
        /// Rolling median it was compared against.
        median: f32,
    },
}

/// Rolling-median explosion detector over per-batch losses.
#[derive(Debug, Clone)]
pub struct LossMonitor {
    window: usize,
    factor: f32,
    recent: VecDeque<f32>,
}

impl LossMonitor {
    /// Monitor with the given window and explosion factor.
    pub fn new(window: usize, factor: f32) -> Self {
        assert!(window >= 2, "median needs at least 2 samples");
        LossMonitor { window, factor, recent: VecDeque::with_capacity(window) }
    }

    /// Monitor configured from a policy.
    pub fn from_policy(p: &DivergencePolicy) -> Self {
        Self::new(p.window, p.explode_factor)
    }

    /// Median of the current window (`None` until the window is full).
    fn median(&self) -> Option<f32> {
        if self.recent.len() < self.window {
            return None;
        }
        let mut sorted: Vec<f32> = self.recent.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(sorted[sorted.len() / 2])
    }

    /// Feeds one batch loss; healthy losses enter the window, anomalous
    /// ones are reported and kept out of it.
    pub fn observe(&mut self, loss: f32) -> Verdict {
        if !loss.is_finite() {
            return Verdict::NonFinite;
        }
        if let Some(median) = self.median() {
            if median > 0.0 && loss > median * self.factor {
                return Verdict::Exploding { loss, median };
            }
        }
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(loss);
        Verdict::Healthy
    }

    /// Clears the window (after a rollback: the retried epoch starts
    /// from a restored state, so old losses no longer apply).
    pub fn reset(&mut self) {
        self.recent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_stream_stays_healthy() {
        let mut m = LossMonitor::new(4, 10.0);
        for i in 0..50 {
            let loss = 1.0 + 0.1 * ((i % 7) as f32);
            assert_eq!(m.observe(loss), Verdict::Healthy, "batch {i}");
        }
    }

    #[test]
    fn nonfinite_is_flagged_immediately() {
        let mut m = LossMonitor::new(4, 10.0);
        assert_eq!(m.observe(f32::NAN), Verdict::NonFinite);
        assert_eq!(m.observe(f32::INFINITY), Verdict::NonFinite);
        // a single NaN does not corrupt the window
        assert_eq!(m.observe(1.0), Verdict::Healthy);
    }

    #[test]
    fn explosion_needs_a_full_window() {
        let mut m = LossMonitor::new(4, 10.0);
        // Window not yet full: even a huge loss is tolerated (no
        // baseline to compare against).
        assert_eq!(m.observe(500.0), Verdict::Healthy);
        for _ in 0..4 {
            assert_eq!(m.observe(1.0), Verdict::Healthy);
        }
        match m.observe(50.0) {
            Verdict::Exploding { loss, median } => {
                assert_eq!(loss, 50.0);
                assert!((median - 1.0).abs() < 1e-6);
            }
            v => panic!("expected explosion, got {v:?}"),
        }
    }

    #[test]
    fn spike_does_not_poison_the_median() {
        let mut m = LossMonitor::new(4, 5.0);
        for _ in 0..4 {
            m.observe(1.0);
        }
        // First spike flagged and excluded; the next spike must still be
        // flagged (median unchanged at 1.0).
        assert!(matches!(m.observe(100.0), Verdict::Exploding { .. }));
        assert!(matches!(m.observe(100.0), Verdict::Exploding { .. }));
        assert_eq!(m.observe(1.1), Verdict::Healthy);
    }

    #[test]
    fn reset_clears_baseline() {
        let mut m = LossMonitor::new(2, 5.0);
        m.observe(1.0);
        m.observe(1.0);
        assert!(matches!(m.observe(100.0), Verdict::Exploding { .. }));
        m.reset();
        // After reset the window must refill before flagging again.
        assert_eq!(m.observe(100.0), Verdict::Healthy);
    }
}
