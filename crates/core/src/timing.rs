//! Table III: computation time (training time per epoch, inference time)
//! and parameter counts, measured on the METR-LA dataset.

use std::time::Duration;

use crate::experiment::{eval_split, prepare_experiment, train_model, PreparedExperiment};
use crate::scale::ExperimentScale;
use crate::trainer::timed_predict;

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// Wall-clock training time per epoch.
    pub train_time_per_epoch: Duration,
    /// Wall-clock inference time over the evaluated test split.
    pub inference_time: Duration,
    /// Total scalar parameter count.
    pub params: usize,
}

/// Measures Table III for the given models on METR-LA.
pub fn computation_time(models: &[&str], scale: &ExperimentScale) -> Vec<Table3Row> {
    let exp = prepare_experiment("METR-LA", scale, 42);
    computation_time_on(&exp, models, scale)
}

/// Measures Table III on an already-prepared experiment.
pub fn computation_time_on(
    exp: &PreparedExperiment,
    models: &[&str],
    scale: &ExperimentScale,
) -> Vec<Table3Row> {
    let test = eval_split(&exp.data.test, scale);
    models
        .iter()
        .map(|&name| {
            let (model, report) = train_model(name, exp, scale, 4000);
            let (_pred, inference_time) =
                timed_predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
            Table3Row {
                model: name.to_string(),
                train_time_per_epoch: report.mean_epoch_time,
                inference_time,
                params: model.num_params(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_smoke() {
        let scale = ExperimentScale::smoke();
        let rows = computation_time(&["STGCN", "Graph-WaveNet"], &scale);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.train_time_per_epoch > Duration::ZERO, "{}", r.model);
            assert!(r.inference_time > Duration::ZERO, "{}", r.model);
            assert!(r.params > 0);
        }
        // Shape check from Table III: STGCN's many-to-one rollout makes its
        // inference slower than Graph-WaveNet's single pass.
        let stgcn = &rows[0];
        let gwn = &rows[1];
        assert!(
            stgcn.inference_time > gwn.inference_time,
            "STGCN {:?} should be slower than GWN {:?} at inference",
            stgcn.inference_time,
            gwn.inference_time
        );
    }
}
