//! Classical baselines (extensions beyond the paper's eight deep models):
//! persistence ("last value") and historical average. The paper's related
//! work notes deep models are compared against such baselines in the
//! original papers; including them makes the error magnitudes of Fig 1
//! interpretable.

use traffic_nn::ParamStore;
use traffic_tensor::{Tape, Tensor, Var};

use crate::common::{TrafficModel, TrainCtx};
use crate::meta::{ModelMeta, OutputStyle, SpatialComponent, TemporalComponent};

/// Persistence baseline: every horizon is predicted as the last observed
/// (z-scored) value. No parameters, no training.
pub struct LastValue {
    store: ParamStore,
    t_out: usize,
}

impl LastValue {
    /// New persistence baseline emitting `t_out` steps.
    pub fn new(t_out: usize) -> Self {
        LastValue { store: ParamStore::new(), t_out }
    }
}

impl TrafficModel for LastValue {
    fn name(&self) -> &'static str {
        "LastValue"
    }

    fn meta(&self) -> ModelMeta {
        ModelMeta {
            name: "LastValue",
            spatial: SpatialComponent::SpatialGcn, // degenerate: identity graph
            temporal: TemporalComponent::Cnn,      // degenerate: copy
            output: OutputStyle::Direct,
        }
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        _train: Option<&mut TrainCtx<'_>>,
    ) -> Var<'t> {
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        let _ = tape;
        // value feature of the last input step, broadcast over horizons
        let last = x.narrow(1, t - 1, 1).narrow(3, 0, 1).reshape(&[b, 1, n]);
        let copies: Vec<Var<'t>> = (0..self.t_out).map(|_| last).collect();
        Var::concat(&copies, 1)
    }
}

/// Historical average: predicts the per-(node, time-of-day) mean of the
/// training data. Must be fitted before use.
pub struct HistoricalAverage {
    store: ParamStore,
    /// `[steps_per_day, N]` mean profile on the z-scored scale.
    profile: Tensor,
    steps_per_day: usize,
    t_out: usize,
}

impl HistoricalAverage {
    /// Fits the profile from a raw `[T, N]` series (original scale) plus
    /// the z-score parameters used downstream. Missing entries (zeros) are
    /// excluded from the averages.
    pub fn fit(
        values: &Tensor,
        train_steps: usize,
        scaler_mean: f32,
        scaler_std: f32,
        steps_per_day: usize,
        t_out: usize,
    ) -> Self {
        let n = values.shape()[1];
        let data = values.as_slice();
        let mut sums = vec![0.0f64; steps_per_day * n];
        let mut counts = vec![0usize; steps_per_day * n];
        for t in 0..train_steps.min(values.shape()[0]) {
            let sod = t % steps_per_day;
            for i in 0..n {
                let v = data[t * n + i];
                if v != 0.0 {
                    sums[sod * n + i] += v as f64;
                    counts[sod * n + i] += 1;
                }
            }
        }
        let mut profile = vec![0.0f32; steps_per_day * n];
        for k in 0..steps_per_day * n {
            let mean =
                if counts[k] > 0 { (sums[k] / counts[k] as f64) as f32 } else { scaler_mean };
            profile[k] = (mean - scaler_mean) / scaler_std;
        }
        HistoricalAverage {
            store: ParamStore::new(),
            profile: Tensor::from_vec(profile, &[steps_per_day, n]),
            steps_per_day,
            t_out,
        }
    }
}

impl TrafficModel for HistoricalAverage {
    fn name(&self) -> &'static str {
        "HistoricalAverage"
    }

    fn meta(&self) -> ModelMeta {
        ModelMeta {
            name: "HistoricalAverage",
            spatial: SpatialComponent::SpatialGcn, // degenerate
            temporal: TemporalComponent::Cnn,      // degenerate
            output: OutputStyle::Direct,
        }
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        _train: Option<&mut TrainCtx<'_>>,
    ) -> Var<'t> {
        let shape = x.shape();
        let (b, t_in, n) = (shape[0], shape[1], shape[2]);
        // Recover each sample's time-of-day from the (min-max normalised)
        // feature, then look up the profile for the target steps.
        let xv = x.value();
        let mut out = vec![0.0f32; b * self.t_out * n];
        for bi in 0..b {
            // tod of last input step at node 0
            let tod = xv.at(&[bi, t_in - 1, 0, 1]);
            let sod_last = (tod * self.steps_per_day as f32).round() as usize % self.steps_per_day;
            for h in 0..self.t_out {
                let sod = (sod_last + 1 + h) % self.steps_per_day;
                for i in 0..n {
                    out[(bi * self.t_out + h) * n + i] = self.profile.at(&[sod, i]);
                }
            }
        }
        tape.constant(Tensor::from_vec(out, &[b, self.t_out, n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_copies_final_step() {
        let model = LastValue::new(3);
        let tape = Tape::new();
        // [1, 2, 2, 2]: values 1, 2 at node 0/1 in last step
        let x = tape.constant(Tensor::from_vec(
            vec![9.0, 0.1, 9.0, 0.1, 1.0, 0.2, 2.0, 0.2],
            &[1, 2, 2, 2],
        ));
        let y = model.forward(&tape, x, None).value();
        assert_eq!(y.shape(), &[1, 3, 2]);
        for h in 0..3 {
            assert_eq!(y.at(&[0, h, 0]), 1.0);
            assert_eq!(y.at(&[0, h, 1]), 2.0);
        }
        assert_eq!(model.num_params(), 0);
    }

    #[test]
    fn historical_average_learns_daily_profile() {
        // 2 nodes, 2 "days" of 4 steps with a repeating profile.
        let steps_per_day = 4;
        let mut vals = Vec::new();
        for _day in 0..2 {
            for sod in 0..steps_per_day {
                vals.push(10.0 + sod as f32); // node 0
                vals.push(20.0 + sod as f32); // node 1
            }
        }
        let values = Tensor::from_vec(vals, &[8, 2]);
        let ha = HistoricalAverage::fit(&values, 8, 0.0, 1.0, steps_per_day, 2);
        // profile at sod 2 = raw mean since scaler is identity
        assert_eq!(ha.profile.at(&[2, 0]), 12.0);
        assert_eq!(ha.profile.at(&[3, 1]), 23.0);
    }

    #[test]
    fn historical_average_forward_lookup() {
        let steps_per_day = 4;
        let values = Tensor::from_vec(
            (0..8).flat_map(|t| vec![(t % 4) as f32 + 1.0, 0.0]).collect::<Vec<f32>>(),
            &[8, 2],
        );
        let ha = HistoricalAverage::fit(&values, 8, 0.0, 1.0, steps_per_day, 2);
        let tape = Tape::new();
        // last input step has tod = 1/4 (sod 1); targets are sods 2 and 3
        let x = tape.constant(Tensor::from_vec(vec![0.0, 0.25, 0.0, 0.25], &[1, 1, 2, 2]));
        let y = ha.forward(&tape, x, None).value();
        assert_eq!(y.at(&[0, 0, 0]), 3.0); // sod 2 profile of node 0
        assert_eq!(y.at(&[0, 1, 0]), 4.0); // sod 3
                                           // node 1 had only missing data → profile falls back to scaler mean (0)
        assert_eq!(y.at(&[0, 0, 1]), 0.0);
    }
}
