//! Quickstart: simulate a small METR-LA-like dataset, train Graph-WaveNet,
//! and evaluate at the paper's 15/30/60-minute horizons.
//!
//! ```text
//! cargo run --release --example quickstart [-- --scale smoke|quick|thorough|full]
//! ```

use traffic_suite::core::{eval_split, predict, prepare_experiment, train_model};
use traffic_suite::metrics::{evaluate_horizons, PAPER_HORIZONS, PAPER_HORIZON_LABELS};
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("== traffic-suite quickstart ==");
    println!("simulating METR-LA at {:.0}% scale…", scale.dataset_scale * 100.0);
    let exp = prepare_experiment("METR-LA", &scale, 42);
    println!(
        "dataset: {} sensors × {} days ({} five-minute steps, {:.2}% missing)",
        exp.dataset.num_nodes(),
        exp.dataset.num_days(),
        exp.dataset.num_steps(),
        exp.dataset.missing_fraction() * 100.0
    );
    println!(
        "windows: train {} / val {} / test {} (T' = 12 → T = 12)",
        exp.data.train.len(),
        exp.data.val.len(),
        exp.data.test.len()
    );

    println!("\ntraining Graph-WaveNet ({} epochs)…", scale.epochs);
    let (model, report) = train_model("Graph-WaveNet", &exp, &scale, 1);
    println!("parameters: {}", model.num_params());
    for (e, loss) in report.epoch_losses.iter().enumerate() {
        println!(
            "  epoch {:>2}: masked-MAE loss {:.4} ({:.2}s)",
            e + 1,
            loss,
            report.epoch_times[e].as_secs_f64()
        );
    }

    let test = eval_split(&exp.data.test, &scale);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    let metrics = evaluate_horizons(&pred, &test.y_raw, &PAPER_HORIZONS, None);
    println!("\ntest-set accuracy ({} samples):", test.len());
    for (label, m) in PAPER_HORIZON_LABELS.iter().zip(&metrics) {
        println!("  {label}: {m}");
    }
}
