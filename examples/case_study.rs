//! Fig 3: the same trained model (Graph-WaveNet, PeMS-BAY) traced on a
//! smooth road vs a volatile road, with difficult intervals marked.
//!
//! ```text
//! cargo run --release --example case_study [-- --scale smoke|quick]
//! ```

use traffic_suite::core::{case_study, fig3_csv_rows, render_fig3, write_csv};
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("== Fig 3: case study (Graph-WaveNet on PeMS-BAY) ==\n");
    let cs = case_study(&scale);
    print!("{}", render_fig3(&cs));
    println!(
        "MAE ratio volatile/smooth: {:.2}× (paper example: 4.5×)",
        cs.volatile.mae / cs.smooth.mae
    );
    let (headers, rows) = fig3_csv_rows(&cs);
    let out = std::path::Path::new("reports/fig3_case_study.csv");
    match write_csv(out, &headers, &rows) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
