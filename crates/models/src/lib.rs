//! # traffic-models
//!
//! Architecture-faithful, width-reduced Rust implementations of the eight
//! deep-learning traffic predictors compared by the paper: STGCN, DCRNN,
//! ASTGCN, ST-MetaNet, Graph-WaveNet, STG2Seq, STSGCN, and GMAN — all
//! behind one [`TrafficModel`] trait mapping `[B, T', N, C]` windows to
//! `[B, T, N]` forecasts, plus the Table II taxonomy in [`meta`].

pub mod astgcn;
pub mod baselines;
pub mod common;
pub mod dcrnn;
pub mod gman;
pub mod graph_wavenet;
pub mod meta;
pub mod registry;
pub mod stg2seq;
pub mod stgcn;
pub mod stmetanet;
pub mod stsgcn;

pub use astgcn::{Astgcn, AstgcnConfig};
pub use baselines::{HistoricalAverage, LastValue};
pub use common::{GraphContext, TrafficModel, TrainCtx};
pub use dcrnn::{Dcrnn, DcrnnConfig};
pub use gman::{Gman, GmanConfig};
pub use graph_wavenet::{GraphWavenet, GraphWavenetConfig};
pub use meta::{
    taxonomy, ModelMeta, OutputStyle, SpatialComponent, TemporalComponent, MODEL_TAXONOMY,
};
pub use registry::{build_model, train_horizon, train_profile, TrainProfile, ALL_MODELS};
pub use stg2seq::{Stg2Seq, Stg2SeqConfig};
pub use stgcn::{SpatialKind, Stgcn, StgcnConfig};
pub use stmetanet::{StMetaNet, StMetaNetConfig};
pub use stsgcn::{Stsgcn, StsgcnConfig};

/// Five-minute steps per day (PeMS aggregation), re-exported for rollout
/// time-of-day arithmetic.
pub const STEPS_PER_DAY: usize = 288;
