//! STGCN (Yu et al., IJCAI 2018): spatio-temporal graph convolutional
//! network. Two "sandwich" ST-Conv blocks (gated temporal conv → Chebyshev
//! graph conv → gated temporal conv) followed by an output temporal conv.
//!
//! STGCN is the paper's **many-to-one** model: it natively predicts one
//! step ahead and produces multi-step forecasts by autoregressive rollout —
//! the reason Table III shows the shortest training time per epoch but a
//! long inference time.

use rand::rngs::StdRng;
use traffic_nn::{ChebConv, DiffusionConv, GatedTemporalConv, ParamStore, TemporalPadding};
use traffic_tensor::{Tape, Var};

use crate::common::{advance_time_of_day, to_conv_layout, GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// Which graph convolution the spatial stage uses — the paper's Table II
/// spectral/spatial axis, exposed as an ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialKind {
    /// Chebyshev polynomials of the scaled Laplacian (the original STGCN).
    Spectral,
    /// Random-walk diffusion convolution (DCRNN/Graph-WaveNet style).
    Diffusion,
}

/// STGCN hyper-parameters (width-reduced defaults; see DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct StgcnConfig {
    /// Spectral (original) or spatial (ablation) graph convolution.
    pub spatial_kind: SpatialKind,
    /// Channels of each ST-Conv block: (temporal-out, spatial-out,
    /// temporal-out).
    pub block_channels: (usize, usize, usize),
    /// Temporal kernel size.
    pub kt: usize,
    /// Chebyshev polynomial order.
    pub cheb_k: usize,
    /// Input horizon (must satisfy `t_in = 4(kt−1) + k_out` with the final
    /// kernel chosen below).
    pub t_in: usize,
    /// Output horizon produced by rollout.
    pub t_out: usize,
    /// Input feature count.
    pub in_features: usize,
}

impl Default for StgcnConfig {
    fn default() -> Self {
        StgcnConfig {
            spatial_kind: SpatialKind::Spectral,
            block_channels: (16, 8, 16),
            kt: 3,
            cheb_k: 3,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

enum SpatialConv {
    Spectral(ChebConv),
    Diffusion(DiffusionConv),
}

impl SpatialConv {
    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        match self {
            SpatialConv::Spectral(c) => c.forward(tape, x),
            SpatialConv::Diffusion(c) => c.forward(tape, x),
        }
    }
}

struct StConvBlock {
    t1: GatedTemporalConv,
    spatial: SpatialConv,
    t2: GatedTemporalConv,
}

/// The STGCN model.
pub struct Stgcn {
    store: ParamStore,
    blocks: Vec<StConvBlock>,
    out_conv: GatedTemporalConv,
    head: traffic_nn::Conv2d,
    cfg: StgcnConfig,
}

impl Stgcn {
    /// Builds STGCN for a graph context.
    pub fn new(ctx: &GraphContext, cfg: StgcnConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let (c1, c2, c3) = cfg.block_channels;
        let mut blocks = Vec::new();
        let mut in_c = cfg.in_features;
        for b in 0..2 {
            let t1 = GatedTemporalConv::new(
                &mut store,
                &format!("block{b}.t1"),
                in_c,
                c1,
                cfg.kt,
                1,
                TemporalPadding::Valid,
                rng,
            );
            let spatial = match cfg.spatial_kind {
                SpatialKind::Spectral => SpatialConv::Spectral(ChebConv::new(
                    &mut store,
                    &format!("block{b}.spatial"),
                    ctx.scaled_laplacian.clone(),
                    cfg.cheb_k,
                    c1,
                    c2,
                    rng,
                )),
                SpatialKind::Diffusion => SpatialConv::Diffusion(DiffusionConv::new(
                    &mut store,
                    &format!("block{b}.spatial"),
                    ctx.supports.clone(),
                    0,
                    cfg.cheb_k - 1,
                    c1,
                    c2,
                    rng,
                )),
            };
            let t2 = GatedTemporalConv::new(
                &mut store,
                &format!("block{b}.t2"),
                c2,
                c3,
                cfg.kt,
                1,
                TemporalPadding::Valid,
                rng,
            );
            blocks.push(StConvBlock { t1, spatial, t2 });
            in_c = c3;
        }
        // After two blocks the time axis has t_in − 4(kt−1) steps left;
        // the output conv collapses it to one.
        let remaining = cfg.t_in - 4 * (cfg.kt - 1);
        assert!(remaining >= 1, "t_in too small for two ST-Conv blocks");
        let out_conv = GatedTemporalConv::new(
            &mut store,
            "out.temporal",
            c3,
            c3,
            remaining,
            1,
            TemporalPadding::Valid,
            rng,
        );
        let head = traffic_nn::Conv2d::new(
            &mut store,
            "out.head",
            c3,
            1,
            (1, 1),
            (1, 1),
            TemporalPadding::Valid,
            true,
            rng,
        );
        Stgcn { store, blocks, out_conv, head, cfg }
    }

    /// One-step-ahead prediction: `[B, T_in, N, C] -> [B, N]`.
    pub fn forward_step<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        assert_eq!(t, self.cfg.t_in, "STGCN expects t_in = {}", self.cfg.t_in);
        let mut h = to_conv_layout(x); // [B, C, N, T]
        for block in &self.blocks {
            h = block.t1.forward(tape, h);
            // spatial conv per time slice: [B, C, N, T'] -> [B*T', N, C]
            let hs = h.shape();
            let (c, tt) = (hs[1], hs[3]);
            let flat = h.permute(&[0, 3, 2, 1]).reshape(&[b * tt, n, c]);
            let sp = block.spatial.forward(tape, flat).relu();
            let c2 = sp.shape()[2];
            h = sp.reshape(&[b, tt, n, c2]).permute(&[0, 3, 2, 1]);
            h = block.t2.forward(tape, h);
        }
        let h = self.out_conv.forward(tape, h); // [B, C, N, 1]
        let y = self.head.forward(tape, h); // [B, 1, N, 1]
        y.reshape(&[b, n])
    }

    /// Rebuilds the input window after predicting one step: drops the
    /// oldest step and appends `(prediction, next time-of-day)`.
    fn extend_window<'t>(&self, tape: &'t Tape, x: Var<'t>, pred: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        // Next time-of-day from the last step's (constant) feature.
        let last_tod = x.narrow(1, t - 1, 1).narrow(3, 1, 1).value(); // [B,1,N,1]
        let next_tod = tape.constant(last_tod.map(advance_time_of_day));
        let val = pred.reshape(&[b, 1, n, 1]);
        let step = Var::concat(&[val, next_tod], 3); // [B,1,N,2]
        Var::concat(&[x.narrow(1, 1, t - 1), step], 1)
    }
}

impl TrafficModel for Stgcn {
    fn name(&self) -> &'static str {
        "STGCN"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("STGCN").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, train: Option<&mut TrainCtx<'_>>) -> Var<'t> {
        let shape = x.shape();
        let (b, n) = (shape[0], shape[2]);
        if let Some(ctx) = train {
            // Many-to-one training: learn the 1-step prediction only. The
            // trainer pairs this with `train_horizon() == 1`. During the
            // rollout-free training pass we optionally jitter the input via
            // dropout-free noise for regularisation — here we simply use
            // the plain 1-step forward.
            let _ = &ctx.rng;
            let one = self.forward_step(tape, x);
            return one.reshape(&[b, 1, n]);
        }
        // Inference: autoregressive rollout to t_out steps.
        let mut window = x;
        let mut steps = Vec::with_capacity(self.cfg.t_out);
        for _ in 0..self.cfg.t_out {
            let pred = self.forward_step(tape, window);
            steps.push(pred.reshape(&[b, 1, n]));
            window = self.extend_window(tape, window, pred);
        }
        Var::concat(&steps, 1)
    }
}

impl Stgcn {
    /// Number of target steps the training loss covers (many-to-one: 1).
    pub fn train_horizon(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;
    use traffic_tensor::Tensor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let net = freeway_corridor(8, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn one_step_shape() {
        let (ctx, mut rng) = setup();
        let model = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 8, 2]));
        let y = model.forward_step(&tape, x);
        assert_eq!(y.shape(), vec![2, 8]);
    }

    #[test]
    fn rollout_produces_full_horizon() {
        let (ctx, mut rng) = setup();
        let model = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 12, 8, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![1, 12, 8]);
        assert!(!y.value().has_non_finite());
    }

    #[test]
    fn train_mode_single_step() {
        let (ctx, mut rng) = setup();
        let model = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 8, 2]));
        let mut trng = StdRng::seed_from_u64(0);
        let mut tctx = TrainCtx { rng: &mut trng, teacher: None, teacher_prob: 0.0 };
        let y = model.forward(&tape, x, Some(&mut tctx));
        assert_eq!(y.shape(), vec![2, 1, 8]);
        assert_eq!(model.train_horizon(), 1);
    }

    #[test]
    fn grads_reach_all_params() {
        let (ctx, mut rng) = setup();
        let model = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(traffic_tensor::init::uniform(&[1, 12, 8, 2], -1.0, 1.0, &mut rng));
        let y = model.forward_step(&tape, x);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn window_extension_shifts_time() {
        let (ctx, mut rng) = setup();
        let model = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(
            (0..12 * 8 * 2).map(|i| i as f32 / 100.0).collect(),
            &[1, 12, 8, 2],
        ));
        let pred = tape.constant(Tensor::full(&[1, 8], 9.0));
        let w2 = model.extend_window(&tape, x, pred);
        assert_eq!(w2.shape(), vec![1, 12, 8, 2]);
        // first step of new window == second step of old
        assert_eq!(w2.value().at(&[0, 0, 3, 0]), x.value().at(&[0, 1, 3, 0]));
        // last value feature is the prediction
        assert_eq!(w2.value().at(&[0, 11, 5, 0]), 9.0);
    }

    #[test]
    fn param_count_reasonable() {
        let (ctx, mut rng) = setup();
        let model = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let n = model.num_params();
        assert!(n > 1000 && n < 100_000, "param count {n}");
    }
}

#[cfg(test)]
mod spatial_kind_tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;
    use traffic_tensor::Tensor;

    #[test]
    fn diffusion_variant_builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(33);
        let net = freeway_corridor(8, 1.0, &mut rng);
        let ctx = GraphContext::from_network(&net, 4);
        let cfg = StgcnConfig { spatial_kind: SpatialKind::Diffusion, ..Default::default() };
        let model = Stgcn::new(&ctx, cfg, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 12, 8, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![1, 12, 8]);
        assert!(!y.value().has_non_finite());
    }

    #[test]
    fn variants_have_different_parameterisations() {
        let mut rng = StdRng::seed_from_u64(34);
        let net = freeway_corridor(8, 1.0, &mut rng);
        let ctx = GraphContext::from_network(&net, 4);
        let spectral = Stgcn::new(&ctx, StgcnConfig::default(), &mut rng);
        let diffusion = Stgcn::new(
            &ctx,
            StgcnConfig { spatial_kind: SpatialKind::Diffusion, ..Default::default() },
            &mut rng,
        );
        // K-order Cheb: K weight slots; 2-support diffusion with K-1 steps:
        // 1 + 2(K-1) slots — different parameter counts.
        assert_ne!(spectral.num_params(), diffusion.num_params());
    }
}
