//! Adjacency-matrix construction, following the paper's Section IV-B:
//! `W_ij = exp(−dist_ij² / σ²)` with `σ` the standard deviation of the
//! pairwise road distances, thresholded to keep the matrix sparse.

use traffic_tensor::Tensor;

use crate::network::RoadNetwork;

/// Builds the Gaussian-kernel weighted adjacency `[N, N]` from directed
/// edge distances. Entries below `threshold` are zeroed (DCRNN uses 0.1).
/// The diagonal is set to 1 (self connections).
///
/// The kernel bandwidth `σ` is the RMS edge distance. (DCRNN's σ is the
/// std of its dense pairwise distance matrix, which is on the order of the
/// typical distance; using the std of *edge* distances alone would
/// degenerate to ~0 on uniformly spaced corridors and zero out every edge.)
pub fn gaussian_adjacency(net: &RoadNetwork, threshold: f32) -> Tensor {
    let n = net.num_nodes();
    let dists: Vec<f64> = net.edges().iter().map(|e| e.distance_km).collect();
    let sigma = if dists.is_empty() {
        1e-9
    } else {
        (dists.iter().map(|d| d * d).sum::<f64>() / dists.len() as f64).sqrt().max(1e-9)
    };
    let mut w = Tensor::zeros(&[n, n]);
    {
        let buf = w.make_mut();
        for e in net.edges() {
            let v = (-(e.distance_km * e.distance_km) / (sigma * sigma)).exp() as f32;
            if v >= threshold {
                buf[e.from * n + e.to] = v;
            }
        }
        for i in 0..n {
            buf[i * n + i] = 1.0;
        }
    }
    w
}

/// Binary (0/1) adjacency with self-loops.
pub fn binary_adjacency(net: &RoadNetwork) -> Tensor {
    let n = net.num_nodes();
    let mut a = Tensor::zeros(&[n, n]);
    {
        let buf = a.make_mut();
        for e in net.edges() {
            buf[e.from * n + e.to] = 1.0;
        }
        for i in 0..n {
            buf[i * n + i] = 1.0;
        }
    }
    a
}

/// Makes a directed adjacency symmetric by taking `max(A, Aᵀ)`.
pub fn symmetrize(a: &Tensor) -> Tensor {
    let n = a.shape()[0];
    assert_eq!(a.shape(), &[n, n]);
    let mut out = a.clone();
    {
        let buf = out.make_mut();
        for i in 0..n {
            for j in (i + 1)..n {
                let m = buf[i * n + j].max(buf[j * n + i]);
                buf[i * n + j] = m;
                buf[j * n + i] = m;
            }
        }
    }
    out
}

/// Row-normalises a non-negative matrix into a random-walk transition
/// matrix `P = D⁻¹ A`. All-zero rows stay zero.
pub fn row_normalize(a: &Tensor) -> Tensor {
    let n = a.shape()[0];
    assert_eq!(a.shape(), &[n, n]);
    let mut out = a.clone();
    {
        let buf = out.make_mut();
        for i in 0..n {
            let row_sum: f32 = buf[i * n..(i + 1) * n].iter().sum();
            if row_sum > 0.0 {
                for v in &mut buf[i * n..(i + 1) * n] {
                    *v /= row_sum;
                }
            }
        }
    }
    out
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        for i in 0..3 {
            net.add_sensor(i, i as f64, 0.0);
        }
        net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 2.0);
        net.add_edge(2, 1, 2.0);
        net
    }

    #[test]
    fn gaussian_weights_decay_with_distance() {
        let net = path3();
        let w = gaussian_adjacency(&net, 0.0);
        assert!(w.at(&[0, 1]) > w.at(&[1, 2]), "closer edge should weigh more");
        assert_eq!(w.at(&[0, 2]), 0.0, "non-edges stay zero");
        assert_eq!(w.at(&[0, 0]), 1.0, "self loops");
    }

    #[test]
    fn threshold_sparsifies() {
        let net = path3();
        let dense = gaussian_adjacency(&net, 0.0);
        let sparse = gaussian_adjacency(&net, 0.9);
        let nnz = |t: &Tensor| t.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert!(nnz(&sparse) < nnz(&dense));
    }

    #[test]
    fn binary_is_zero_one() {
        let a = binary_adjacency(&path3());
        assert!(a.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(a.at(&[1, 2]), 1.0);
        assert_eq!(a.at(&[2, 0]), 0.0);
    }

    #[test]
    fn symmetrize_max() {
        let a = binary_adjacency(&path3());
        let s = symmetrize(&a);
        assert_eq!(s.at(&[1, 0]), 1.0); // reverse of 0->1 added
        assert_eq!(s, symmetrize(&s)); // idempotent
    }

    #[test]
    fn row_normalize_stochastic() {
        let a = gaussian_adjacency(&path3(), 0.0);
        let p = row_normalize(&a);
        let n = 3;
        for i in 0..n {
            let sum: f32 = (0..n).map(|j| p.at(&[i, j])).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn row_normalize_keeps_zero_rows() {
        let a = Tensor::zeros(&[2, 2]);
        let p = row_normalize(&a);
        assert_eq!(p.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn std_dev_basic() {
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
