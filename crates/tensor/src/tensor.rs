//! The dense, contiguous, row-major `f32` tensor underlying everything else.
//!
//! `Tensor` is immutable-by-convention: operations return new tensors, and
//! cloning is cheap (the buffer is behind an [`Arc`]). The optimizer mutates
//! parameters through [`Tensor::make_mut`].

use std::sync::Arc;

use crate::pool;
use crate::shape::{broadcast_shapes, broadcast_strides, for_each_broadcast2, numel, strides_for};

/// Elementwise kernels at or above this many elements fan out across
/// the worker pool; smaller ones run inline (dispatch costs more than
/// the loop). Chunks map one-to-one between input and output, so the
/// result is identical at any thread count.
pub(crate) const ELEMENTWISE_PAR_THRESHOLD: usize = 1 << 16;

/// A dense row-major `f32` tensor of arbitrary rank.
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(f, "Tensor{:?} {:?}{}", self.shape, preview, if self.len() > 8 { "…" } else { "" })
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a tensor from raw data. Panics if `data.len() != numel(shape)`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { data: Arc::new(data), shape: shape.to_vec() }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(vec![v], &[])
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![0.0; numel(shape)], shape)
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::from_vec(vec![1.0; numel(shape)], shape)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor::from_vec(vec![v; numel(shape)], shape)
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, &[n, n])
    }

    /// `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view; clones the buffer if it is shared (copy-on-write).
    pub fn make_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its buffer (cloning only if shared).
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => v,
            Err(arc) => (*arc).clone(),
        }
    }

    /// The single value of a one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a one-element tensor, got {:?}", self.shape);
        self.data[0]
    }

    /// Value at multi-dimensional coordinates.
    pub fn at(&self, coords: &[usize]) -> f32 {
        assert_eq!(coords.len(), self.rank(), "coordinate rank mismatch");
        let strides = strides_for(&self.shape);
        for (i, (&c, &d)) in coords.iter().zip(&self.shape).enumerate() {
            assert!(c < d, "coordinate {c} out of bounds for axis {i} (size {d})");
        }
        self.data[crate::shape::ravel(coords, &strides)]
    }

    // ------------------------------------------------------------------
    // Elementwise (unary)
    // ------------------------------------------------------------------

    /// Applies `f` to every element. Large tensors are processed in
    /// parallel chunks on the worker pool.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        if self.len() < ELEMENTWISE_PAR_THRESHOLD {
            return Tensor::from_vec(self.data.iter().map(|&v| f(v)).collect(), &self.shape);
        }
        let mut out = vec![0.0f32; self.len()];
        let chunk = self.len().div_ceil(pool::effective_threads() * 2).max(1);
        let src = &self.data;
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            let base = ci * chunk;
            let src = &src[base..base + dst.len()];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = f(v);
            }
        });
        Tensor::from_vec(out, &self.shape)
    }

    /// Elementwise combination with an identically-shaped tensor (no
    /// broadcasting; use the operator impls for broadcasting).
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map requires identical shapes");
        if self.len() < ELEMENTWISE_PAR_THRESHOLD {
            return Tensor::from_vec(
                self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
                &self.shape,
            );
        }
        let mut out = vec![0.0f32; self.len()];
        let chunk = self.len().div_ceil(pool::effective_threads() * 2).max(1);
        let (a, b) = (&self.data, &other.data);
        pool::parallel_chunks_mut(&mut out, chunk, |ci, dst| {
            let base = ci * chunk;
            for (i, o) in dst.iter_mut().enumerate() {
                *o = f(a[base + i], b[base + i]);
            }
        });
        Tensor::from_vec(out, &self.shape)
    }

    /// Negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise power.
    pub fn powf(&self, p: f32) -> Tensor {
        self.map(|v| v.powf(p))
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Elementwise maximum with a scalar.
    pub fn clamp_min(&self, lo: f32) -> Tensor {
        self.map(|v| v.max(lo))
    }

    /// Elementwise minimum with a scalar.
    pub fn clamp_max(&self, hi: f32) -> Tensor {
        self.map(|v| v.min(hi))
    }

    // ------------------------------------------------------------------
    // Broadcast binary kernels
    // ------------------------------------------------------------------

    /// Broadcasting binary op. Panics on incompatible shapes.
    pub fn broadcast_zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.shape == other.shape {
            // Fast path: no index arithmetic (parallel when large).
            return self.zip_map(other, f);
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape)
            .unwrap_or_else(|| panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape));
        let a_str = broadcast_strides(&self.shape, &out_shape);
        let b_str = broadcast_strides(&other.shape, &out_shape);
        let mut out = vec![0.0f32; numel(&out_shape)];
        let a = &self.data;
        let b = &other.data;
        for_each_broadcast2(&out_shape, &a_str, &b_str, |o, ai, bi| {
            out[o] = f(a[ai], b[bi]);
        });
        Tensor::from_vec(out, &out_shape)
    }

    /// Broadcast add.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.broadcast_zip(other, |a, b| a + b)
    }

    /// Broadcast subtract.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.broadcast_zip(other, |a, b| a - b)
    }

    /// Broadcast multiply.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.broadcast_zip(other, |a, b| a * b)
    }

    /// Broadcast divide.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.broadcast_zip(other, |a, b| a / b)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the buffer under a new shape with equal element count.
    /// Zero-copy (shares the buffer).
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { data: Arc::clone(&self.data), shape: shape.to_vec() }
    }

    /// Reorders axes. `perm` must be a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = strides_for(&self.shape);
        // Stride of output axis i is the input stride of the axis it came from.
        let src_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let mut out = vec![0.0f32; self.len()];
        let zero = vec![0usize; out_shape.len()];
        let data = &self.data;
        for_each_broadcast2(&out_shape, &src_strides, &zero, |o, s, _| {
            out[o] = data[s];
        });
        Tensor::from_vec(out, &out_shape)
    }

    /// Swaps the last two axes (matrix transpose, batched).
    pub fn t(&self) -> Tensor {
        let r = self.rank();
        assert!(r >= 2, "t() requires rank >= 2");
        let mut perm: Vec<usize> = (0..r).collect();
        perm.swap(r - 1, r - 2);
        self.permute(&perm)
    }

    /// Extracts `len` consecutive slices starting at `start` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        crate::shape::check_axis(axis, self.rank());
        assert!(
            start + len <= self.shape[axis],
            "narrow [{start}, {}) exceeds axis {axis} of size {}",
            start + len,
            self.shape[axis]
        );
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let d = self.shape[axis];
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = o * d * inner + start * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        let mut shape = self.shape.clone();
        shape[axis] = len;
        Tensor::from_vec(out, &shape)
    }

    /// Concatenates tensors along `axis`. All other axes must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].rank();
        crate::shape::check_axis(axis, rank);
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for ax in 0..rank {
                if ax != axis {
                    assert_eq!(
                        p.shape[ax], parts[0].shape[ax],
                        "concat shape mismatch on axis {ax}"
                    );
                }
            }
        }
        let outer: usize = parts[0].shape[..axis].iter().product();
        let inner: usize = parts[0].shape[axis + 1..].iter().product();
        let total_axis: usize = parts.iter().map(|p| p.shape[axis]).sum();
        let mut out = Vec::with_capacity(outer * total_axis * inner);
        for o in 0..outer {
            for p in parts {
                let d = p.shape[axis];
                let base = o * d * inner;
                out.extend_from_slice(&p.data[base..base + d * inner]);
            }
        }
        let mut shape = parts[0].shape.clone();
        shape[axis] = total_axis;
        Tensor::from_vec(out, &shape)
    }

    /// Zero-pads each axis by `(before, after)` amounts.
    pub fn pad(&self, pads: &[(usize, usize)]) -> Tensor {
        assert_eq!(pads.len(), self.rank(), "pad spec rank mismatch");
        let out_shape: Vec<usize> =
            self.shape.iter().zip(pads).map(|(&d, &(b, a))| d + b + a).collect();
        let mut out = vec![0.0f32; numel(&out_shape)];
        let out_strides = strides_for(&out_shape);
        let in_strides = strides_for(&self.shape);
        let rank = self.rank();
        let mut coords = vec![0usize; rank];
        for flat in 0..self.len() {
            crate::shape::unravel(flat, &self.shape, &mut coords);
            let mut o = 0usize;
            for i in 0..rank {
                o += (coords[i] + pads[i].0) * out_strides[i];
            }
            out[o] = self.data[flat];
            let _ = in_strides; // strides kept for clarity; flat already row-major
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Inverse of [`Tensor::pad`]: crops `(before, after)` from each axis.
    pub fn unpad(&self, pads: &[(usize, usize)]) -> Tensor {
        assert_eq!(pads.len(), self.rank(), "unpad spec rank mismatch");
        let mut t = self.clone();
        for (axis, &(b, a)) in pads.iter().enumerate() {
            if b == 0 && a == 0 {
                continue;
            }
            let d = t.shape[axis];
            t = t.narrow(axis, b, d - b - a);
        }
        t
    }

    /// Selects rows of axis 0 by index (gather). Indices may repeat.
    pub fn index_select0(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "index_select0 requires rank >= 1");
        let inner: usize = self.shape[1..].iter().product();
        let mut out = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            assert!(i < self.shape[0], "index {i} out of bounds for axis 0 size {}", self.shape[0]);
            out.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor::from_vec(out, &shape)
    }

    // ------------------------------------------------------------------
    // Whole-tensor statistics (used heavily by data prep / metrics)
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }

    /// Population standard deviation of all elements.
    pub fn std_all(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean_all();
        let var = self.data.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / self.len() as f32;
        var.sqrt()
    }

    /// Minimum element (`+inf` for empty tensors).
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for empty tensors).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::arange(3).as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn broadcast_add() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_col() {
        let a = t(&[1.0, 2.0], &[2, 1]);
        let b = t(&[10.0, 20.0, 30.0], &[1, 3]);
        let c = a.mul(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_slice(), &[10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn permute_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.t();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // permute rank-3
        let b = Tensor::arange(24).reshape(&[2, 3, 4]);
        let bp = b.permute(&[2, 0, 1]);
        assert_eq!(bp.shape(), &[4, 2, 3]);
        assert_eq!(bp.at(&[1, 1, 2]), b.at(&[1, 2, 1]));
    }

    #[test]
    fn narrow_and_concat_roundtrip() {
        let a = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p0 = a.narrow(1, 0, 1);
        let p1 = a.narrow(1, 1, 2);
        let back = Tensor::concat(&[&p0, &p1], 1);
        assert_eq!(back, a);
    }

    #[test]
    fn pad_unpad_roundtrip() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let p = a.pad(&[(1, 0), (2, 1)]);
        assert_eq!(p.shape(), &[3, 6]);
        assert_eq!(p.at(&[0, 0]), 0.0);
        assert_eq!(p.at(&[1, 2]), 0.0 + a.at(&[0, 0]));
        assert_eq!(p.unpad(&[(1, 0), (2, 1)]), a);
    }

    #[test]
    fn index_select_rows() {
        let a = Tensor::arange(6).reshape(&[3, 2]);
        let s = a.index_select0(&[2, 0, 2]);
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn stats() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(a.sum_all(), 10.0);
        assert_eq!(a.mean_all(), 2.5);
        assert!((a.std_all() - 1.118034).abs() < 1e-5);
        assert_eq!(a.min_all(), 1.0);
        assert_eq!(a.max_all(), 4.0);
        assert!(!a.has_non_finite());
        assert!(t(&[f32::NAN], &[1]).has_non_finite());
    }

    #[test]
    fn copy_on_write() {
        let a = Tensor::ones(&[3]);
        let mut b = a.clone();
        b.make_mut()[0] = 9.0;
        assert_eq!(a.as_slice(), &[1.0, 1.0, 1.0]);
        assert_eq!(b.as_slice(), &[9.0, 1.0, 1.0]);
    }
}
