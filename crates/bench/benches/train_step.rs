//! Training-step throughput benchmark behind `BENCH_train.json`.
//!
//! Not a criterion harness: the numbers feed an acceptance gate (see
//! README §Performance). For STGCN and Graph-WaveNet on the simulated
//! METR-LA shape (207 nodes, 12-in/12-out windows) it measures the full
//! training step — forward, backward, gradient clip, optimizer — and
//! reports three configurations per model:
//!
//! - `baseline`: the engine *before* the traffic-mem PR, measured by
//!   the pinned harness `scripts/prepr_train_step.rs` in a worktree of
//!   the pre-PR commit and passed in via `BENCH_PREPR_*` env vars
//!   (`scripts/bench_train.sh --prepr` orchestrates this). When the
//!   vars are absent, `baseline` falls back to the pool-off ablation
//!   and says so in its `kind` field.
//! - `pool_off`: the current engine with the buffer pool disabled
//!   (`TRAFFIC_MEM_CAP=0`), a fresh `Tape` per step, and the allocating
//!   reference optimizer (`Adam::step_reference`) — what recycling
//!   alone buys on top of this PR's kernels.
//! - `pooled`: the shipping configuration — buffer recycling on, one
//!   tape reused via `Tape::reset()`, fused in-place `Adam::step`.
//! - `simd_off`: the shipping configuration with every elementwise
//!   kernel forced onto the scalar fallback (`TRAFFIC_SIMD=0`
//!   equivalent) — isolates what the AVX2 kernels buy on a full step.
//!
//! Every mode section records the worker-thread count it actually ran
//! with; the pooled-vs-off speedup keys are emitted only when that
//! count is > 1 (on a single-core runner the pool is pure overhead and
//! a "speedup" below 1.0 would just restate that).
//!
//! Besides median wall-clock and thread-CPU seconds per step, each mode
//! reports fresh heap bytes per step (the `mem/bytes_allocated` counter
//! delta) and the pooled mode its steady-state `mem/pool_hit_rate`.
//!
//! Run with `scripts/bench_train.sh`, or directly:
//! `cargo bench --bench train_step` (`BENCH_SMOKE=1` for a fast CI
//! pass). Diagnostics: `BENCH_PHASES=1` prints per-phase mean times;
//! `BENCH_MATRIX=1` sweeps pool/tape-reuse/fused-optimizer combos for
//! STGCN and exits.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_core::TrainConfig;
use traffic_data::{batches, prepare, simulate, Batch, SimConfig, Task};
use traffic_models::{build_model, train_horizon, GraphContext, TrainCtx};
use traffic_nn::loss::{masked_mae, null_mask};
use traffic_nn::Adam;
use traffic_tensor::{mem, pool, simd, Tape};

struct ModeStats {
    step_secs: f64,
    cpu_step_secs: f64,
    /// Mean thread-CPU seconds per step — the insight overhead shows up
    /// only on sampled steps (1 in `insight_every`), so a median would
    /// land on an unsampled step and hide it entirely.
    mean_cpu_step_secs: f64,
    /// Within-run insight overhead (`Some` only when sampling was on):
    /// median CPU cost of sampled steps vs median of unsampled steps,
    /// amortised over the cadence. Comparing steps of the *same* run
    /// sidesteps inter-run drift on a shared box, which can exceed the
    /// effect being measured by an order of magnitude.
    insight_overhead_pct: Option<f64>,
    samples_per_sec: f64,
    bytes_per_step: f64,
    hit_rate: f64,
    /// Worker threads the pool actually used during this mode's run.
    threads: usize,
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

/// Nanoseconds this thread has actually run on a CPU
/// (`/proc/thread-self/schedstat`, field 1). Unlike wall clock this is
/// immune to scheduler steal from other tenants of the host, which on a
/// shared single-core box can swamp a 1.3× effect with ±10% noise. All
/// training work runs on the calling thread here (the worker pool only
/// engages with ≥ 2 effective threads), so thread CPU time covers the
/// whole step. Falls back to 0 where the file is absent (non-Linux);
/// the JSON then reports wall clock only.
fn thread_cpu_ns() -> u64 {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|v| v.parse().ok()))
        .unwrap_or(0)
}

/// Runs `warmup + measure` training steps over `batch_set` (cycled) and
/// times the measured window. `pooled` selects the traffic-mem
/// configuration; the arithmetic is bit-identical either way.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    model_name: &str,
    ctx: &GraphContext,
    batch_set: &[Batch],
    t_out: usize,
    cfg: &TrainConfig,
    pooled: bool,
    warmup: usize,
    measure: usize,
) -> ModeStats {
    run_matrix(
        model_name, ctx, batch_set, t_out, cfg, pooled, pooled, pooled, warmup, measure, None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_matrix(
    model_name: &str,
    ctx: &GraphContext,
    batch_set: &[Batch],
    t_out: usize,
    cfg: &TrainConfig,
    pooled: bool,
    reuse_tape: bool,
    fused: bool,
    warmup: usize,
    measure: usize,
    insight: Option<usize>,
) -> ModeStats {
    if pooled {
        mem::set_mem_cap(usize::MAX); // TRAFFIC_MEM_CAP / default
    } else {
        mem::set_mem_cap(0);
    }
    mem::trim();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut health = insight.map(traffic_core::HealthMonitor::new);
    let model = build_model(model_name, ctx, &mut rng);
    let mut opt = Adam::new(cfg.lr);
    let horizon = train_horizon(model_name, t_out);
    let mut tape = Tape::new();
    let bytes = traffic_obs::counter("mem/bytes_allocated");
    let hits = traffic_obs::counter("mem/pool_hits");
    let misses = traffic_obs::counter("mem/pool_misses");
    let mut batch_size = 0usize;
    let mut phases = [0.0f64; 4];
    let mut times = Vec::with_capacity(measure);
    let mut cpu_times = Vec::with_capacity(measure);
    let (mut b0, mut h0, mut m0) = (0u64, 0u64, 0u64);
    for step in 0..warmup + measure {
        if step == warmup {
            (b0, h0, m0) = (bytes.get(), hits.get(), misses.get());
        }
        let t_step = Instant::now();
        let cpu0 = thread_cpu_ns();
        let batch = &batch_set[step % batch_set.len()];
        batch_size = batch.x.shape()[0];
        if reuse_tape {
            tape.reset();
        } else {
            tape = Tape::new();
        }
        let x = tape.constant(batch.x.clone());
        let y_norm = batch.y_norm.narrow(1, 0, horizon);
        let y_raw = batch.y_raw.narrow(1, 0, horizon);
        let mut tctx = TrainCtx { rng: &mut rng, teacher: Some(&batch.y_norm), teacher_prob: 0.5 };
        let p0 = Instant::now();
        let pred = model.forward(&tape, x, Some(&mut tctx));
        let mask = null_mask(&y_raw, 1e-3);
        let loss = masked_mae(&tape, pred, &y_norm, &mask);
        let p1 = Instant::now();
        let grads = tape.backward(loss);
        let p2 = Instant::now();
        model.store().zero_grads();
        model.store().capture_grads(&tape, &grads);
        model.store().clip_grad_norm(cfg.grad_clip);
        let p3 = Instant::now();
        // Mirrors the trainer's insight hook exactly: COW weight
        // snapshot on sampled steps only, sampled after the optimizer.
        let prev = health.as_ref().filter(|h| h.due(step)).map(|_| model.store().snapshot());
        if fused {
            opt.step(model.store());
        } else {
            opt.step_reference(model.store());
        }
        if let (Some(prev), Some(h)) = (prev, health.as_mut()) {
            h.sample(model_name, 0, step, model.store(), &tape, &prev);
        }
        if step >= warmup {
            phases[0] += p1.duration_since(p0).as_secs_f64();
            phases[1] += p2.duration_since(p1).as_secs_f64();
            phases[2] += p3.duration_since(p2).as_secs_f64();
            phases[3] += p3.elapsed().as_secs_f64();
        }
        if step >= warmup {
            times.push(t_step.elapsed().as_secs_f64());
            cpu_times.push((thread_cpu_ns() - cpu0) as f64 * 1e-9);
        }
    }
    // Within-run overhead estimate while step index ↔ cpu time is
    // still associated (the medians below sort in place).
    let insight_overhead_pct = insight.map(|every| {
        let every = every.max(1);
        let (mut sampled, mut unsampled): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
        for (i, &cpu) in cpu_times.iter().enumerate() {
            if (warmup + i).is_multiple_of(every) {
                sampled.push(cpu);
            } else {
                unsampled.push(cpu);
            }
        }
        if sampled.is_empty() || unsampled.is_empty() {
            return 0.0; // cadence outside the measured window
        }
        let (s, u) = (median(&mut sampled), median(&mut unsampled));
        (s - u) / (every as f64 * u) * 100.0
    });
    // Median step time: robust to interference spikes from the rest of
    // the machine, which a mean over a short window is not.
    let secs = median(&mut times);
    let mean_cpu = cpu_times.iter().sum::<f64>() / cpu_times.len() as f64;
    let cpu_secs = median(&mut cpu_times);
    if std::env::var("BENCH_PHASES").map(|v| v == "1").unwrap_or(false) {
        eprintln!(
            "  phases (mean ms): fwd {:.1} bwd {:.1} clip {:.1} opt {:.1}",
            phases[0] * 1e3 / measure as f64,
            phases[1] * 1e3 / measure as f64,
            phases[2] * 1e3 / measure as f64,
            phases[3] * 1e3 / measure as f64,
        );
    }
    let (db, dh, dm) = (bytes.get() - b0, (hits.get() - h0) as f64, (misses.get() - m0) as f64);
    mem::refresh_gauges();
    mem::set_mem_cap(usize::MAX);
    ModeStats {
        step_secs: secs,
        cpu_step_secs: cpu_secs,
        mean_cpu_step_secs: mean_cpu,
        insight_overhead_pct,
        samples_per_sec: batch_size as f64 / secs,
        bytes_per_step: db as f64 / measure as f64,
        hit_rate: if dh + dm > 0.0 { dh / (dh + dm) } else { 0.0 },
        threads: pool::effective_threads(),
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    // METR-LA shape: 207 sensors, 12-step in/out windows (paper §V).
    let (nodes, batch_size, warmup, measure) = if smoke { (16, 8, 1, 2) } else { (207, 16, 3, 25) };
    pool::warmup();
    let threads = pool::num_threads();

    let mut sim = SimConfig::new("bench-train", Task::Speed, nodes, 2);
    sim.missing_rate = 0.0;
    let ds = simulate(&sim);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let cfg = TrainConfig { batch_size, ..Default::default() };
    let mut shuffle = StdRng::seed_from_u64(cfg.seed);
    let batch_set: Vec<Batch> =
        batches(&data.train, batch_size, Some(&mut shuffle)).take(8).collect();

    if std::env::var("BENCH_MATRIX").map(|v| v == "1").unwrap_or(false) {
        for (pool_on, reuse, fused) in
            [(false, false, false), (true, false, false), (true, true, false), (true, true, true)]
        {
            let s = run_matrix(
                "STGCN", &ctx, &batch_set, data.t_out, &cfg, pool_on, reuse, fused, warmup,
                measure, None,
            );
            eprintln!(
                "pool={} reuse={} fused={}: wall {:.4}s cpu {:.4}s/step ({:.0} bytes/step)",
                pool_on, reuse, fused, s.step_secs, s.cpu_step_secs, s.bytes_per_step
            );
        }
        return;
    }

    let prepr_commit = std::env::var("BENCH_PREPR_COMMIT").ok();
    let mut entries = Vec::new();
    for model_name in ["STGCN", "Graph-WaveNet"] {
        eprintln!("benchmarking {model_name} (pool-off ablation)...");
        let base = run_mode(model_name, &ctx, &batch_set, data.t_out, &cfg, false, warmup, measure);
        eprintln!("benchmarking {model_name} (simd off)...");
        simd::set_force_scalar(true);
        let simd_off =
            run_mode(model_name, &ctx, &batch_set, data.t_out, &cfg, true, warmup, measure);
        simd::set_force_scalar(false);
        eprintln!("benchmarking {model_name} (pooled, backend {})...", simd::active_backend());
        let pooled =
            run_mode(model_name, &ctx, &batch_set, data.t_out, &cfg, true, warmup, measure);
        let peak_nodes = traffic_obs::gauge("mem/tape_peak_nodes").get();
        // Pre-PR baseline measured by scripts/prepr_train_step.rs,
        // handed over as BENCH_PREPR_<MODEL>_SECS / _CPU_SECS.
        let env_key = model_name.to_uppercase().replace('-', "_");
        let prepr: Option<(f64, f64)> = match (
            std::env::var(format!("BENCH_PREPR_{env_key}_SECS")),
            std::env::var(format!("BENCH_PREPR_{env_key}_CPU_SECS")),
        ) {
            (Ok(w), Ok(c)) => w.parse().ok().zip(c.parse().ok()),
            _ => None,
        };
        let (baseline_json, base_secs) = match (&prepr, &prepr_commit) {
            (Some((w, c)), Some(commit)) => (
                format!(
                    "{{\"kind\": \"prepr\", \"commit\": \"{commit}\", \
                     \"step_secs\": {w:.6e}, \"cpu_step_secs\": {c:.6e}}}"
                ),
                *w,
            ),
            _ => (
                format!(
                    "{{\"kind\": \"pool_off_ablation\", \"step_secs\": {:.6e}, \
                     \"cpu_step_secs\": {:.6e}}}",
                    base.step_secs, base.cpu_step_secs
                ),
                base.step_secs,
            ),
        };
        // Pooled-vs-off deltas only mean something when the pool has
        // threads to spend; on a 1-thread runner they'd report the
        // pool's overhead as a sub-1.0 "speedup" (satellite fix).
        let pooled_speedups = if pooled.threads > 1 {
            format!(
                "      \"speedup_pooled_vs_baseline\": {:.3},\n\
                 \x20     \"speedup_pooled_vs_pool_off\": {:.3},\n",
                base_secs / pooled.step_secs,
                base.step_secs / pooled.step_secs,
            )
        } else {
            String::new()
        };
        entries.push(format!(
            concat!(
                "    \"{name}\": {{\n",
                "      \"baseline\": {baseline},\n",
                "      \"pool_off\": {{\"step_secs\": {bs:.6e}, \"cpu_step_secs\": {bc:.6e}, ",
                "\"samples_per_sec\": {bsp:.2}, \"bytes_allocated_per_step\": {bb:.0}, ",
                "\"threads\": {bt}}},\n",
                "      \"simd_off\": {{\"step_secs\": {ss:.6e}, \"cpu_step_secs\": {sc:.6e}, ",
                "\"samples_per_sec\": {ssp:.2}, \"threads\": {st}}},\n",
                "      \"pooled\": {{\"step_secs\": {ps:.6e}, \"cpu_step_secs\": {pc:.6e}, ",
                "\"samples_per_sec\": {psp:.2}, ",
                "\"bytes_allocated_per_step\": {pb:.0}, \"pool_hit_rate\": {hr:.4}, ",
                "\"threads\": {pt}}},\n",
                "      \"tape_peak_nodes\": {peak:.0},\n",
                "{pooled_speedups}",
                "      \"speedup_simd_vs_scalar\": {spd_simd:.3}\n",
                "    }}"
            ),
            name = model_name,
            baseline = baseline_json,
            bs = base.step_secs,
            bc = base.cpu_step_secs,
            bsp = base.samples_per_sec,
            bb = base.bytes_per_step,
            bt = base.threads,
            ss = simd_off.step_secs,
            sc = simd_off.cpu_step_secs,
            ssp = simd_off.samples_per_sec,
            st = simd_off.threads,
            ps = pooled.step_secs,
            pc = pooled.cpu_step_secs,
            psp = pooled.samples_per_sec,
            pb = pooled.bytes_per_step,
            hr = pooled.hit_rate,
            pt = pooled.threads,
            peak = peak_nodes,
            pooled_speedups = pooled_speedups,
            spd_simd = simd_off.step_secs / pooled.step_secs,
        ));
    }

    // ---- insight overhead pair (STGCN, shipping configuration) ------
    // The "on" run has a real JSONL sink installed so event building
    // and serialization are part of the measured cost, exactly as in an
    // instrumented training run. `overhead_pct` is estimated *within*
    // the on-run (median sampled-step CPU vs median unsampled-step CPU,
    // amortised over the cadence): on a shared box, run-to-run drift
    // between the off and on runs routinely exceeds a ≤2% effect, while
    // steps of the same run share whatever weather the host is having.
    // The off run is still published so the gate tracks both absolute
    // step times. The on-run measures a longer window so several
    // sampled steps land in it.
    let insight_every = if smoke { 2 } else { traffic_core::insight::DEFAULT_EVERY };
    let ins_measure = if smoke { measure } else { measure * 2 };
    eprintln!("benchmarking STGCN (insight off)...");
    let ins_off = run_matrix(
        "STGCN", &ctx, &batch_set, data.t_out, &cfg, true, true, true, warmup, measure, None,
    );
    eprintln!("benchmarking STGCN (insight every {insight_every})...");
    let sink: std::sync::Arc<dyn traffic_obs::Sink> = std::sync::Arc::new(
        traffic_obs::JsonlSink::create(std::env::temp_dir(), "bench-train-insight")
            .expect("temp dir writable"),
    );
    traffic_obs::add_sink(std::sync::Arc::clone(&sink));
    let ins_on = run_matrix(
        "STGCN",
        &ctx,
        &batch_set,
        data.t_out,
        &cfg,
        true,
        true,
        true,
        warmup,
        ins_measure,
        Some(insight_every),
    );
    traffic_obs::remove_sink(&sink);
    let overhead_pct = ins_on.insight_overhead_pct.unwrap_or(0.0);
    eprintln!(
        "insight overhead: {:.4}s -> {:.4}s mean cpu/step, within-run {overhead_pct:+.2}%",
        ins_off.mean_cpu_step_secs, ins_on.mean_cpu_step_secs
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"dataset\": {{\"nodes\": {nodes}, \"t_in\": 12, \"t_out\": 12, ",
            "\"batch_size\": {batch}}},\n",
            "  \"pool_threads\": {threads},\n",
            "  \"simd_backend\": \"{backend}\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"steps\": {{\"warmup\": {warmup}, \"measured\": {measure}}},\n",
            "  \"insight\": {{\"model\": \"STGCN\", \"every\": {every}, ",
            "\"off_step_secs\": {ioff:.6e}, \"on_step_secs\": {ion:.6e}, ",
            "\"off_cpu_step_secs\": {ioffc:.6e}, \"on_cpu_step_secs\": {ionc:.6e}, ",
            "\"overhead_pct\": {opct:.3}}},\n",
            "  \"models\": {{\n",
            "{entries}\n",
            "  }}\n",
            "}}\n"
        ),
        nodes = nodes,
        batch = batch_size,
        threads = threads,
        backend = simd::active_backend(),
        smoke = smoke,
        warmup = warmup,
        measure = measure,
        every = insight_every,
        ioff = ins_off.step_secs,
        ion = ins_on.step_secs,
        ioffc = ins_off.mean_cpu_step_secs,
        ionc = ins_on.mean_cpu_step_secs,
        opct = overhead_pct,
        entries = entries.join(",\n"),
    );
    print!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
