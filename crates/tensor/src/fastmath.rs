//! Fast scalar math kernels for elementwise activations.
//!
//! glibc's `tanhf` costs ~13 ns/element on this generation of x86 —
//! roughly 4× the price of `expf` — and the gated temporal convolutions
//! evaluate it over ~1.5 M elements per training step. [`tanh`] here
//! reformulates the function through `expf` with a small-argument
//! polynomial, keeping relative error within a few f32 ulps of libm
//! (≤ ~5e-7) while running ~4× faster.
//!
//! Determinism: the kernel is a pure function of its input bits, so
//! results are reproducible across runs and thread counts (the pool
//! on/off bit-identity guarantee is unaffected — both modes call the
//! same function).

/// Fast `tanh` accurate to a few f32 ulps everywhere.
///
/// - `|x| < 0.25`: odd Taylor polynomial in `x²` (truncation error
///   < 1e-11 relative; avoids the catastrophic cancellation the exp
///   identity suffers near zero);
/// - `0.25 ≤ |x| < 9.02`: `1 − 2/(e^{2|x|} + 1)` via `expf`;
/// - `|x| ≥ 9.02`: ±1 exactly (f32 `tanh` saturates there);
/// - NaN propagates, ±0.0 and sign are preserved via `copysign`.
#[inline]
pub fn tanh(x: f32) -> f32 {
    let ax = x.abs();
    if ax < 0.25 {
        let u = x * x;
        // tanh(x)/x = 1 - x²/3 + 2x⁴/15 - 17x⁶/315 + 62x⁸/2835 - …
        let p = 62.0 / 2835.0;
        let p = p * u - 17.0 / 315.0;
        let p = p * u + 2.0 / 15.0;
        let p = p * u - 1.0 / 3.0;
        // x·(1 + u·p) keeps ±0.0 and full precision for tiny x.
        x * (1.0 + u * p)
    } else if ax < 9.02 {
        let e = (2.0 * ax).exp();
        (1.0 - 2.0 / (e + 1.0)).copysign(x)
    } else if ax.is_nan() {
        x
    } else {
        1.0f32.copysign(x)
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})` (the same formula the tape op
/// always used, centralised here so fused kernels and the autograd op
/// stay bit-identical).
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_libm_closely() {
        // Sweep [-12, 12] densely; compare against f64 tanh.
        let mut max_rel = 0.0f64;
        for i in 0..480_000 {
            let x = (i as f32) * 5e-5 - 12.0;
            let got = tanh(x) as f64;
            let want = (x as f64).tanh();
            if want.abs() > 1e-30 {
                max_rel = max_rel.max((got - want).abs() / want.abs());
            } else {
                assert_eq!(got, want);
            }
        }
        assert!(max_rel < 6e-7, "max relative error {max_rel:.3e}");
    }

    #[test]
    fn tanh_special_values() {
        assert!(tanh(f32::NAN).is_nan());
        assert_eq!(tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(tanh(f32::INFINITY), 1.0);
        assert_eq!(tanh(f32::NEG_INFINITY), -1.0);
        assert_eq!(tanh(50.0), 1.0);
        assert_eq!(tanh(-50.0), -1.0);
        // Odd symmetry holds bitwise in every branch.
        for x in [1e-8f32, 0.1, 0.2499, 0.25, 1.0, 5.0, 9.0, 9.5] {
            assert_eq!(tanh(-x).to_bits(), (-tanh(x)).to_bits());
        }
    }

    #[test]
    fn tanh_monotone_across_branch_boundary() {
        // No discontinuity where the polynomial hands over to the exp
        // identity (0.25) or where the exp identity saturates (9.02).
        for base in [0.25f32, 9.02] {
            let lo = tanh(base * (1.0 - 1e-4));
            let hi = tanh(base * (1.0 + 1e-4));
            assert!(lo <= hi, "non-monotone at {base}: {lo} > {hi}");
            assert!((hi - lo) < 1e-3);
        }
    }
}
