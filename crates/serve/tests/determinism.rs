//! SHED/TIMEOUT decision determinism across kernel-pool thread counts.
//!
//! The deadline queue takes the clock as an explicit argument and never
//! reads it internally, so every admission decision is a pure function
//! of `(queue state, now_ns)`. This test drives one fixed virtual-clock
//! schedule — bursts past the high-water mark, dead-on-arrival
//! deadlines, deadlines that expire while queued, and normal requests —
//! through a real STGCN [`Processor`] under a 1-thread and an 8-thread
//! kernel pool, and asserts the full response stream is bit-identical:
//! the same statuses in the same order, and the same prediction bits.

use std::sync::mpsc;

use traffic_serve::{DeadlineQueue, EngineConfig, Job, Processor, ServeRequest, ServeResponse};
use traffic_tensor::pool;

const NODES: usize = 5;
const T_IN: usize = 12;

/// Deterministic per-request synthetic window on the raw speed scale.
fn window(idx: usize) -> Vec<f32> {
    (0..T_IN * NODES)
        .map(|k| 55.0 + 8.0 * (((idx * 31 + k * 7) % 97) as f32 / 97.0 - 0.5))
        .collect()
}

/// Runs the fixed schedule under `thread_cap` kernel threads and
/// returns every response in submission order.
fn run_schedule(thread_cap: usize) -> Vec<ServeResponse> {
    let _cap = pool::ThreadCapGuard::new(thread_cap);
    let cfg = EngineConfig { high_water: 4, max_batch: 3, ..Default::default() };
    let model = traffic_serve::export_fresh("STGCN", NODES, 11).instantiate().expect("instantiate");
    let mut processor = Processor::new(model, &cfg);
    let queue = DeadlineQueue::new(cfg.high_water);

    let mut rxs: Vec<mpsc::Receiver<ServeResponse>> = Vec::new();
    let mut now: u64 = 0;
    let mut idx = 0usize;
    for step in 0..30usize {
        now += 1_000;
        // Burst sizes 0..=5 so some steps push past high_water = 4.
        for b in 0..(step * 7 + 3) % 6 {
            let deadline_ns = match (step + b) % 5 {
                0 => now,         // dead on arrival
                1 => now + 1_500, // expires before the next drain
                _ => u64::MAX,
            };
            let (tx, rx) = mpsc::channel();
            let req =
                ServeRequest { window: window(idx), tod: (idx % 288) as f32 / 288.0, deadline_ns };
            queue.submit(Job { req, submit_ns: now, reply: tx }, now);
            rxs.push(rx);
            idx += 1;
        }
        // Drain on every third step, after the clock has moved past the
        // short deadlines admitted above.
        if step % 3 == 2 {
            now += 2_000;
            loop {
                let jobs = queue.pop_batch(now, cfg.max_batch, None);
                if jobs.is_empty() {
                    break;
                }
                processor.process_batch(jobs);
            }
        }
    }
    // Final drain so every admitted job gets its answer.
    now += 10_000;
    loop {
        let jobs = queue.pop_batch(now, cfg.max_batch, None);
        if jobs.is_empty() {
            break;
        }
        processor.process_batch(jobs);
    }
    rxs.into_iter().map(|rx| rx.recv().expect("every request must be answered")).collect()
}

/// (status, payload bits) per response — exact, not approximate.
fn fingerprint(responses: &[ServeResponse]) -> Vec<(&'static str, Vec<u32>)> {
    responses
        .iter()
        .map(|r| {
            let bits = match r {
                ServeResponse::Ok(v) | ServeResponse::Degraded(v) => {
                    v.iter().map(|f| f.to_bits()).collect()
                }
                _ => Vec::new(),
            };
            (r.status(), bits)
        })
        .collect()
}

#[test]
fn shed_and_timeout_decisions_are_identical_across_thread_counts() {
    let serial = run_schedule(1);
    let pooled = run_schedule(8);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&pooled),
        "the response stream must be bit-identical with 1 vs 8 kernel threads"
    );
    // The schedule must actually exercise every decision path, or the
    // equality above proves nothing.
    for status in ["OK", "SHED", "TIMEOUT"] {
        assert!(
            serial.iter().any(|r| r.status() == status),
            "schedule never produced a {status} response"
        );
    }
    assert!(
        serial.iter().all(|r| match r {
            ServeResponse::Ok(v) => v.iter().all(|f| f.is_finite()),
            _ => true,
        }),
        "all served predictions must be finite"
    );
}
