#!/usr/bin/env bash
# Regenerates BENCH_train.json at the workspace root: full training-step
# throughput (forward + backward + clip + Adam) for STGCN and
# Graph-WaveNet on the simulated METR-LA shape.
#
# Two comparisons are reported per model:
#   - baseline (pre-PR): the engine as it existed before the
#     traffic-mem PR, measured from a detached worktree of
#     $PREPR_COMMIT with the pinned harness scripts/prepr_train_step.rs
#     (--prepr, or reuse previously exported BENCH_PREPR_* env vars);
#   - pool_off (ablation): the current engine with the buffer pool
#     disabled, a fresh tape per step, and the reference optimizer —
#     isolates what recycling alone buys on today's kernels.
#
# Usage:
#   scripts/bench_train.sh --prepr         # full run incl. pre-PR baseline
#   scripts/bench_train.sh                 # full run (reuses BENCH_PREPR_* if set)
#   BENCH_SMOKE=1 scripts/bench_train.sh   # fast CI smoke pass
#
# TRAFFIC_THREADS caps the worker pool (default: all available cores),
# e.g.:
#   TRAFFIC_THREADS=8 scripts/bench_train.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Default to every available core explicitly, so the JSON's per-section
# "threads" fields reflect a deliberate choice rather than whatever the
# environment happened to leak in. Pooled-vs-off speedup keys are only
# emitted when this ends up > 1.
export TRAFFIC_THREADS="${TRAFFIC_THREADS:-$(nproc)}"

# The commit immediately before the traffic-mem PR landed.
PREPR_COMMIT="${PREPR_COMMIT:-1d50a57df84b60f70210be0b68d8bb5097a7827c}"

if [[ "${1:-}" == "--prepr" ]]; then
  WT=.bench-prepr
  if [[ ! -d "$WT" ]]; then
    git worktree add --detach "$WT" "$PREPR_COMMIT"
  fi
  cp scripts/prepr_train_step.rs "$WT/crates/bench/benches/"
  if ! grep -q 'name = "prepr_train_step"' "$WT/crates/bench/Cargo.toml"; then
    printf '\n[[bench]]\nname = "prepr_train_step"\nharness = false\n' \
      >> "$WT/crates/bench/Cargo.toml"
  fi
  echo "measuring pre-PR baseline at $PREPR_COMMIT..."
  out=$(cd "$WT" && cargo bench -p traffic-bench --bench prepr_train_step 2>/dev/null \
        | grep '^PREPR ')
  echo "$out"
  export BENCH_PREPR_COMMIT="$PREPR_COMMIT"
  export BENCH_PREPR_STGCN_SECS=$(echo "$out" | awk '$2 == "STGCN" {print $3}')
  export BENCH_PREPR_STGCN_CPU_SECS=$(echo "$out" | awk '$2 == "STGCN" {print $4}')
  export BENCH_PREPR_GRAPH_WAVENET_SECS=$(echo "$out" | awk '$2 == "Graph-WaveNet" {print $3}')
  export BENCH_PREPR_GRAPH_WAVENET_CPU_SECS=$(echo "$out" | awk '$2 == "Graph-WaveNet" {print $4}')
fi

cargo bench -p traffic-bench --bench train_step
echo
echo "--- BENCH_train.json ---"
cat BENCH_train.json
