//! Zero-allocation gate for the insight hot path: with telemetry off
//! (the default), the per-step work the trainer adds — one `Option`
//! check, the cadence test, pre-resolved metric handles, and a lazily
//! built event behind `emit_with` with no sink installed — must not
//! allocate. Same counting-allocator idiom as the profiler gate in
//! `crates/obs/tests/profile_alloc.rs`; one `#[test]` because the
//! counter is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static A: Counting = Counting;

use traffic_core::HealthMonitor;
use traffic_obs::{emit_with, gauge, histogram, Event};

#[test]
fn disabled_insight_hot_path_is_allocation_free() {
    // Warm up lazy statics outside the measured window: the metrics
    // registry interns both handles on first resolution (that's why the
    // trainer hoists them out of the step loop), and the sink registry
    // initializes on the first emit.
    let grad_gauge = gauge("train.grad_norm");
    let grad_hist = histogram("train.grad_norm");
    emit_with(|| Event::new("warmup"));

    // TRAFFIC_INSIGHT unset / insight_every Some(0): the trainer holds
    // `None` and the whole feature is one discriminant check per step.
    let health: Option<HealthMonitor> = None;

    let before = ALLOCS.load(Ordering::Relaxed);
    for step in 0..10_000usize {
        let prev = health.as_ref().filter(|h| h.due(step)).map(|_| unreachable!() as ());
        assert!(prev.is_none());
        grad_gauge.set(step as f64);
        grad_hist.record(step as f64);
        // No sink installed → the closure must never run, so the Event
        // (which would allocate) is never built.
        emit_with(|| {
            ALLOCS.fetch_add(1_000_000, Ordering::Relaxed);
            Event::new("insight").with("step", step as u64)
        });
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled insight path must not allocate");

    // Sanity: the monitor itself stays cheap on off-cadence steps too.
    let monitor = HealthMonitor::new(10);
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut due = 0usize;
    for step in 0..10_000usize {
        if monitor.due(step) {
            due += 1;
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "cadence checks must not allocate");
    assert_eq!(due, 1000);
}
