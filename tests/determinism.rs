//! Thread-count determinism: the compute pool splits only output ranges
//! (never the reduction axis), so training must produce bit-identical
//! losses no matter how many workers run. `TRAFFIC_THREADS=1` vs
//! `TRAFFIC_THREADS=8` is exercised here via the equivalent
//! [`pool::set_thread_cap`] override, which both runs in one process.

use traffic_suite::core::{train, TrainConfig};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::tensor::pool;

fn stgcn_losses(thread_cap: usize) -> Vec<u32> {
    pool::set_thread_cap(thread_cap);
    pool::warmup();
    let mut cfg = SimConfig::new("determinism", Task::Speed, 8, 5);
    cfg.missing_rate = 0.0;
    let ds = simulate(&cfg);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let model = build_model("STGCN", &ctx, &mut rng);
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        max_batches_per_epoch: Some(8),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &train_cfg);
    // Compare exact bit patterns, not approximate values.
    report.epoch_losses.iter().map(|l| l.to_bits()).collect()
}

#[test]
fn stgcn_losses_identical_across_thread_counts() {
    let serial = stgcn_losses(1);
    let pooled = stgcn_losses(8);
    pool::set_thread_cap(usize::MAX);
    assert_eq!(serial, pooled, "2-epoch STGCN losses must be bit-identical with 1 vs 8 threads");
}
