//! Concrete RNGs: xoshiro256++ behind the `StdRng`/`SmallRng` names.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — fast, 256-bit state, passes BigCrush; more than enough
/// for simulation and weight init. Not cryptographic.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// The full 256-bit internal state, for checkpointing. Restoring via
    /// [`Xoshiro256PlusPlus::from_state`] resumes the stream exactly
    /// where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds an RNG from a state captured with
    /// [`Xoshiro256PlusPlus::state`]. An all-zero state is a fixed point
    /// of the generator and is nudged the same way `from_seed` does.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed([0; 32]);
        }
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        // an all-zero state is a fixed point; nudge it
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Xoshiro256PlusPlus { s }
    }
}

/// The workspace's standard seedable RNG.
pub type StdRng = Xoshiro256PlusPlus;

/// Small fast RNG (same generator here).
pub type SmallRng = Xoshiro256PlusPlus;
