//! Fast scalar math kernels for elementwise activations.
//!
//! glibc's `tanhf` costs ~13 ns/element on this generation of x86 —
//! roughly 4× the price of `expf` — and the gated temporal convolutions
//! evaluate it over ~1.5 M elements per training step. The kernels here
//! reformulate `tanh` and the logistic sigmoid through a private
//! polynomial [`exp`], keeping relative error within a few f32 ulps of
//! libm (≤ ~6e-7 against an f64 reference) while running several times
//! faster.
//!
//! **SIMD contract.** Every kernel in this module is written as
//! straight-line arithmetic over operations that have exact 8-lane
//! AVX2 counterparts — add/sub/mul/div (correctly rounded), `floor`,
//! compare-and-select, and sign-bit manipulation — with no calls into
//! libm and no `mul_add` (FP contraction would differ between lanes
//! and scalar code on targets without hardware FMA). The vectorized
//! rails in [`crate::simd`] are 1:1 transliterations, so for every
//! input bit pattern the SIMD result is **bit-identical** to the
//! scalar result. Proptests in `tests/simd_proptest.rs` pin this.
//!
//! Determinism: each kernel is a pure function of its input bits, so
//! results are reproducible across runs, thread counts, and the
//! SIMD-on/off dispatch (the pool and SIMD bit-identity guarantees
//! compose — both paths perform the same arithmetic).

/// Above this, [`exp`] returns `+inf` (the scale step would need
/// `2^128`). `127.5 · ln 2 ≈ 88.376`; true `exp` stays finite up to
/// 88.722, so the kernel saturates a hair early — irrelevant for the
/// activation rails, which feed it `|x| ≤ 18.04`.
pub const EXP_HI: f32 = 88.37;
/// Below this, [`exp`] returns `0.0` (the result would be denormal).
pub const EXP_LO: f32 = -87.33;

/// `log2(e)`, the range-reduction multiplier.
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// `ln 2` split Cody–Waite style so `x − k·ln2` is computed without
/// cancellation error: `LN2_HI` has an exact short mantissa (the full
/// decimal is kept on purpose — it documents that the value is exactly
/// representable).
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;

// Degree-5 minimax coefficients for `e^r − 1 − r` on
// `r ∈ [−ln2/2, ln2/2]` (Cephes `expf` constants). `pub` so
// `crate::simd` transliterates the polynomial with identical bits.
pub const EXP_C0: f32 = 1.987_569_1e-4;
pub const EXP_C1: f32 = 1.398_199_9e-3;
pub const EXP_C2: f32 = 8.333_452e-3;
pub const EXP_C3: f32 = 4.166_579_6e-2;
pub const EXP_C4: f32 = 1.666_666_5e-1;
// Cephes prints 5.0000001201e-1; the nearest f32 is exactly 0.5. The
// original digits are kept for provenance.
#[allow(clippy::excessive_precision)]
pub const EXP_C5: f32 = 5.000_000_2e-1;

/// Fast `e^x` accurate to ~2 f32 ulps on `[EXP_LO, EXP_HI]`.
///
/// Range reduction `x = k·ln2 + r` (round-to-nearest `k`, Cody–Waite
/// subtraction), degree-6 polynomial for `e^r`, exponent insertion for
/// `2^k`. Out-of-range inputs saturate to `+inf` / `0.0`; NaN
/// propagates. Every step maps 1:1 onto AVX2 ops — see the module doc.
#[inline]
pub fn exp(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_HI {
        return f32::INFINITY;
    }
    if x < EXP_LO {
        return 0.0;
    }
    // k = round(x / ln2), as a float (exact integer value).
    let kf = (x * LOG2E + 0.5).floor();
    // r = x − k·ln2 without cancellation.
    let r = x - kf * LN2_HI;
    let r = r - kf * LN2_LO;
    // e^r = 1 + r + r²·p(r).
    let p = EXP_C0;
    let p = p * r + EXP_C1;
    let p = p * r + EXP_C2;
    let p = p * r + EXP_C3;
    let p = p * r + EXP_C4;
    let p = p * r + EXP_C5;
    let p = (p * r) * r + r + 1.0;
    // 2^k by direct exponent-field construction; k ∈ [−126, 127] here.
    let two_k = f32::from_bits(((kf as i32 + 127) as u32) << 23);
    p * two_k
}

/// Fast `tanh` accurate to a few f32 ulps everywhere.
///
/// - `|x| < 0.25`: odd Taylor polynomial in `x²` (truncation error
///   < 1e-11 relative; avoids the catastrophic cancellation the exp
///   identity suffers near zero);
/// - `0.25 ≤ |x| < 9.02`: `1 − 2/(e^{2|x|} + 1)` via [`exp`];
/// - `|x| ≥ 9.02`: ±1 exactly (f32 `tanh` saturates there);
/// - NaN propagates, ±0.0 and sign are preserved via `copysign`.
#[inline]
pub fn tanh(x: f32) -> f32 {
    let ax = x.abs();
    if ax < 0.25 {
        let u = x * x;
        // tanh(x)/x = 1 - x²/3 + 2x⁴/15 - 17x⁶/315 + 62x⁸/2835 - …
        let p = 62.0 / 2835.0;
        let p = p * u - 17.0 / 315.0;
        let p = p * u + 2.0 / 15.0;
        let p = p * u - 1.0 / 3.0;
        // x·(1 + u·p) keeps ±0.0 and full precision for tiny x.
        x * (1.0 + u * p)
    } else if ax < 9.02 {
        let e = exp(2.0 * ax);
        (1.0 - 2.0 / (e + 1.0)).copysign(x)
    } else if ax.is_nan() {
        x
    } else {
        1.0f32.copysign(x)
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})` via [`exp`] (the fused kernels
/// and the autograd op share this exact function, so every rail stays
/// bit-identical). `σ(−∞) = 0`, `σ(+∞) = 1`, NaN propagates.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp(-x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_libm_closely() {
        let mut max_rel = 0.0f64;
        for i in 0..350_000 {
            let x = (i as f32) * 5e-4 - 87.0;
            let got = exp(x) as f64;
            let want = (x as f64).exp();
            max_rel = max_rel.max((got - want).abs() / want);
        }
        assert!(max_rel < 3e-7, "max relative error {max_rel:.3e}");
    }

    #[test]
    fn exp_special_values() {
        assert!(exp(f32::NAN).is_nan());
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(f32::INFINITY), f32::INFINITY);
        assert_eq!(exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp(200.0), f32::INFINITY);
        assert_eq!(exp(-200.0), 0.0);
        // Saturation boundaries are monotone: finite just inside,
        // saturated just outside.
        assert!(exp(EXP_HI).is_finite());
        assert!(exp(EXP_HI) < exp(EXP_HI + 0.1));
        assert!(exp(EXP_LO) > 0.0);
        assert_eq!(exp(EXP_LO - 0.1), 0.0);
    }

    #[test]
    fn tanh_matches_libm_closely() {
        // Sweep [-12, 12] densely; compare against f64 tanh.
        let mut max_rel = 0.0f64;
        for i in 0..480_000 {
            let x = (i as f32) * 5e-5 - 12.0;
            let got = tanh(x) as f64;
            let want = (x as f64).tanh();
            if want.abs() > 1e-30 {
                max_rel = max_rel.max((got - want).abs() / want.abs());
            } else {
                assert_eq!(got, want);
            }
        }
        assert!(max_rel < 6e-7, "max relative error {max_rel:.3e}");
    }

    #[test]
    fn tanh_special_values() {
        assert!(tanh(f32::NAN).is_nan());
        assert_eq!(tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(tanh(f32::INFINITY), 1.0);
        assert_eq!(tanh(f32::NEG_INFINITY), -1.0);
        assert_eq!(tanh(50.0), 1.0);
        assert_eq!(tanh(-50.0), -1.0);
        // Odd symmetry holds bitwise in every branch.
        for x in [1e-8f32, 0.1, 0.2499, 0.25, 1.0, 5.0, 9.0, 9.5] {
            assert_eq!(tanh(-x).to_bits(), (-tanh(x)).to_bits());
        }
    }

    #[test]
    fn tanh_monotone_across_branch_boundary() {
        // No discontinuity where the polynomial hands over to the exp
        // identity (0.25) or where the exp identity saturates (9.02).
        for base in [0.25f32, 9.02] {
            let lo = tanh(base * (1.0 - 1e-4));
            let hi = tanh(base * (1.0 + 1e-4));
            assert!(lo <= hi, "non-monotone at {base}: {lo} > {hi}");
            assert!((hi - lo) < 1e-3);
        }
    }

    #[test]
    fn sigmoid_matches_reference_closely() {
        // Sweep [-30, 30] densely; compare against the f64 logistic.
        let mut max_rel = 0.0f64;
        for i in 0..600_000 {
            let x = (i as f32) * 1e-4 - 30.0;
            let got = sigmoid(x) as f64;
            let want = 1.0 / (1.0 + (-(x as f64)).exp());
            max_rel = max_rel.max((got - want).abs() / want);
        }
        assert!(max_rel < 6e-7, "max relative error {max_rel:.3e}");
    }

    #[test]
    fn sigmoid_special_values() {
        assert!(sigmoid(f32::NAN).is_nan());
        assert_eq!(sigmoid(0.0), 0.5);
        assert_eq!(sigmoid(f32::INFINITY), 1.0);
        assert_eq!(sigmoid(f32::NEG_INFINITY), 0.0);
        // Saturates exactly at the exp clamp, not before the extremes.
        assert_eq!(sigmoid(100.0), 1.0);
        assert_eq!(sigmoid(-100.0), 0.0);
        assert!(sigmoid(-80.0) > 0.0, "no premature underflow to 0");
        assert!(sigmoid(15.0) < 1.0, "σ(15) is still below 1 in f32");
    }

    #[test]
    fn sigmoid_monotone_and_bounded() {
        // Mirrors the tanh boundary test: non-decreasing across the exp
        // kernel's round-to-nearest-k seams and everywhere else, within
        // [0, 1], on a dense sweep.
        let mut prev = 0.0f32;
        for i in 0..120_000 {
            let x = (i as f32) * 5e-4 - 30.0;
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s), "σ({x}) = {s} out of [0,1]");
            // Allow a ≤2-ulp wobble at polynomial seams.
            assert!(s >= prev - prev * 3e-7, "σ not monotone at {x}: {s} < {prev}");
            prev = prev.max(s);
        }
    }

    #[test]
    fn sigmoid_branch_boundaries() {
        // The underlying exp switches k at odd multiples of ln2/2; spot
        // check continuity around several seams.
        for base in [0.3466f32, 1.0397, 5.0, 9.02] {
            for sign in [1.0f32, -1.0] {
                let b = base * sign;
                let lo = sigmoid(b - 1e-4);
                let hi = sigmoid(b + 1e-4);
                assert!((hi - lo).abs() < 1e-3, "jump at {b}: {lo} vs {hi}");
            }
        }
    }
}
