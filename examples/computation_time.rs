//! Table III: training time per epoch, inference time, and parameter
//! counts for all eight models on (simulated) METR-LA.
//!
//! ```text
//! cargo run --release --example computation_time [-- --scale smoke|quick]
//! ```

use traffic_suite::core::{computation_time, render_table3, table3_csv_rows, write_csv};
use traffic_suite::models::ALL_MODELS;
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!(
        "== Table III: computation time on METR-LA ({:.0}% scale, {} epochs) ==\n",
        scale.dataset_scale * 100.0,
        scale.epochs
    );
    let rows = computation_time(&ALL_MODELS, &scale);
    print!("{}", render_table3(&rows));
    println!("\nPaper shape checks:");
    let find = |n: &str| rows.iter().find(|r| r.model == n).expect("row");
    let stgcn = find("STGCN");
    let gwn = find("Graph-WaveNet");
    println!(
        "  STGCN fastest training? train/epoch {:.2}s (min of all: {:.2}s)",
        stgcn.train_time_per_epoch.as_secs_f64(),
        rows.iter().map(|r| r.train_time_per_epoch.as_secs_f64()).fold(f64::INFINITY, f64::min)
    );
    println!(
        "  Graph-WaveNet fastest inference? {:.2}s (min of all: {:.2}s)",
        gwn.inference_time.as_secs_f64(),
        rows.iter().map(|r| r.inference_time.as_secs_f64()).fold(f64::INFINITY, f64::min)
    );
    let max_params = rows.iter().max_by_key(|r| r.params).expect("rows");
    println!("  Largest model: {} ({}k params)", max_params.model, max_params.params / 1000);
    let (headers, csv) = table3_csv_rows(&rows);
    let out = std::path::Path::new("reports/table3_computation_time.csv");
    match write_csv(out, &headers, &csv) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
