//! Disk persistence: save/load datasets as CSV so results can be plotted
//! or compared outside this crate, and simulations can be cached.
//!
//! Format (`<name>.csv`):
//! ```text
//! # name=<name> task=<speed|flow> weekends=<0|1> nodes=<N>
//! step,node0,node1,...
//! 0,62.1,58.3,...
//! ```
//! The road network is stored alongside as `<name>.graph.csv` with one
//! `from,to,distance_km` edge per line after a sensor block.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use traffic_graph::RoadNetwork;
use traffic_tensor::Tensor;

use crate::catalog::Task;
use crate::dataset::TrafficDataset;

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file did not match the expected format.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes the dataset's values and network to `dir` as
/// `<name>.csv` + `<name>.graph.csv`. Returns the value-file path.
pub fn save_dataset(dataset: &TrafficDataset, dir: &Path) -> Result<std::path::PathBuf, IoError> {
    fs::create_dir_all(dir)?;
    let stem = dataset.name.replace(['/', ' '], "_");
    let values_path = dir.join(format!("{stem}.csv"));
    let graph_path = dir.join(format!("{stem}.graph.csv"));

    let mut f = fs::File::create(&values_path)?;
    writeln!(
        f,
        "# name={} task={} weekends={} nodes={}",
        dataset.name,
        dataset.task,
        u8::from(dataset.includes_weekends),
        dataset.num_nodes()
    )?;
    let n = dataset.num_nodes();
    let header: Vec<String> = (0..n).map(|i| format!("node{i}")).collect();
    writeln!(f, "step,{}", header.join(","))?;
    let data = dataset.values.as_slice();
    for t in 0..dataset.num_steps() {
        let row: Vec<String> = (0..n).map(|i| format!("{}", data[t * n + i])).collect();
        writeln!(f, "{t},{}", row.join(","))?;
    }

    let mut g = fs::File::create(&graph_path)?;
    writeln!(g, "# sensors id,x,y then edges from,to,distance_km")?;
    writeln!(g, "[sensors]")?;
    for s in dataset.network.sensors() {
        writeln!(g, "{},{},{}", s.id, s.x, s.y)?;
    }
    writeln!(g, "[edges]")?;
    for e in dataset.network.edges() {
        writeln!(g, "{},{},{}", e.from, e.to, e.distance_km)?;
    }
    Ok(values_path)
}

/// Loads a dataset previously written by [`save_dataset`].
pub fn load_dataset(values_path: &Path) -> Result<TrafficDataset, IoError> {
    let f = fs::File::open(values_path)?;
    let mut lines = BufReader::new(f).lines();
    let meta = lines.next().ok_or_else(|| IoError::Format("empty file".into()))??;
    if !meta.starts_with("# ") {
        return Err(IoError::Format("missing metadata line".into()));
    }
    let mut name = String::new();
    let mut task = Task::Speed;
    let mut weekends = true;
    let mut nodes = 0usize;
    for kv in meta.trim_start_matches("# ").split_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| IoError::Format(format!("bad metadata entry {kv}")))?;
        match k {
            "name" => name = v.to_string(),
            "task" => {
                task = match v {
                    "speed" => Task::Speed,
                    "flow" => Task::Flow,
                    other => return Err(IoError::Format(format!("unknown task {other}"))),
                }
            }
            "weekends" => weekends = v == "1",
            "nodes" => {
                nodes = v.parse().map_err(|_| IoError::Format(format!("bad node count {v}")))?
            }
            _ => {}
        }
    }
    let _header = lines.next().ok_or_else(|| IoError::Format("missing header".into()))??;
    let mut values = Vec::new();
    let mut steps = 0usize;
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split(',');
        let _step = cols.next();
        for c in cols {
            values.push(c.parse::<f32>().map_err(|_| IoError::Format(format!("bad value {c}")))?);
        }
        steps += 1;
    }
    if nodes == 0 || values.len() != steps * nodes {
        return Err(IoError::Format(format!(
            "value count {} does not match {steps} steps × {nodes} nodes",
            values.len()
        )));
    }
    // Network sidecar.
    let graph_path = values_path.with_extension("").with_extension("graph.csv");
    let network = if graph_path.exists() {
        load_network(&graph_path)?
    } else {
        // Degenerate fallback: isolated sensors on a line.
        let mut net = RoadNetwork::new();
        for i in 0..nodes {
            net.add_sensor(i as u32, i as f64, 0.0);
        }
        net
    };
    Ok(TrafficDataset {
        name,
        task,
        network,
        values: Tensor::from_vec(values, &[steps, nodes]),
        includes_weekends: weekends,
    })
}

fn load_network(path: &Path) -> Result<RoadNetwork, IoError> {
    let f = fs::File::open(path)?;
    let mut net = RoadNetwork::new();
    let mut in_edges = false;
    for line in BufReader::new(f).lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[sensors]" => in_edges = false,
            "[edges]" => in_edges = true,
            _ => {
                let cols: Vec<&str> = line.split(',').collect();
                if cols.len() != 3 {
                    return Err(IoError::Format(format!("bad graph line: {line}")));
                }
                if in_edges {
                    let from = cols[0].parse().map_err(|_| IoError::Format(line.into()))?;
                    let to = cols[1].parse().map_err(|_| IoError::Format(line.into()))?;
                    let d = cols[2].parse().map_err(|_| IoError::Format(line.into()))?;
                    net.add_edge(from, to, d);
                } else {
                    let id = cols[0].parse().map_err(|_| IoError::Format(line.into()))?;
                    let x = cols[1].parse().map_err(|_| IoError::Format(line.into()))?;
                    let y = cols[2].parse().map_err(|_| IoError::Format(line.into()))?;
                    net.add_sensor(id, x, y);
                }
            }
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate, SimConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("traffic_io_{tag}_{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = simulate(&SimConfig::new("rt", Task::Speed, 5, 4));
        let dir = tmpdir("roundtrip");
        let path = save_dataset(&ds, &dir).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.task, ds.task);
        assert_eq!(back.includes_weekends, ds.includes_weekends);
        assert_eq!(back.num_nodes(), ds.num_nodes());
        assert_eq!(back.num_steps(), ds.num_steps());
        for (a, b) in back.values.as_slice().iter().zip(ds.values.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(back.network.num_edges(), ds.network.num_edges());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flow_task_roundtrip() {
        let ds = simulate(&SimConfig::new("flowrt", Task::Flow, 4, 4));
        let dir = tmpdir("flow");
        let path = save_dataset(&ds, &dir).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.task, Task::Flow);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = tmpdir("garbage");
        let p = dir.join("bad.csv");
        fs::write(&p, "not a dataset\n1,2,3\n").unwrap();
        assert!(load_dataset(&p).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_inconsistent_counts() {
        let dir = tmpdir("counts");
        let p = dir.join("bad.csv");
        fs::write(&p, "# name=x task=speed weekends=1 nodes=3\nstep,a,b,c\n0,1,2\n").unwrap();
        assert!(matches!(load_dataset(&p), Err(IoError::Format(_))));
        fs::remove_dir_all(&dir).ok();
    }
}
