//! STG2Seq (Bai et al., IJCAI 2019): a purely graph-convolutional
//! sequence-to-sequence model. Gated graph convolution modules (GGCMs)
//! convolve short temporal slices of the history through the road graph; a
//! long-term encoder covers the whole window, a short-term encoder the most
//! recent steps, and an attention-based output module emits every horizon.

use rand::rngs::StdRng;
use traffic_nn::{DenseGraphConv, Linear, Param, ParamStore};
use traffic_tensor::{init, Tape, Var};

use crate::common::{GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// STG2Seq hyper-parameters.
#[derive(Debug, Clone)]
pub struct Stg2SeqConfig {
    /// Feature width inside GGCMs.
    pub channels: usize,
    /// Temporal slice length each GGCM sees.
    pub slice: usize,
    /// GGCMs in the long-term encoder.
    pub long_layers: usize,
    /// Steps covered by the short-term encoder.
    pub short_window: usize,
    /// Horizons / features.
    pub t_in: usize,
    pub t_out: usize,
    pub in_features: usize,
}

impl Default for Stg2SeqConfig {
    fn default() -> Self {
        Stg2SeqConfig {
            channels: 32,
            slice: 3,
            long_layers: 2,
            short_window: 4,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

/// Gated graph convolution module: slices `slice` consecutive steps into
/// the feature axis, graph-convolves, and applies GLU gating. Keeps the
/// time length via causal padding.
struct Ggcm {
    conv: DenseGraphConv,
    slice: usize,
    f_in: usize,
    f_out: usize,
}

impl Ggcm {
    fn new(
        store: &mut ParamStore,
        prefix: &str,
        ctx: &GraphContext,
        slice: usize,
        f_in: usize,
        f_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        let conv = DenseGraphConv::new(
            store,
            prefix,
            ctx.row_norm_adj.clone(),
            slice * f_in,
            2 * f_out, // GLU halves
            rng,
        );
        Ggcm { conv, slice, f_in, f_out }
    }

    /// `[B, T, N, F_in] -> [B, T, N, F_out]`.
    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let (b, t, n, f) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(f, self.f_in);
        // Causal pad along time so slice windows exist for every t.
        let padded = x.pad(&[(0, 0), (self.slice - 1, 0), (0, 0), (0, 0)]);
        // Window t covers padded[t .. t+slice]; concat along features.
        let slices: Vec<Var<'t>> = (0..self.slice).map(|s| padded.narrow(1, s, t)).collect();
        let stacked = Var::concat(&slices, 3); // [B, T, N, slice·F]
        let flat = stacked.reshape(&[b * t, n, self.slice * f]);
        let conv = self.conv.forward(tape, flat); // [B·T, N, 2F_out]
        let a = conv.narrow(2, 0, self.f_out);
        let g = conv.narrow(2, self.f_out, self.f_out).sigmoid();
        a.mul(&g).reshape(&[b, t, n, self.f_out])
    }
}

/// The STG2Seq model.
pub struct Stg2Seq {
    store: ParamStore,
    long: Vec<Ggcm>,
    short: Ggcm,
    /// Learned per-horizon attention queries `[T_out, F]`.
    queries: Param,
    key_proj: Linear,
    out_proj: Linear,
    cfg: Stg2SeqConfig,
}

impl Stg2Seq {
    /// Builds STG2Seq for a graph context.
    pub fn new(ctx: &GraphContext, cfg: Stg2SeqConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let mut long = Vec::new();
        let mut f_in = cfg.in_features;
        for i in 0..cfg.long_layers {
            long.push(Ggcm::new(
                &mut store,
                &format!("long{i}"),
                ctx,
                cfg.slice,
                f_in,
                cfg.channels,
                rng,
            ));
            f_in = cfg.channels;
        }
        let short =
            Ggcm::new(&mut store, "short", ctx, cfg.slice, cfg.in_features, cfg.channels, rng);
        let queries = store.add("queries", init::xavier_uniform(&[cfg.t_out, cfg.channels], rng));
        let key_proj = Linear::new(&mut store, "key_proj", cfg.channels, cfg.channels, false, rng);
        let out_proj = Linear::new(&mut store, "out_proj", cfg.channels, 1, true, rng);
        Stg2Seq { store, long, short, queries, key_proj, out_proj, cfg }
    }
}

impl TrafficModel for Stg2Seq {
    fn name(&self) -> &'static str {
        "STG2Seq"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("STG2Seq").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, train: Option<&mut TrainCtx<'_>>) -> Var<'t> {
        let _ = train;
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        assert_eq!(t, self.cfg.t_in);
        // Long-term encoder over the whole window.
        let mut hl = x;
        for layer in &self.long {
            hl = layer.forward(tape, hl);
        }
        // Short-term encoder over the most recent steps.
        let sw = self.cfg.short_window;
        let recent = x.narrow(1, t - sw, sw);
        let hs = self.short.forward(tape, recent);
        // Concatenate along time: [B, T + SW, N, F].
        let enc = Var::concat(&[hl, hs], 1);
        let lt = t + sw;
        let f = self.cfg.channels;
        // Attention output: per horizon τ, softmax over encoder time.
        // keys: [B, N, LT, F]
        let keys = self.key_proj.forward(tape, enc).permute(&[0, 2, 1, 3]); // [B, N, LT, F]
        let vals = enc.permute(&[0, 2, 1, 3]); // [B, N, LT, F]
        let q = self.queries.var(tape).reshape(&[1, 1, self.cfg.t_out, f]);
        let scale = 1.0 / (f as f32).sqrt();
        let scores = q.matmul(&keys.t()).mul_scalar(scale); // [B, N, T_out, LT]
        let alpha = scores.softmax(3);
        let ctx_vec = alpha.matmul(&vals); // [B, N, T_out, F]
        let y = self.out_proj.forward(tape, ctx_vec); // [B, N, T_out, 1]
        let _ = lt;
        y.reshape(&[b, n, self.cfg.t_out]).permute(&[0, 2, 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;
    use traffic_tensor::Tensor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(10);
        let net = freeway_corridor(6, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn forward_shape() {
        let (ctx, mut rng) = setup();
        let model = Stg2Seq::new(&ctx, Stg2SeqConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 6, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 6]);
    }

    #[test]
    fn ggcm_preserves_time_length() {
        let (ctx, mut rng) = setup();
        let mut store = ParamStore::new();
        let ggcm = Ggcm::new(&mut store, "g", &ctx, 3, 2, 5, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 7, 6, 2]));
        let y = ggcm.forward(&tape, x);
        assert_eq!(y.shape(), vec![2, 7, 6, 5]);
    }

    #[test]
    fn ggcm_is_causal() {
        // Changing a later time step must not affect earlier outputs.
        let (ctx, mut rng) = setup();
        let mut store = ParamStore::new();
        let ggcm = Ggcm::new(&mut store, "g", &ctx, 3, 1, 4, &mut rng);
        let tape = Tape::new();
        let base = Tensor::zeros(&[1, 6, 6, 1]);
        let mut bumped = base.clone();
        bumped.make_mut()[5 * 6] = 1.0; // t = 5, node 0
        let y0 = ggcm.forward(&tape, tape.constant(base)).value();
        let y1 = ggcm.forward(&tape, tape.constant(bumped)).value();
        for t in 0..5 {
            for i in 0..6 {
                for f in 0..4 {
                    assert_eq!(y0.at(&[0, t, i, f]), y1.at(&[0, t, i, f]), "leak at t={t}");
                }
            }
        }
    }

    #[test]
    fn grads_reach_all_params() {
        let (ctx, mut rng) = setup();
        let model = Stg2Seq::new(&ctx, Stg2SeqConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&[1, 12, 6, 2], -1.0, 1.0, &mut rng));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
