//! Finite-difference gradient checking used by the test suites of this crate
//! and every downstream crate that defines new differentiable compositions.

use crate::tape::Tape;
use crate::tensor::Tensor;

/// Result of a gradient check: max absolute and relative deviation between
/// analytic and numeric gradients.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference across all checked inputs.
    pub max_abs_err: f32,
    /// Largest relative difference (denominator clamped to 1e-3).
    pub max_rel_err: f32,
}

/// Checks the analytic gradient of `f` at `inputs` against central finite
/// differences.
///
/// `f` receives a fresh tape and leaf variables (one per input, all with
/// `requires_grad`) and must return a scalar loss variable on that tape.
pub fn grad_check(
    inputs: &[Tensor],
    eps: f32,
    f: impl for<'a> Fn(&'a Tape, &[crate::tape::Var<'a>]) -> crate::tape::Var<'a> + Copy,
) -> GradCheckReport {
    // Analytic gradients.
    let tape = Tape::new();
    let vars: Vec<_> = inputs.iter().map(|t| tape.leaf(t.clone(), true)).collect();
    let loss = {
        // We need the Vars borrowed with the right lifetime.
        let refs: Vec<_> = vars.to_vec();
        f(&tape, &refs)
    };
    let grads = tape.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .map(|v| grads.get(*v).cloned().unwrap_or_else(|| Tensor::zeros(v.value().shape())))
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<_> = perturbed.iter().map(|t| tape.leaf(t.clone(), true)).collect();
        f(&tape, &vars).value().item()
    };

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (i, input) in inputs.iter().enumerate() {
        for j in 0..input.len() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            let mut minus: Vec<Tensor> = inputs.to_vec();
            plus[i].make_mut()[j] += eps;
            minus[i].make_mut()[j] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[i].as_slice()[j];
            let abs = (numeric - a).abs();
            let rel = abs / numeric.abs().max(a.abs()).max(1e-3);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

/// Asserts a gradient check passes with the given relative tolerance.
pub fn assert_grad_ok(
    inputs: &[Tensor],
    tol: f32,
    f: impl for<'a> Fn(&'a Tape, &[crate::tape::Var<'a>]) -> crate::tape::Var<'a> + Copy,
) {
    let report = grad_check(inputs, 1e-2, f);
    assert!(
        report.max_rel_err < tol,
        "gradient check failed: max_rel_err = {} (abs {}), tol = {tol}",
        report.max_rel_err,
        report.max_abs_err
    );
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)] // explicit arrays read clearer in grad-check calls
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn check_add_mul() {
        let mut r = rng();
        let a = init::uniform(&[2, 3], -1.0, 1.0, &mut r);
        let b = init::uniform(&[2, 3], -1.0, 1.0, &mut r);
        assert_grad_ok(&[a, b], 1e-2, |_t, v| v[0].mul(&v[1]).add(&v[0]).sum_all());
    }

    #[test]
    fn check_broadcast_ops() {
        let mut r = rng();
        let a = init::uniform(&[2, 3], -1.0, 1.0, &mut r);
        let b = init::uniform(&[3], 0.5, 1.5, &mut r); // keep away from 0 for div
        assert_grad_ok(&[a.clone(), b.clone()], 1e-2, |_t, v| v[0].div(&v[1]).sum_all());
        assert_grad_ok(&[a, b], 1e-2, |_t, v| v[0].sub(&v[1]).powf(2.0).sum_all());
    }

    #[test]
    fn check_activations() {
        let mut r = rng();
        let x = init::uniform(&[3, 4], -2.0, 2.0, &mut r);
        assert_grad_ok(&[x.clone()], 2e-2, |_t, v| v[0].tanh().sum_all());
        assert_grad_ok(&[x.clone()], 2e-2, |_t, v| v[0].sigmoid().mean_all());
        let pos = x.map(|v| v.abs() + 0.5);
        assert_grad_ok(&[pos.clone()], 2e-2, |_t, v| v[0].ln().sum_all());
        assert_grad_ok(&[pos], 2e-2, |_t, v| v[0].sqrt().sum_all());
        assert_grad_ok(&[x], 2e-2, |_t, v| v[0].leaky_relu(0.1).sum_all());
    }

    #[test]
    fn check_matmul() {
        let mut r = rng();
        let a = init::uniform(&[2, 3], -1.0, 1.0, &mut r);
        let b = init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        assert_grad_ok(&[a, b], 1e-2, |_t, v| v[0].matmul(&v[1]).powf(2.0).sum_all());
    }

    #[test]
    fn check_batched_matmul() {
        let mut r = rng();
        let a = init::uniform(&[2, 2, 3], -1.0, 1.0, &mut r);
        let b = init::uniform(&[3, 2], -1.0, 1.0, &mut r);
        assert_grad_ok(&[a, b], 1e-2, |_t, v| v[0].matmul(&v[1]).sum_all());
    }

    #[test]
    fn check_softmax() {
        let mut r = rng();
        let x = init::uniform(&[2, 5], -1.0, 1.0, &mut r);
        let w = init::uniform(&[2, 5], -1.0, 1.0, &mut r);
        // weighted sum so softmax gradient is nontrivial
        assert_grad_ok(&[x, w], 2e-2, |_t, v| v[0].softmax(1).mul(&v[1]).sum_all());
    }

    #[test]
    fn check_reductions_and_shapes() {
        let mut r = rng();
        let x = init::uniform(&[2, 3, 4], -1.0, 1.0, &mut r);
        assert_grad_ok(&[x.clone()], 1e-2, |_t, v| v[0].sum_axes(&[1], false).powf(2.0).sum_all());
        assert_grad_ok(&[x.clone()], 1e-2, |_t, v| {
            v[0].mean_axes(&[0, 2], true).powf(2.0).sum_all()
        });
        assert_grad_ok(&[x.clone()], 1e-2, |_t, v| {
            v[0].permute(&[2, 0, 1]).narrow(0, 1, 2).sum_all()
        });
        assert_grad_ok(&[x], 1e-2, |_t, v| {
            v[0].reshape(&[6, 4]).t().pad(&[(1, 0), (0, 2)]).powf(2.0).sum_all()
        });
    }

    #[test]
    fn check_conv2d() {
        let mut r = rng();
        let x = init::uniform(&[2, 2, 3, 6], -1.0, 1.0, &mut r);
        let w = init::uniform(&[3, 2, 1, 2], -1.0, 1.0, &mut r);
        assert_grad_ok(&[x.clone(), w.clone()], 2e-2, |_t, v| {
            v[0].conv2d(&v[1], 1, 1).powf(2.0).sum_all()
        });
        // dilated
        assert_grad_ok(&[x, w], 2e-2, |_t, v| v[0].conv2d(&v[1], 1, 2).powf(2.0).sum_all());
    }

    #[test]
    fn check_index_select() {
        let mut r = rng();
        let x = init::uniform(&[4, 3], -1.0, 1.0, &mut r);
        assert_grad_ok(&[x], 1e-2, |_t, v| v[0].index_select0(&[0, 2, 2]).powf(2.0).sum_all());
    }

    #[test]
    fn check_concat_stack() {
        let mut r = rng();
        let a = init::uniform(&[2, 2], -1.0, 1.0, &mut r);
        let b = init::uniform(&[2, 3], -1.0, 1.0, &mut r);
        assert_grad_ok(&[a.clone(), b], 1e-2, |_t, v| {
            crate::tape::Var::concat(&[v[0], v[1]], 1).powf(2.0).sum_all()
        });
        let c = init::uniform(&[2, 2], -1.0, 1.0, &mut r);
        assert_grad_ok(&[a, c], 1e-2, |_t, v| {
            crate::tape::Var::stack(&[v[0], v[1]], 1).powf(2.0).sum_all()
        });
    }
}
