//! Experiment-scheduler benchmark behind `BENCH_report.json`.
//!
//! Not a criterion harness: the numbers feed the perf-regression gate
//! (see README §Performance). It times the same mini Fig-1 sweep twice
//! — once on the legacy serial path (`TRAFFIC_JOBS=1` equivalent) and
//! once on the parallel scheduler — and reports:
//!
//! - `serial` / `parallel`: sweep wall-clock plus per-cell p50/p99
//!   seconds from the `sched/cell_s` histogram (metrics are reset
//!   between modes so each section sees only its own cells);
//! - `cores` and `jobs`: what the machine and the scheduler actually
//!   ran with. The `speedup_parallel_vs_serial` key is emitted only
//!   when `cores > 1` — on a single-core runner the parallel path can
//!   only restate its own overhead, and a sub-1.0 "speedup" there
//!   would be noise dressed as a result;
//! - `gwn_adaptive_cache`: eval-mode Graph-WaveNet forward with the
//!   materialized adaptive-adjacency cache on vs force-disabled
//!   (`inference::set_force_off`), isolating what the cache satellite
//!   buys per forward.
//!
//! The bench also asserts the serial and parallel sweeps produced
//! bit-identical rows — a perf number for a wrong answer is worthless.
//!
//! Run with `scripts/bench_report.sh`, or directly:
//! `cargo bench --bench report` (`BENCH_SMOKE=1` for a fast CI pass).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_core::{model_comparison, set_jobs_override, ExperimentScale, Fig1Row};
use traffic_data::{batches, prepare, simulate, SimConfig, Task};
use traffic_models::{build_model, GraphContext};
use traffic_tensor::{inference, pool, Tape};

struct SweepStats {
    wall_secs: f64,
    cell_p50_secs: f64,
    cell_p99_secs: f64,
    cells: u64,
    rows: Vec<Fig1Row>,
}

/// Runs the Fig-1 sweep at `jobs` scheduler jobs and reads the per-cell
/// duration quantiles recorded during this run only.
fn run_sweep(
    datasets: &[&str],
    models: &[&str],
    scale: &ExperimentScale,
    jobs: usize,
) -> SweepStats {
    traffic_obs::reset_metrics();
    set_jobs_override(Some(jobs));
    let start = Instant::now();
    let rows = model_comparison(datasets, models, scale);
    let wall_secs = start.elapsed().as_secs_f64();
    set_jobs_override(None);
    let cells = traffic_obs::histogram("sched/cell_s");
    SweepStats {
        wall_secs,
        cell_p50_secs: cells.quantile(0.5),
        cell_p99_secs: cells.quantile(0.99),
        cells: cells.count(),
        rows,
    }
}

/// (dataset, model, horizon, metric bits, error) per row.
type RowKey = (String, String, String, [u32; 2], Option<String>);

/// Exact-bits row fingerprint: the bench refuses to publish a speedup
/// for a sweep that changed the answer.
fn fingerprint(rows: &[Fig1Row]) -> Vec<RowKey> {
    rows.iter()
        .map(|r| {
            (
                r.dataset.clone(),
                r.model.clone(),
                r.horizon.to_string(),
                [r.mae.0.to_bits(), r.rmse.0.to_bits()],
                r.error.clone(),
            )
        })
        .collect()
}

/// Median eval-mode Graph-WaveNet forward seconds with the adaptive
/// adjacency cache on or force-disabled.
fn gwn_forward_secs(cached: bool, nodes: usize, warmup: usize, measure: usize) -> f64 {
    inference::set_force_off(!cached);
    let mut sim = SimConfig::new("bench-report-gwn", Task::Speed, nodes, 2);
    sim.missing_rate = 0.0;
    let ds = simulate(&sim);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = StdRng::seed_from_u64(7);
    let model = build_model("Graph-WaveNet", &ctx, &mut rng);
    let batch = batches(&data.test, 8, None::<&mut StdRng>).next().expect("test split has a batch");
    let _inf = inference::InferenceGuard::enter();
    let mut tape = Tape::new();
    let mut times = Vec::with_capacity(measure);
    for step in 0..warmup + measure {
        tape.reset();
        let x = tape.constant(batch.x.clone());
        let t = Instant::now();
        let pred = model.forward(&tape, x, None);
        std::hint::black_box(pred.value());
        if step >= warmup {
            times.push(t.elapsed().as_secs_f64());
        }
    }
    inference::set_force_off(false);
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    pool::warmup();
    let cores = pool::num_threads();

    let (datasets, models): (Vec<&str>, Vec<&str>) = if smoke {
        (vec!["METR-LA"], vec!["STGCN", "STSGCN"])
    } else {
        (vec!["METR-LA", "PeMSD8"], vec!["STGCN", "STSGCN", "Graph-WaveNet"])
    };
    let scale = ExperimentScale::smoke();
    // One prepare cell per dataset plus one train cell per (ds, model).
    let sweep_cells = datasets.len() * (1 + models.len());
    let jobs = sweep_cells.min(4);

    eprintln!("sweep: {} datasets x {} models, serial...", datasets.len(), models.len());
    let serial = run_sweep(&datasets, &models, &scale, 1);
    eprintln!("sweep: parallel ({jobs} jobs on {cores} cores)...");
    let parallel = run_sweep(&datasets, &models, &scale, jobs);
    assert_eq!(
        fingerprint(&serial.rows),
        fingerprint(&parallel.rows),
        "parallel sweep changed the rows — refusing to publish its timings"
    );
    eprintln!(
        "serial {:.2}s vs parallel {:.2}s ({} cells, rows bit-identical)",
        serial.wall_secs, parallel.wall_secs, parallel.cells
    );

    let (gwn_nodes, warmup, measure) = if smoke { (16, 1, 3) } else { (80, 2, 9) };
    eprintln!("Graph-WaveNet eval forward: adaptive-adjacency cache off...");
    let uncached = gwn_forward_secs(false, gwn_nodes, warmup, measure);
    eprintln!("Graph-WaveNet eval forward: adaptive-adjacency cache on...");
    let cached = gwn_forward_secs(true, gwn_nodes, warmup, measure);
    eprintln!("uncached {:.4}s vs cached {:.4}s per forward", uncached, cached);

    // On a single-core runner a parallel-vs-serial "speedup" only
    // restates scheduler overhead; record the honest ingredients
    // (cores, jobs, both wall-clocks) and let multi-core runs publish
    // the ratio.
    let speedup = if cores > 1 {
        format!("  \"speedup_parallel_vs_serial\": {:.3},\n", serial.wall_secs / parallel.wall_secs)
    } else {
        String::new()
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"smoke\": {smoke},\n",
            "  \"cores\": {cores},\n",
            "  \"jobs\": {jobs},\n",
            "  \"sweep\": {{\"datasets\": {nd}, \"models\": {nm}, \"cells\": {cells}}},\n",
            "  \"serial\": {{\"wall_secs\": {sw:.6e}, \"cell_p50_secs\": {sp50:.6e}, ",
            "\"cell_p99_secs\": {sp99:.6e}}},\n",
            "  \"parallel\": {{\"wall_secs\": {pw:.6e}, \"cell_p50_secs\": {pp50:.6e}, ",
            "\"cell_p99_secs\": {pp99:.6e}}},\n",
            "{speedup}",
            "  \"gwn_adaptive_cache\": {{\"nodes\": {gn}, ",
            "\"uncached_forward_secs\": {gu:.6e}, \"cached_forward_secs\": {gc:.6e}, ",
            "\"speedup_cached_vs_uncached\": {gs:.3}}}\n",
            "}}\n"
        ),
        smoke = smoke,
        cores = cores,
        jobs = jobs,
        nd = datasets.len(),
        nm = models.len(),
        cells = parallel.cells,
        sw = serial.wall_secs,
        sp50 = serial.cell_p50_secs,
        sp99 = serial.cell_p99_secs,
        pw = parallel.wall_secs,
        pp50 = parallel.cell_p50_secs,
        pp99 = parallel.cell_p99_secs,
        speedup = speedup,
        gn = gwn_nodes,
        gu = uncached,
        gc = cached,
        gs = uncached / cached,
    );
    print!("{json}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}
