//! Mini-batch iteration over windowed samples.

use rand::seq::SliceRandom;
use rand::Rng;
use traffic_tensor::Tensor;

use crate::window::WindowedData;

/// One mini-batch.
pub struct Batch {
    /// Inputs `[B, T_in, N, 2]`.
    pub x: Tensor,
    /// Raw-scale targets `[B, T_out, N]`.
    pub y_raw: Tensor,
    /// Z-scored targets `[B, T_out, N]`.
    pub y_norm: Tensor,
    /// Sample indices composing this batch.
    pub indices: Vec<usize>,
}

/// Iterates `data` in mini-batches of `batch_size`, optionally shuffled.
/// The final short batch is kept (not dropped).
pub fn batches<'a>(
    data: &'a WindowedData,
    batch_size: usize,
    shuffle: Option<&mut impl Rng>,
) -> impl Iterator<Item = Batch> + 'a {
    assert!(batch_size > 0);
    let mut order: Vec<usize> = (0..data.len()).collect();
    if let Some(rng) = shuffle {
        order.shuffle(rng);
    }
    let chunks: Vec<Vec<usize>> = order.chunks(batch_size).map(|c| c.to_vec()).collect();
    chunks.into_iter().map(move |indices| Batch {
        x: data.x.index_select0(&indices),
        y_raw: data.y_raw.index_select0(&indices),
        y_norm: data.y_norm.index_select0(&indices),
        indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Task;
    use crate::simulate::{simulate, SimConfig};
    use crate::window::prepare;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> WindowedData {
        let d = simulate(&SimConfig::new("b", Task::Speed, 4, 4));
        prepare(&d, 6, 6).val
    }

    #[test]
    fn covers_all_samples_once() {
        let w = data();
        let total: usize = batches(&w, 16, None::<&mut StdRng>).map(|b| b.indices.len()).sum();
        assert_eq!(total, w.len());
    }

    #[test]
    fn batch_shapes() {
        let w = data();
        let b = batches(&w, 8, None::<&mut StdRng>).next().unwrap();
        assert_eq!(b.x.shape(), &[8, 6, 4, 2]);
        assert_eq!(b.y_raw.shape(), &[8, 6, 4]);
        assert_eq!(b.y_norm.shape(), &[8, 6, 4]);
    }

    #[test]
    fn shuffle_changes_order_not_content() {
        let w = data();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen: Vec<usize> = batches(&w, 4, Some(&mut rng)).flat_map(|b| b.indices).collect();
        let unshuffled: Vec<usize> = (0..w.len()).collect();
        assert_ne!(seen, unshuffled, "shuffle should permute");
        seen.sort_unstable();
        assert_eq!(seen, unshuffled, "every sample exactly once");
    }

    #[test]
    fn short_final_batch_kept() {
        let w = data();
        let batch_size = w.len() - 1;
        let sizes: Vec<usize> =
            batches(&w, batch_size, None::<&mut StdRng>).map(|b| b.indices.len()).collect();
        assert_eq!(sizes, vec![batch_size, 1]);
    }
}
