//! Table II: characterisation of spatial and temporal modelling methods.

/// Spatial-dependency modelling component (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialComponent {
    /// Spectral-based graph convolution (Laplacian polynomial).
    SpectralGcn,
    /// Spatial-based graph convolution (adjacency / random-walk powers).
    SpatialGcn,
    /// Graph attention network.
    Gat,
    /// Attention + graph embedding (GMAN).
    AttnGraphEmbedding,
}

impl SpatialComponent {
    /// Pros listed in Table II.
    pub fn pros(self) -> &'static str {
        match self {
            SpatialComponent::SpectralGcn | SpatialComponent::SpatialGcn => {
                "Simple architecture; direct use of graph structures"
            }
            SpatialComponent::Gat => "Dynamic modeling of spatial correlation; interpretability",
            SpatialComponent::AttnGraphEmbedding => {
                "Dynamic spatial correlation; latent features; attention beyond the graph"
            }
        }
    }

    /// Cons listed in Table II.
    pub fn cons(self) -> &'static str {
        match self {
            SpatialComponent::SpectralGcn | SpatialComponent::SpatialGcn => {
                "K-hop neighboring problem; cannot consider graph structure change"
            }
            SpatialComponent::Gat => "High time and memory cost",
            SpatialComponent::AttnGraphEmbedding => "Random grouping corrupts graph structures",
        }
    }
}

/// Temporal-dependency modelling component (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalComponent {
    /// Recurrent networks (sequence-to-sequence).
    Rnn,
    /// Convolutional temporal modelling.
    Cnn,
    /// Attention-based temporal modelling.
    Attention,
    /// CNN plus attention (ASTGCN).
    CnnAttention,
    /// Hierarchical graph convolution over stacked time slices (STG2Seq),
    /// or a joint local spatio-temporal graph (STSGCN).
    GraphOverTime,
}

impl TemporalComponent {
    /// Pros listed in Table II (closest row).
    pub fn pros(self) -> &'static str {
        match self {
            TemporalComponent::Rnn => "Consideration of all states",
            TemporalComponent::Cnn | TemporalComponent::GraphOverTime => {
                "Simple architecture; local feature extraction; multi-step at once"
            }
            TemporalComponent::Attention | TemporalComponent::CnnAttention => {
                "Flexible feature selection; cheap long-range reference"
            }
        }
    }

    /// Cons listed in Table II (closest row).
    pub fn cons(self) -> &'static str {
        match self {
            TemporalComponent::Rnn => "Complex architecture; hard to capture local hidden feature",
            TemporalComponent::Cnn | TemporalComponent::GraphOverTime => {
                "Should find the best filter size"
            }
            TemporalComponent::Attention | TemporalComponent::CnnAttention => {
                "Generally high time/memory cost"
            }
        }
    }
}

/// How a model produces its 12-step forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputStyle {
    /// Predicts a single step; multi-step requires iterated rollout
    /// (STGCN — the cause of its long inference time in Table III).
    ManyToOne,
    /// Autoregressive decoder (DCRNN, ST-MetaNet — error accumulation).
    Seq2Seq,
    /// All horizons emitted in one pass (Graph-WaveNet, GMAN, ...).
    Direct,
}

/// One model's Table II row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelMeta {
    /// Model name.
    pub name: &'static str,
    /// Spatial component.
    pub spatial: SpatialComponent,
    /// Temporal component.
    pub temporal: TemporalComponent,
    /// Output style.
    pub output: OutputStyle,
}

/// The eight models of the paper with their Table II classification.
pub const MODEL_TAXONOMY: [ModelMeta; 8] = [
    ModelMeta {
        name: "STGCN",
        spatial: SpatialComponent::SpectralGcn,
        temporal: TemporalComponent::Cnn,
        output: OutputStyle::ManyToOne,
    },
    ModelMeta {
        name: "DCRNN",
        spatial: SpatialComponent::SpatialGcn,
        temporal: TemporalComponent::Rnn,
        output: OutputStyle::Seq2Seq,
    },
    ModelMeta {
        name: "ASTGCN",
        spatial: SpatialComponent::SpectralGcn,
        temporal: TemporalComponent::CnnAttention,
        output: OutputStyle::Direct,
    },
    ModelMeta {
        name: "ST-MetaNet",
        spatial: SpatialComponent::Gat,
        temporal: TemporalComponent::Rnn,
        output: OutputStyle::Seq2Seq,
    },
    ModelMeta {
        name: "Graph-WaveNet",
        spatial: SpatialComponent::SpatialGcn,
        temporal: TemporalComponent::Cnn,
        output: OutputStyle::Direct,
    },
    ModelMeta {
        name: "STG2Seq",
        spatial: SpatialComponent::SpatialGcn,
        temporal: TemporalComponent::GraphOverTime,
        output: OutputStyle::Direct,
    },
    ModelMeta {
        name: "STSGCN",
        spatial: SpatialComponent::SpatialGcn,
        temporal: TemporalComponent::GraphOverTime,
        output: OutputStyle::Direct,
    },
    ModelMeta {
        name: "GMAN",
        spatial: SpatialComponent::AttnGraphEmbedding,
        temporal: TemporalComponent::Attention,
        output: OutputStyle::Direct,
    },
];

/// Looks up a taxonomy row by model name.
pub fn taxonomy(name: &str) -> Option<&'static ModelMeta> {
    MODEL_TAXONOMY.iter().find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_models() {
        assert_eq!(MODEL_TAXONOMY.len(), 8);
    }

    #[test]
    fn spectral_vs_spatial_partition_matches_paper() {
        // Table II footnote: STGCN & ASTGCN spectral; DCRNN, Graph-WaveNet,
        // STG2Seq, STSGCN spatial.
        let spectral: Vec<&str> = MODEL_TAXONOMY
            .iter()
            .filter(|m| m.spatial == SpatialComponent::SpectralGcn)
            .map(|m| m.name)
            .collect();
        assert_eq!(spectral, vec!["STGCN", "ASTGCN"]);
        let spatial: Vec<&str> = MODEL_TAXONOMY
            .iter()
            .filter(|m| m.spatial == SpatialComponent::SpatialGcn)
            .map(|m| m.name)
            .collect();
        assert_eq!(spatial, vec!["DCRNN", "Graph-WaveNet", "STG2Seq", "STSGCN"]);
    }

    #[test]
    fn rnn_models_are_seq2seq() {
        for m in &MODEL_TAXONOMY {
            if m.temporal == TemporalComponent::Rnn {
                assert_eq!(m.output, OutputStyle::Seq2Seq, "{}", m.name);
            }
        }
    }

    #[test]
    fn lookup() {
        assert_eq!(taxonomy("gman").unwrap().name, "GMAN");
        assert!(taxonomy("unknown").is_none());
    }

    #[test]
    fn pros_cons_non_empty() {
        for m in &MODEL_TAXONOMY {
            assert!(!m.spatial.pros().is_empty());
            assert!(!m.spatial.cons().is_empty());
            assert!(!m.temporal.pros().is_empty());
            assert!(!m.temporal.cons().is_empty());
        }
    }
}
