//! Fig 1 regenerator: MAE/RMSE/MAPE per model × dataset × horizon.
//! Prints a reduced cross-product once, then times one full
//! train-and-evaluate cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traffic_bench::{bench_scale, report_scale};
use traffic_core::{
    eval_split, model_comparison, predict, prepare_experiment, render_fig1, train_model,
};
use traffic_metrics::{evaluate_horizons, PAPER_HORIZONS};

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("fig1_model_comparison");
    // One-shot reduced Fig 1: one speed + one flow dataset, three models.
    let rows = model_comparison(
        &["METR-LA", "PeMSD8"],
        &["Graph-WaveNet", "GMAN", "STGCN"],
        &report_scale(),
    );
    println!("\n== Fig 1 (reduced regeneration) ==\n{}", render_fig1(&rows));

    // Criterion kernel: one cell (train + evaluate) per model family.
    let scale = bench_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);
    let mut group = c.benchmark_group("fig1/train_eval_cell");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["Graph-WaveNet", "GMAN"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let (model, _) = train_model(name, &exp, &scale, 1);
                let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
                evaluate_horizons(&pred, &test.y_raw, &PAPER_HORIZONS, None)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
