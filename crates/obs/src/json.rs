//! Minimal JSON parser for reading run manifests back (round-trip
//! tests, the telemetry example, and downstream tooling that wants to
//! consume `reports/runs/*.jsonl` without external crates).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable reason.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            out.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs unsupported; manifests never emit them
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { at: start, msg: "invalid number" })
    }
}

/// Pretty-prints with two-space indentation (for the telemetry example).
pub fn pretty(v: &Json) -> String {
    let mut out = String::new();
    pretty_into(v, 0, &mut out);
    out
}

fn pretty_into(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => out.push_str(&x.to_string()),
        Json::Str(s) => crate::event::push_json_str(out, s),
        Json::Arr(items) if items.is_empty() => out.push_str("[]"),
        Json::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty_into(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Json::Obj(m) if m.is_empty() => out.push_str("{}"),
        Json::Obj(m) => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                out.push_str(&pad);
                crate::event::push_json_str(out, k);
                out.push_str(": ");
                pretty_into(item, indent + 1, out);
                out.push_str(if i + 1 < m.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Null));
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b").and_then(Json::as_str), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn event_roundtrip() {
        let e = crate::Event::new("epoch")
            .with("model", "DCRNN")
            .with("loss", 1.25f64)
            .with("epoch", 4u64)
            .with("note", "a \"quoted\" string");
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("epoch"));
        assert_eq!(v.get("model").and_then(Json::as_str), Some("DCRNN"));
        assert_eq!(v.get("loss").and_then(Json::as_f64), Some(1.25));
        assert_eq!(v.get("epoch").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("a \"quoted\" string"));
    }

    #[test]
    fn pretty_prints() {
        let v = parse(r#"{"a":[1],"b":"x"}"#).unwrap();
        let p = pretty(&v);
        assert!(p.contains("\"a\": [\n"));
        assert!(parse(&p).unwrap() == v);
    }
}
