//! Graph Laplacians for spectral graph convolutions.

use traffic_tensor::{Propagator, Tensor};

use crate::adjacency::symmetrize;
use crate::eigen::max_eigenvalue;

/// Symmetric normalised Laplacian `L = I − D^{-1/2} A D^{-1/2}` of a
/// (symmetrised) non-negative adjacency.
pub fn normalized_laplacian(adj: &Tensor) -> Tensor {
    let n = adj.shape()[0];
    assert_eq!(adj.shape(), &[n, n]);
    let a = symmetrize(adj);
    let av = a.as_slice();
    let deg: Vec<f32> = av.chunks_exact(n.max(1)).map(|row| row.iter().sum::<f32>()).collect();
    let dinv_sqrt: Vec<f32> =
        deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    let mut l = Tensor::zeros(&[n, n]);
    {
        let buf = l.make_mut();
        let av = a.as_slice();
        for i in 0..n {
            for j in 0..n {
                let norm = dinv_sqrt[i] * av[i * n + j] * dinv_sqrt[j];
                buf[i * n + j] = if i == j { 1.0 - norm } else { -norm };
            }
        }
    }
    l
}

/// Rescaled Laplacian for Chebyshev convolutions:
/// `L̃ = 2L/λmax − I`, with eigenvalues mapped into `[-1, 1]`.
pub fn scaled_laplacian(adj: &Tensor) -> Tensor {
    let l = normalized_laplacian(adj);
    let lmax = max_eigenvalue(&l, 12).max(1e-6);
    let n = l.shape()[0];
    let mut out = l.mul_scalar(2.0 / lmax);
    {
        let buf = out.make_mut();
        for i in 0..n {
            buf[i * n + i] -= 1.0;
        }
    }
    out
}

/// [`scaled_laplacian`] packaged as a [`Propagator`]: CSR when the
/// road network's thresholded adjacency leaves `L̃` sparse, dense
/// otherwise. This is the operator Chebyshev layers apply every
/// forward/backward step.
pub fn scaled_laplacian_propagator(adj: &Tensor) -> Propagator {
    Propagator::from_matrix(scaled_laplacian(adj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::sym_eigen;

    fn path_adj(n: usize) -> Tensor {
        let mut a = Tensor::zeros(&[n, n]);
        {
            let buf = a.make_mut();
            for i in 0..n - 1 {
                buf[i * n + i + 1] = 1.0;
                buf[(i + 1) * n + i] = 1.0;
            }
        }
        a
    }

    #[test]
    fn laplacian_rows_sum_to_zero_on_dsqrt_scale() {
        // For a regular graph (cycle), D^{-1/2} A D^{-1/2} has row sums 1,
        // so L rows sum to 0.
        let n = 4;
        let mut a = Tensor::zeros(&[n, n]);
        {
            let buf = a.make_mut();
            for i in 0..n {
                buf[i * n + (i + 1) % n] = 1.0;
                buf[((i + 1) % n) * n + i] = 1.0;
            }
        }
        let l = normalized_laplacian(&a);
        for i in 0..n {
            let s: f32 = (0..n).map(|j| l.at(&[i, j])).sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn laplacian_eigenvalues_in_0_2() {
        let l = normalized_laplacian(&path_adj(6));
        let e = sym_eigen(&l, 12);
        assert!(e.values[0].abs() < 1e-4, "smallest eigenvalue should be 0");
        assert!(*e.values.last().unwrap() <= 2.0 + 1e-4);
    }

    #[test]
    fn scaled_laplacian_spectrum_in_unit_interval() {
        let lt = scaled_laplacian(&path_adj(6));
        let e = sym_eigen(&lt, 12);
        assert!(e.values[0] >= -1.0 - 1e-3);
        assert!(*e.values.last().unwrap() <= 1.0 + 1e-3);
        // λmax of L̃ should be exactly +1 (2·λmax/λmax − 1)
        assert!((*e.values.last().unwrap() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn propagator_matches_scaled_laplacian() {
        let adj = path_adj(32);
        let prop = scaled_laplacian_propagator(&adj);
        assert!(prop.is_sparse(), "path-graph Laplacian is tridiagonal");
        let lt = scaled_laplacian(&adj);
        let x = Tensor::arange(32 * 2).reshape(&[32, 2]).mul_scalar(0.01);
        let got = prop.apply_tensor(&x);
        let want = lt.matmul(&x);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn handles_isolated_nodes() {
        let mut a = path_adj(3);
        // add an isolated 4th node
        let mut bigger = Tensor::zeros(&[4, 4]);
        {
            let buf = bigger.make_mut();
            for i in 0..3 {
                for j in 0..3 {
                    buf[i * 4 + j] = a.at(&[i, j]);
                }
            }
        }
        a = bigger;
        let l = normalized_laplacian(&a);
        assert!(!l.has_non_finite());
        assert_eq!(l.at(&[3, 3]), 1.0);
    }
}
