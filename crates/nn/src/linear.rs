//! Fully-connected layer.

use rand::Rng;
use traffic_tensor::{init, Tape, Var};

use crate::param::{Param, ParamStore};

/// `y = x · Wᵀ + b`, applied to the last axis of `x`.
///
/// Weight layout is `[out, in]` (PyTorch convention); inputs may have any
/// number of leading batch axes.
///
/// ```
/// use rand::SeedableRng;
/// use traffic_nn::{Linear, ParamStore};
/// use traffic_tensor::{Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = Linear::new(&mut store, "fc", 8, 3, true, &mut rng);
/// let tape = Tape::new();
/// let x = tape.constant(Tensor::ones(&[4, 10, 8]));
/// assert_eq!(layer.forward(&tape, x).shape(), vec![4, 10, 3]);
/// ```
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = store.add(
            format!("{prefix}.weight"),
            init::xavier_uniform(&[out_features, in_features], rng),
        );
        let bias = bias.then(|| {
            store.add(format!("{prefix}.bias"), traffic_tensor::Tensor::zeros(&[out_features]))
        });
        Linear { weight, bias, in_features, out_features }
    }

    /// Input feature size.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature size.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer to the last axis of `x`: `[..., in] -> [..., out]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        assert_eq!(
            *shape.last().expect("Linear input must have rank >= 1"),
            self.in_features,
            "Linear expected last axis {}, got {:?}",
            self.in_features,
            shape
        );
        let w = self.weight.var(tape);
        let y = x.matmul(&w.t());
        match &self.bias {
            Some(b) => y.add(&b.var(tape)),
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_tensor::{Tape, Tensor};

    #[test]
    fn shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, true, &mut rng);
        assert_eq!(store.num_scalars(), 4 * 3 + 3);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 5, 4]));
        let y = lin.forward(&tape, x);
        assert_eq!(y.shape(), vec![2, 5, 3]);
    }

    #[test]
    fn gradient_reaches_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 2, 2, true, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[3, 2]));
        let loss = lin.forward(&tape, x).powf(2.0).mean_all();
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        for p in store.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn linear_matches_manual() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 2, 1, false, &mut rng);
        lin.weight.set_value(Tensor::from_vec(vec![2.0, -1.0], &[1, 2]));
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![3.0, 4.0], &[1, 2]));
        let y = lin.forward(&tape, x);
        assert_eq!(y.value().as_slice(), &[2.0]);
    }
}
