//! Trainable parameters and the store that owns them.
//!
//! A [`Parameter`] owns its current value and (after a backward pass) its
//! gradient. During a forward pass, [`Parameter::var`] binds the parameter
//! to the active [`Tape`] exactly once and caches the binding, so layers can
//! freely call it multiple times.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use traffic_tensor::{Gradients, Tape, Tensor, Var};

/// One trainable tensor.
pub struct Parameter {
    name: String,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    /// `(tape_id, var_id)` of the leaf created for the current forward pass.
    binding: Cell<(u64, usize)>,
    /// Bumped on every value mutation; lets derived-tensor caches
    /// (e.g. Graph-WaveNet's materialized adaptive adjacency) detect
    /// staleness without comparing buffers — in-place optimizer steps
    /// reuse the same allocation, so pointer identity is useless.
    version: Cell<u64>,
}

/// Shared handle to a [`Parameter`].
pub type Param = Rc<Parameter>;

impl Parameter {
    fn new(name: String, value: Tensor) -> Param {
        Rc::new(Parameter {
            name,
            value: RefCell::new(value),
            grad: RefCell::new(None),
            binding: Cell::new((0, usize::MAX)),
            version: Cell::new(0),
        })
    }

    /// The parameter's registered name (unique within its store).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A copy of the current value.
    pub fn value(&self) -> Tensor {
        self.value.borrow().clone()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> Vec<usize> {
        self.value.borrow().shape().to_vec()
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.borrow().len()
    }

    /// Replaces the value (used by optimizers and weight loading).
    pub fn set_value(&self, t: Tensor) {
        assert_eq!(
            t.shape(),
            self.value.borrow().shape(),
            "set_value shape mismatch for parameter {}",
            self.name
        );
        *self.value.borrow_mut() = t;
        self.version.set(self.version.get() + 1);
    }

    /// Mutates the value in place (fused optimizer steps). The closure
    /// gets the stored tensor directly; copy-on-write inside the tensor
    /// keeps any outstanding snapshots/tape leaves unchanged.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.value.borrow_mut());
        self.version.set(self.version.get() + 1);
    }

    /// Monotone mutation counter: changes whenever [`Parameter::set_value`]
    /// or [`Parameter::update_value`] touched the value. Cache keys for
    /// tensors derived from this parameter.
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// The gradient captured by the last backward pass, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.grad.borrow().clone()
    }

    /// Replaces the stored gradient directly (fault-injection tests and
    /// custom training loops; normal training uses
    /// [`ParamStore::capture_grads`]).
    pub fn set_grad(&self, g: Tensor) {
        *self.grad.borrow_mut() = Some(g);
    }

    /// Clears the stored gradient.
    pub fn zero_grad(&self) {
        *self.grad.borrow_mut() = None;
    }

    /// Binds this parameter to `tape` as a `requires_grad` leaf, caching the
    /// binding so repeated calls during one forward pass reuse the same node.
    pub fn var<'t>(&self, tape: &'t Tape) -> Var<'t> {
        let (tid, vid) = self.binding.get();
        if tid == tape.id() {
            return tape.var(vid);
        }
        let v = tape.leaf(self.value(), true);
        self.binding.set((tape.id(), v.id()));
        v
    }

    /// Accumulates the gradient for this parameter from `grads`, if it was
    /// bound to `tape` during the forward pass.
    fn capture(&self, tape: &Tape, grads: &Gradients) {
        let (tid, vid) = self.binding.get();
        if tid != tape.id() {
            return;
        }
        if let Some(g) = grads.get_by_id(vid) {
            let mut slot = self.grad.borrow_mut();
            match &mut *slot {
                // In-place accumulation: same elementwise add order as
                // the old allocating `acc.add(g)`.
                Some(acc) => acc.add_assign(g),
                none => *none = Some(g.clone()),
            }
        }
    }
}

/// Owns every parameter of a model.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

/// Health statistics for one parameter group (a dot-separated name
/// prefix, i.e. a layer). Produced by [`ParamStore::group_health`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupHealth {
    /// Group name (`block0.t1` for params `block0.t1.weight`, `.bias`).
    pub group: String,
    /// Parameter tensors in the group.
    pub params: usize,
    /// Scalar weights in the group.
    pub scalars: usize,
    /// L2 norm of the group's weights.
    pub weight_norm: f32,
    /// L2 norm of the group's stored gradients (`None` when no param in
    /// the group holds a gradient). NaN/∞ when gradients are poisoned.
    pub grad_norm: Option<f32>,
    /// `‖w − w_prev‖ / ‖w_prev‖` against the pre-step snapshot (`None`
    /// when [`ParamStore::group_health`] was called without one).
    pub update_ratio: Option<f32>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter. Names must be unique; a duplicate panics.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> Param {
        let name = name.into();
        assert!(self.params.iter().all(|p| p.name != name), "duplicate parameter name: {name}");
        let p = Parameter::new(name, value);
        self.params.push(Rc::clone(&p));
        p
    }

    /// All parameters in registration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights (the paper's "# of params").
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.numel()).sum()
    }

    /// Copies gradients out of a finished backward pass into each parameter.
    pub fn capture_grads(&self, tape: &Tape, grads: &Gradients) {
        for p in &self.params {
            p.capture(tape, grads);
        }
    }

    /// Clears all stored gradients.
    pub fn zero_grads(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global L2 norm of all gradients (0 when none stored).
    pub fn grad_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for p in &self.params {
            if let Some(g) = p.grad() {
                sq += g.as_slice().iter().map(|&v| v * v).sum::<f32>();
            }
        }
        sq.sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm (useful for gradient telemetry).
    ///
    /// A non-finite pre-clip norm (NaN/∞ gradients) leaves the gradients
    /// untouched and simply reports it: scaling by `max_norm / inf`
    /// would silently zero every gradient, and NaN would poison the
    /// weights on the next optimizer step. Callers are expected to test
    /// the returned norm and skip the step (the trainer does, counting
    /// it under `train/skipped_steps`).
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm.is_finite() && norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                if let Some(g) = p.grad.borrow_mut().as_mut() {
                    // In place; same arithmetic as `g.mul_scalar(scale)`.
                    g.map_inplace(|v| v * scale);
                }
            }
        }
        norm
    }

    /// Copies every parameter value (cheap: buffers are shared until
    /// mutated). Used for best-epoch snapshots.
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value()).collect()
    }

    /// Restores values from a snapshot taken on the same store.
    pub fn restore(&self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot size mismatch");
        for (p, t) in self.params.iter().zip(snapshot) {
            p.set_value(t.clone());
        }
    }

    /// Per-parameter-group health statistics for the insight sampler.
    ///
    /// Parameters are grouped by their dot-separated name prefix (the
    /// "layer": `block0.t1.weight` and `block0.t1.bias` share group
    /// `block0.t1`; an undotted name is its own group), preserving
    /// registration order. Norm accumulation is f64 so NaN/∞ gradients
    /// surface as non-finite group norms instead of overflowing.
    ///
    /// `prev` — a [`ParamStore::snapshot`] taken *before* the optimizer
    /// step — enables the update/weight ratio `‖w − w_prev‖ / ‖w_prev‖`;
    /// pass `None` when no pre-step snapshot exists (blame capture).
    pub fn group_health(&self, prev: Option<&[Tensor]>) -> Vec<GroupHealth> {
        if let Some(prev) = prev {
            assert_eq!(prev.len(), self.params.len(), "group_health snapshot size mismatch");
        }
        struct Acc {
            group: String,
            params: usize,
            scalars: usize,
            w_sq: f64,
            g_sq: f64,
            has_grad: bool,
            delta_sq: f64,
            prev_sq: f64,
        }
        let mut accs: Vec<Acc> = Vec::new();
        for (i, p) in self.params.iter().enumerate() {
            let group = p.name.rsplit_once('.').map_or(p.name.as_str(), |(g, _)| g);
            let idx = match accs.iter().position(|a| a.group == group) {
                Some(idx) => idx,
                None => {
                    accs.push(Acc {
                        group: group.to_string(),
                        params: 0,
                        scalars: 0,
                        w_sq: 0.0,
                        g_sq: 0.0,
                        has_grad: false,
                        delta_sq: 0.0,
                        prev_sq: 0.0,
                    });
                    accs.len() - 1
                }
            };
            let acc = &mut accs[idx];
            acc.params += 1;
            acc.scalars += p.numel();
            let value = p.value.borrow();
            acc.w_sq += value.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
            if let Some(g) = p.grad.borrow().as_ref() {
                acc.has_grad = true;
                acc.g_sq += g.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
            }
            if let Some(prev) = prev {
                let old = prev[i].as_slice();
                for (&w, &o) in value.as_slice().iter().zip(old) {
                    let d = w as f64 - o as f64;
                    acc.delta_sq += d * d;
                    acc.prev_sq += (o as f64) * (o as f64);
                }
            }
        }
        accs.into_iter()
            .map(|a| GroupHealth {
                group: a.group,
                params: a.params,
                scalars: a.scalars,
                weight_norm: a.w_sq.sqrt() as f32,
                grad_norm: a.has_grad.then(|| a.g_sq.sqrt() as f32),
                update_ratio: prev
                    .is_some()
                    .then(|| (a.delta_sq.sqrt() / (a.prev_sq.sqrt() + 1e-12)) as f32),
            })
            .collect()
    }

    /// Overwrites every stored gradient with NaN. Fault-injection
    /// support (the trainer's `nan_grad` site): simulates a numerically
    /// blown-up backward pass so the skip-step guard can be exercised on
    /// real models.
    pub fn poison_grads(&self) {
        for p in &self.params {
            if let Some(g) = p.grad.borrow_mut().as_mut() {
                g.map_inplace(|_| f32::NAN);
            }
        }
    }

    /// True if any parameter or stored gradient contains NaN/Inf.
    pub fn has_non_finite(&self) -> bool {
        self.params
            .iter()
            .any(|p| p.value().has_non_finite() || p.grad().is_some_and(|g| g.has_non_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_reuse_within_tape() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(&[2]));
        let tape = Tape::new();
        let v1 = w.var(&tape);
        let v2 = w.var(&tape);
        assert_eq!(v1.id(), v2.id());
        let tape2 = Tape::new();
        let v3 = w.var(&tape2);
        assert_eq!(v3.id(), 0); // fresh tape, fresh leaf
    }

    #[test]
    fn grads_flow_to_parameters() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let tape = Tape::new();
        let wv = w.var(&tape);
        let loss = wv.mul(&wv).sum_all(); // d/dw = 2w
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        assert_eq!(w.grad().unwrap().as_slice(), &[4.0, 6.0]);
        store.zero_grads();
        assert!(w.grad().is_none());
    }

    #[test]
    fn grads_accumulate_across_batches() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0], &[1]));
        for _ in 0..2 {
            let tape = Tape::new();
            let wv = w.var(&tape);
            let loss = wv.sum_all();
            let grads = tape.backward(loss);
            store.capture_grads(&tape, &grads);
        }
        assert_eq!(w.grad().unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn clip_reduces_norm() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let tape = Tape::new();
        let wv = w.var(&tape);
        let loss = wv.mul(&wv).sum_all().mul_scalar(0.5); // grad = w = [3,4], norm 5
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        assert!((store.grad_norm() - 5.0).abs() < 1e-5);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_nonfinite_grads_untouched() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let tape = Tape::new();
        let wv = w.var(&tape);
        let loss = wv.sum_all();
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        store.poison_grads();
        let norm = store.clip_grad_norm(1.0);
        assert!(!norm.is_finite());
        // gradients still NaN, not zeroed by a bogus `max/inf` scale
        assert!(w.grad().unwrap().as_slice().iter().all(|v| v.is_nan()));
        // and the weights themselves were never touched
        assert_eq!(w.value().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn scalar_count() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(&[3, 4]));
        store.add("b", Tensor::zeros(&[5]));
        assert_eq!(store.num_scalars(), 17);
    }

    #[test]
    fn group_health_groups_by_prefix() {
        let mut store = ParamStore::new();
        let w = store.add("layer.weight", Tensor::from_vec(vec![3.0, 4.0], &[2]));
        store.add("layer.bias", Tensor::zeros(&[1]));
        store.add("head", Tensor::from_vec(vec![2.0], &[1]));
        let h = store.group_health(None);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].group, "layer");
        assert_eq!((h[0].params, h[0].scalars), (2, 3));
        assert!((h[0].weight_norm - 5.0).abs() < 1e-5);
        assert_eq!(h[0].grad_norm, None);
        assert_eq!(h[1].group, "head");

        // Update ratio against a pre-step snapshot: doubling the weights
        // gives ‖w − w_prev‖ = ‖w_prev‖, i.e. a ratio of 1.
        let prev = store.snapshot();
        w.update_value(|t| t.map_inplace(|v| v * 2.0));
        let h = store.group_health(Some(&prev));
        let r = h[0].update_ratio.expect("snapshot provided");
        assert!((r - 1.0).abs() < 1e-4, "update ratio {r}");
        assert_eq!(h[1].update_ratio, Some(0.0));
    }

    #[test]
    fn group_health_flags_poisoned_grads() {
        let mut store = ParamStore::new();
        let w = store.add("enc.weight", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let tape = Tape::new();
        let wv = w.var(&tape);
        let loss = wv.sum_all();
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        let h = store.group_health(None);
        assert!(h[0].grad_norm.expect("grad stored").is_finite());
        store.poison_grads();
        let h = store.group_health(None);
        assert!(!h[0].grad_norm.expect("grad stored").is_finite());
    }

    #[test]
    fn version_tracks_every_mutation() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2]));
        let v0 = w.version();
        w.set_value(Tensor::ones(&[2]));
        let v1 = w.version();
        assert_ne!(v0, v1);
        w.update_value(|t| t.map_inplace(|v| v + 1.0));
        assert_ne!(w.version(), v1);
        w.grad(); // reads must not bump
        assert_eq!(w.version(), v1 + 1);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[1]));
        store.add("w", Tensor::zeros(&[1]));
    }
}
