//! Shape arithmetic: row-major strides, NumPy-style broadcasting, and index
//! decomposition used by every elementwise / reduction kernel.

/// Computes row-major (C-order) strides for `shape`.
///
/// The stride of axis `i` is the number of elements separating two values
/// that differ by one in coordinate `i`.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for i in (0..shape.len()).rev() {
        strides[i] = acc;
        acc *= shape[i];
    }
    strides
}

/// Total number of elements described by `shape`.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// NumPy-style broadcast of two shapes.
///
/// Shapes are aligned at their trailing axes; each axis pair must be equal or
/// one of them must be `1`. Returns `None` when the shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Strides to iterate a tensor of shape `from` as if it had the (already
/// broadcast-compatible) shape `to`: broadcast axes get stride 0.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    debug_assert!(from.len() <= to.len());
    let base = strides_for(from);
    let offset = to.len() - from.len();
    let mut out = vec![0usize; to.len()];
    for i in 0..to.len() {
        if i < offset {
            out[i] = 0;
        } else {
            let d = from[i - offset];
            out[i] = if d == 1 { 0 } else { base[i - offset] };
        }
    }
    out
}

/// Decomposes a flat row-major index into multi-dimensional coordinates.
pub fn unravel(mut flat: usize, shape: &[usize], coords: &mut [usize]) {
    for i in (0..shape.len()).rev() {
        coords[i] = flat % shape[i];
        flat /= shape[i];
    }
}

/// Flattens multi-dimensional coordinates using the given strides.
pub fn ravel(coords: &[usize], strides: &[usize]) -> usize {
    coords.iter().zip(strides).map(|(c, s)| c * s).sum()
}

/// Iterator-free kernel helper: walks every flat output index of `shape`,
/// yielding the corresponding flat offsets into two broadcast operands.
///
/// `f(out_idx, a_idx, b_idx)` is called exactly `numel(shape)` times in
/// row-major order.
pub fn for_each_broadcast2(
    shape: &[usize],
    a_strides: &[usize],
    b_strides: &[usize],
    mut f: impl FnMut(usize, usize, usize),
) {
    let n = numel(shape);
    let rank = shape.len();
    if rank == 0 {
        if n > 0 {
            f(0, 0, 0);
        }
        return;
    }
    let mut coords = vec![0usize; rank];
    let mut a_off = 0usize;
    let mut b_off = 0usize;
    for out in 0..n {
        f(out, a_off, b_off);
        // Increment coordinates (row-major), updating offsets incrementally.
        for axis in (0..rank).rev() {
            coords[axis] += 1;
            a_off += a_strides[axis];
            b_off += b_strides[axis];
            if coords[axis] < shape[axis] {
                break;
            }
            a_off -= shape[axis] * a_strides[axis];
            b_off -= shape[axis] * b_strides[axis];
            coords[axis] = 0;
        }
    }
}

/// Validates that `axis < rank`, with a readable panic otherwise.
pub fn check_axis(axis: usize, rank: usize) {
    assert!(axis < rank, "axis {axis} out of range for rank {rank}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn numel_product() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 3]), 0);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[1], &[4, 5, 6]), Some(vec![4, 5, 6]));
        assert_eq!(broadcast_shapes(&[2, 3], &[3, 2]), None);
    }

    #[test]
    fn broadcast_strides_zeroed() {
        assert_eq!(broadcast_strides(&[2, 1], &[2, 3]), vec![1, 0]);
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
    }

    #[test]
    fn unravel_ravel_roundtrip() {
        let shape = [2, 3, 4];
        let strides = strides_for(&shape);
        let mut coords = [0usize; 3];
        for flat in 0..numel(&shape) {
            unravel(flat, &shape, &mut coords);
            assert_eq!(ravel(&coords, &strides), flat);
        }
    }

    #[test]
    fn broadcast_walk_matches_naive() {
        let a_shape = [2, 1, 3];
        let b_shape = [4, 1];
        let out = broadcast_shapes(&a_shape, &b_shape).unwrap();
        assert_eq!(out, vec![2, 4, 3]);
        let asrc = broadcast_strides(&a_shape, &out);
        let bsrc = broadcast_strides(&b_shape, &out);
        let mut seen = Vec::new();
        for_each_broadcast2(&out, &asrc, &bsrc, |o, a, b| seen.push((o, a, b)));
        assert_eq!(seen.len(), 24);
        // Spot-check: out coord (1, 2, 2) -> a coord (1, 0, 2) flat 5, b coord (2, 0) flat 2.
        let idx = 12 + 2 * 3 + 2;
        assert_eq!(seen[idx], (idx, 5, 2));
    }
}
