#!/usr/bin/env bash
# End-to-end smoke test for the inference server's robustness ladder:
# a real HTTP server is pushed through a fault, a corrupt hot reload,
# and a load burst, and must come back HEALTHY every time.
#
# 1. Exports a warm STGCN snapshot and starts `serve serve` with a
#    one-shot `serve_nan` fault armed via TRAFFIC_FAULTS and a
#    hair-trigger breaker (threshold 1, probe every batch).
# 2. First /predict hits the poisoned forward: the answer must be the
#    DEGRADED persistence fallback and /status must report DEGRADED.
# 3. Next /predict is the probe: it must be OK and /status must be back
#    to HEALTHY with the trip on record — breaker recovery, observed
#    over the wire.
# 4. `serve loadgen` burst: every request answered, zero client errors.
# 5. POST /reload pointing at a truncated and a bit-flipped copy of the
#    snapshot: both must be 409 REJECTED with last-good still serving
#    (predict stays OK), then a reload of the intact file must be 200.
# 6. `serve bench` (smoke scale) reruns the whole chaos ladder
#    in-process and BENCH_serve.json must parse with recovered=true.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/serve_smoke.XXXXXX")
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -q --bin serve

echo "[serve_smoke] 1/6 export snapshot + start server (serve_nan armed)…"
target/release/serve export --out "$WORK/model.tnn2" --nodes 8 --seed 7
TRAFFIC_FAULTS="serve_nan@1" target/release/serve serve \
  --snapshot "$WORK/model.tnn2" --addr 127.0.0.1:0 \
  --breaker-threshold 1 --probe-every 1 --hold-ms 60000 \
  >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's|^serving http://\([^ ]*\).*|\1|p' "$WORK/serve.log" | head -1)
  [[ -n "$ADDR" ]] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: server died on startup"; cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "FAIL: server never printed its address"; cat "$WORK/serve.log"; exit 1; }
echo "[serve_smoke]     serving at $ADDR"

BODY=$(python3 -c 'import json; print(json.dumps({"window": [55.0 + (i % 7) for i in range(12 * 8)], "tod": 0.25}))')

predict_status() {
  curl -s -X POST -d "$BODY" "http://$ADDR/predict" \
    | python3 -c 'import json, sys; print(json.load(sys.stdin)["status"])'
}

server_state() {
  curl -sf "http://$ADDR/status" \
    | python3 -c 'import json, sys; print(json.load(sys.stdin)["state"])'
}

echo "[serve_smoke] 2/6 poisoned forward must degrade, not crash…"
got=$(predict_status)
[[ "$got" == "DEGRADED" ]] || { echo "FAIL: expected DEGRADED fallback, got $got"; exit 1; }
state=$(server_state)
[[ "$state" == "DEGRADED" ]] || { echo "FAIL: /status should be DEGRADED, got $state"; exit 1; }

echo "[serve_smoke] 3/6 probe must recover the breaker…"
got=$(predict_status)
[[ "$got" == "OK" ]] || { echo "FAIL: probe predict should be OK, got $got"; exit 1; }
state=$(server_state)
[[ "$state" == "HEALTHY" ]] || { echo "FAIL: /status should be HEALTHY again, got $state"; exit 1; }
trips=$(curl -sf "http://$ADDR/status" \
  | python3 -c 'import json, sys; print(json.load(sys.stdin)["breaker_trips"])')
[[ "$trips" -ge 1 ]] || { echo "FAIL: the trip must be on record, got $trips"; exit 1; }

echo "[serve_smoke] 4/6 loadgen burst…"
target/release/serve loadgen "$ADDR" --clients 4 --requests 25 --interval-ms 1 --nodes 8 \
  | tee "$WORK/loadgen.log"
grep -q ' errors=0$' "$WORK/loadgen.log" || { echo "FAIL: loadgen saw client errors"; exit 1; }

echo "[serve_smoke] 5/6 corrupt hot reloads must be rejected, last-good kept…"
head -c 200 "$WORK/model.tnn2" >"$WORK/truncated.tnn2"
cp "$WORK/model.tnn2" "$WORK/flipped.tnn2"
printf '\x42' | dd of="$WORK/flipped.tnn2" bs=1 seek=100 conv=notrunc 2>/dev/null
for bad in truncated flipped; do
  code=$(curl -s -o "$WORK/reload.json" -w '%{http_code}' -X POST \
    -d "{\"path\": \"$WORK/$bad.tnn2\"}" "http://$ADDR/reload")
  [[ "$code" == "409" ]] || { echo "FAIL: $bad reload returned $code, wanted 409"; cat "$WORK/reload.json"; exit 1; }
  grep -q '"serving":"last-good"' "$WORK/reload.json" || { echo "FAIL: $bad rejection lost last-good"; exit 1; }
  got=$(predict_status)
  [[ "$got" == "OK" ]] || { echo "FAIL: predict after $bad rejection should be OK, got $got"; exit 1; }
done
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "{\"path\": \"$WORK/model.tnn2\"}" "http://$ADDR/reload")
[[ "$code" == "200" ]] || { echo "FAIL: intact reload returned $code, wanted 200"; exit 1; }
state=$(server_state)
[[ "$state" == "HEALTHY" ]] || { echo "FAIL: post-reload state should be HEALTHY, got $state"; exit 1; }

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "[serve_smoke] 6/6 bench chaos ladder + BENCH_serve.json…"
BENCH_SMOKE=1 target/release/serve bench >"$WORK/bench.log" 2>&1 \
  || { echo "FAIL: serve bench failed"; tail -30 "$WORK/bench.log"; exit 1; }
python3 - BENCH_serve.json <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))
assert b["requests"]["ok"] > 0, b["requests"]
for key in ("p50_secs", "p99_secs", "p999_secs"):
    assert b["latency"][key] > 0, b["latency"]
chaos = b["chaos"]
assert chaos["ran"], chaos
assert chaos["recovered"], "server failed to recover in the chaos ladder"
assert chaos["reload_rejections"] >= 2, chaos
assert chaos["breaker_trips"] >= 1, chaos
EOF

echo "[serve_smoke] OK"
