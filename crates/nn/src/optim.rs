//! First-order optimizers operating on a [`ParamStore`].
//!
//! The `step` implementations are fused and in-place (traffic-mem): the
//! moment buffers are updated with [`Tensor::zip_map_assign`] and the
//! parameter write goes through [`crate::param::Parameter::update_value`],
//! so a steady-state optimizer step performs zero heap allocations. The
//! per-element arithmetic (and its order) is exactly that of the
//! allocating reference implementations kept alongside
//! ([`Adam::step_reference`], [`Sgd::step_reference`]) — the test suite
//! asserts the two remain bit-identical.

use traffic_tensor::simd::{Binary, Ternary, Unary};
use traffic_tensor::Tensor;

use crate::param::ParamStore;

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum and L2 weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (schedulers).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update using the gradients stored in `store`.
    /// Fused and in-place; bit-identical to [`Sgd::step_reference`].
    pub fn step(&mut self, store: &ParamStore) {
        self.velocity.resize(store.len(), None);
        let (lr, mom, wd) = (self.lr, self.momentum, self.weight_decay);
        for (i, p) in store.params().iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if wd > 0.0 {
                let pv = p.value();
                // gi + wd·pi (mul is commutative bit-for-bit).
                g.apply_binary_assign(&pv, Binary::Axpy(wd));
            }
            let update = if mom > 0.0 {
                match &mut self.velocity[i] {
                    Some(v) => v.apply_binary_assign(&g, Binary::ScaleAdd(mom)),
                    slot => *slot = Some(g),
                }
                self.velocity[i].as_ref().unwrap().clone()
            } else {
                g
            };
            // pi + (−lr)·ui ≡ pi − ui·lr bitwise (sign flip of the
            // product is exact).
            p.update_value(|t| t.apply_binary_assign(&update, Binary::Axpy(-lr)));
        }
    }

    /// The original allocating implementation, kept as the arithmetic
    /// reference for the fused [`Sgd::step`] (tests assert bit-identical
    /// parameter trajectories) and as the pre-traffic-mem baseline for
    /// the training-throughput bench.
    pub fn step_reference(&mut self, store: &ParamStore) {
        self.velocity.resize(store.len(), None);
        for (i, p) in store.params().iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                g = g.add(&p.value().mul_scalar(self.weight_decay));
            }
            let update = if self.momentum > 0.0 {
                let v = match &self.velocity[i] {
                    Some(v) => v.mul_scalar(self.momentum).add(&g),
                    None => g,
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g
            };
            p.set_value(p.value().sub(&update.mul_scalar(self.lr)));
        }
    }
}

/// A full snapshot of an [`Adam`] instance's mutable state: the step
/// count, learning rate, and per-parameter first/second moments (lazy —
/// `None` until the parameter's first step). Captured into training
/// checkpoints so a resumed run continues the *same* optimization
/// trajectory bit-for-bit instead of restarting the moments from zero.
#[derive(Debug, Clone)]
pub struct AdamState {
    /// Number of steps taken (bias-correction exponent).
    pub t: i32,
    /// Learning rate at capture time.
    pub lr: f32,
    /// First-moment estimates, indexed like the store's params.
    pub m: Vec<Option<Tensor>>,
    /// Second-moment estimates, indexed like the store's params.
    pub v: Vec<Option<Tensor>>,
}

/// Adam optimizer (Kingma & Ba) with optional weight decay, matching the
/// training setup used by the paper's reference implementations.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999, 1e-8)` hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (schedulers).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Captures the optimizer's mutable state (step count, lr, moments)
    /// for checkpointing. Tensor copies are cheap (copy-on-write
    /// buffers).
    pub fn state(&self) -> AdamState {
        AdamState { t: self.t, lr: self.lr, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores state captured by [`Adam::state`]. Hyper-parameters
    /// (betas, eps, weight decay) are construction-time constants and
    /// are kept as-is.
    pub fn load_state(&mut self, s: AdamState) {
        self.t = s.t;
        self.lr = s.lr;
        self.m = s.m;
        self.v = s.v;
    }

    /// Applies one update using the gradients stored in `store`.
    /// Fused and in-place; bit-identical to [`Adam::step_reference`].
    pub fn step(&mut self, store: &ParamStore) {
        self.m.resize(store.len(), None);
        self.v.resize(store.len(), None);
        self.t += 1;
        // Same scalar prefactors the reference computes via `mul_scalar`.
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let c1 = 1.0 - b1;
        let c2 = 1.0 - b2;
        let inv_bc1 = 1.0 / (1.0 - b1.powi(self.t));
        let inv_bc2 = 1.0 / (1.0 - b2.powi(self.t));
        for (i, p) in store.params().iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if wd > 0.0 {
                let pv = p.value();
                g.apply_binary_assign(&pv, Binary::Axpy(wd));
            }
            match &mut self.m[i] {
                Some(m) => m.apply_binary_assign(&g, Binary::Lerp(b1, c1)),
                slot => *slot = Some(g.apply_unary(Unary::MulS(c1))),
            }
            match &mut self.v[i] {
                Some(v) => v.apply_binary_assign(&g, Binary::SqLerp(b2, c2)),
                slot => *slot = Some(g.apply_unary(Unary::SqMulS(c2))),
            }
            let (m, v) = (self.m[i].as_ref().unwrap(), self.v[i].as_ref().unwrap());
            p.update_value(|t| {
                t.apply_ternary_assign(m, v, Ternary::AdamUpdate { inv_bc1, inv_bc2, eps, lr })
            });
        }
    }

    /// The original allocating implementation, kept as the arithmetic
    /// reference for the fused [`Adam::step`] (tests assert bit-identical
    /// parameter trajectories) and as the pre-traffic-mem baseline for
    /// the training-throughput bench.
    pub fn step_reference(&mut self, store: &ParamStore) {
        self.m.resize(store.len(), None);
        self.v.resize(store.len(), None);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, p) in store.params().iter().enumerate() {
            let Some(mut g) = p.grad() else { continue };
            if self.weight_decay > 0.0 {
                g = g.add(&p.value().mul_scalar(self.weight_decay));
            }
            let m = match &self.m[i] {
                Some(m) => m.mul_scalar(self.beta1).add(&g.mul_scalar(1.0 - self.beta1)),
                None => g.mul_scalar(1.0 - self.beta1),
            };
            let v = match &self.v[i] {
                Some(v) => v
                    .mul_scalar(self.beta2)
                    .add(&g.zip_map(&g, |a, b| a * b).mul_scalar(1.0 - self.beta2)),
                None => g.zip_map(&g, |a, b| a * b).mul_scalar(1.0 - self.beta2),
            };
            let m_hat = m.mul_scalar(1.0 / bc1);
            let v_hat = v.mul_scalar(1.0 / bc2);
            let update = m_hat.zip_map(&v_hat, |mh, vh| mh / (vh.sqrt() + self.eps));
            p.set_value(p.value().sub(&update.mul_scalar(self.lr)));
            self.m[i] = Some(m);
            self.v[i] = Some(v);
        }
    }
}

/// Multiplicative step-decay learning-rate schedule.
pub struct StepDecay {
    base_lr: f32,
    gamma: f32,
    step_every: usize,
}

impl StepDecay {
    /// Multiplies the lr by `gamma` every `step_every` epochs.
    pub fn new(base_lr: f32, gamma: f32, step_every: usize) -> Self {
        assert!(step_every > 0);
        StepDecay { base_lr, gamma, step_every }
    }

    /// Learning rate at the given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_tensor::Tape;

    fn quadratic_step(store: &ParamStore) {
        // loss = 0.5 * sum(w²); grad = w
        let tape = Tape::new();
        let w = store.params()[0].var(&tape);
        let loss = w.powf(2.0).mul_scalar(0.5).sum_all();
        let grads = tape.backward(loss);
        store.zero_grads();
        store.capture_grads(&tape, &grads);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![10.0, -8.0], &[2]));
        let mut opt = Sgd::new(0.5);
        for _ in 0..20 {
            quadratic_step(&store);
            opt.step(&store);
        }
        let w = store.params()[0].value();
        assert!(w.as_slice().iter().all(|v| v.abs() < 0.01), "{w:?}");
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut opt = Adam::new(0.3);
        for _ in 0..100 {
            quadratic_step(&store);
            opt.step(&store);
        }
        let w = store.params()[0].value();
        assert!(w.as_slice().iter().all(|v| v.abs() < 0.05), "{w:?}");
    }

    #[test]
    fn adam_skips_params_without_grads() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0], &[1]));
        store.add("unused", Tensor::from_vec(vec![7.0], &[1]));
        let mut opt = Adam::new(0.1);
        quadratic_step(&store); // only touches "w"
        opt.step(&store);
        assert_eq!(store.params()[1].value().as_slice(), &[7.0]);
        assert_ne!(store.params()[0].value().as_slice(), &[1.0]);
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain_store = ParamStore::new();
        plain_store.add("w", Tensor::from_vec(vec![10.0], &[1]));
        let mut momentum_store = ParamStore::new();
        momentum_store.add("w", Tensor::from_vec(vec![10.0], &[1]));
        let mut plain = Sgd::new(0.05);
        let mut with_m = Sgd::with_momentum(0.05, 0.9, 0.0);
        for _ in 0..10 {
            quadratic_step(&plain_store);
            plain.step(&plain_store);
            quadratic_step(&momentum_store);
            with_m.step(&momentum_store);
        }
        let p = plain_store.params()[0].value().item();
        let m = momentum_store.params()[0].value().item();
        assert!(m < p, "momentum should descend faster: {m} vs {p}");
    }

    fn seeded_store() -> ParamStore {
        let mut store = ParamStore::new();
        let w: Vec<f32> = (0..37).map(|i| ((i % 13) as f32 - 6.0) * 0.37).collect();
        store.add("w", Tensor::from_vec(w, &[37]));
        store
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn fused_adam_bit_identical_to_reference() {
        let fused_store = seeded_store();
        let ref_store = seeded_store();
        let mut fused = Adam::new(0.05).with_weight_decay(1e-3);
        let mut reference = Adam::new(0.05).with_weight_decay(1e-3);
        for step in 0..25 {
            quadratic_step(&fused_store);
            fused.step(&fused_store);
            quadratic_step(&ref_store);
            reference.step_reference(&ref_store);
            assert_eq!(
                bits(&fused_store.params()[0].value()),
                bits(&ref_store.params()[0].value()),
                "fused Adam diverged from reference at step {step}"
            );
        }
    }

    #[test]
    fn fused_sgd_bit_identical_to_reference() {
        let fused_store = seeded_store();
        let ref_store = seeded_store();
        let mut fused = Sgd::with_momentum(0.05, 0.9, 1e-3);
        let mut reference = Sgd::with_momentum(0.05, 0.9, 1e-3);
        for step in 0..25 {
            quadratic_step(&fused_store);
            fused.step(&fused_store);
            quadratic_step(&ref_store);
            reference.step_reference(&ref_store);
            assert_eq!(
                bits(&fused_store.params()[0].value()),
                bits(&ref_store.params()[0].value()),
                "fused SGD diverged from reference at step {step}"
            );
        }
    }

    #[test]
    fn adam_state_roundtrip_resumes_trajectory() {
        // Continuous run vs snapshot-at-step-10 + restore into a fresh
        // Adam: the remaining steps must be bit-identical.
        let cont_store = seeded_store();
        let mut cont = Adam::new(0.05);
        let snap_store = seeded_store();
        let mut first = Adam::new(0.05);
        for _ in 0..10 {
            quadratic_step(&cont_store);
            cont.step(&cont_store);
            quadratic_step(&snap_store);
            first.step(&snap_store);
        }
        let state = first.state();
        assert_eq!(state.t, 10);
        drop(first);
        let mut second = Adam::new(0.05);
        second.load_state(state);
        for step in 0..15 {
            quadratic_step(&cont_store);
            cont.step(&cont_store);
            quadratic_step(&snap_store);
            second.step(&snap_store);
            assert_eq!(
                bits(&cont_store.params()[0].value()),
                bits(&snap_store.params()[0].value()),
                "restored Adam diverged at step {step}"
            );
        }
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::new(1.0, 0.1, 10);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(25) - 0.01).abs() < 1e-7);
    }
}
