//! `live` — client CLI for the in-process telemetry server
//! ([`traffic_obs::live`]).
//!
//! ```text
//! live attach <addr>                      one-shot /health + /metrics summary
//! live tail   <addr> [--max-events <n>]   stream /events (SSE) to the console
//! live demo   [--epochs <n>]              tiny STGCN run; honours TRAFFIC_LIVE
//! ```
//!
//! `attach` and `tail` speak plain HTTP/1.1 over a std `TcpStream` —
//! no client dependencies, mirroring the server's zero-dep design.
//! `demo` exists for smoke tests: it prints each epoch loss as exact
//! bits (`loss[i]=<hex>`), so two runs can be byte-compared to verify
//! the server never perturbs training.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use traffic_suite::core::{train, TrainConfig};
use traffic_suite::data::{prepare, simulate, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::obs::json::{self, Json};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut max_events: Option<usize> = None;
    let mut epochs = 2usize;
    let mut hold_ms = 0u64;
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--max-events" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => max_events = Some(v),
                None => return usage("--max-events needs a number"),
            },
            "--epochs" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => epochs = v,
                None => return usage("--epochs needs a number"),
            },
            "--hold-ms" => match take_value(&mut i).and_then(|v| v.parse().ok()) {
                Some(v) => hold_ms = v,
                None => return usage("--hold-ms needs a number"),
            },
            "-h" | "--help" => return usage(""),
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let Some((&cmd, rest)) = positional.split_first() else {
        return usage("missing subcommand");
    };
    match cmd {
        "attach" => match rest {
            [addr] => cmd_attach(addr),
            _ => usage("attach takes exactly one <host:port>"),
        },
        "tail" => match rest {
            [addr] => cmd_tail(addr, max_events),
            _ => usage("tail takes exactly one <host:port>"),
        },
        "demo" => cmd_demo(epochs, hold_ms),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("live: {err}\n");
    }
    eprintln!(
        "usage:\n  live attach <host:port>\n  \
         live tail   <host:port> [--max-events <n>]\n  \
         live demo   [--epochs 2] [--hold-ms 0]   (set TRAFFIC_LIVE=<addr> to serve it)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Plain HTTP/1.1 GET: returns the response body (reads to EOF — the
/// server always answers `Connection: close`).
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::other(format!(
            "server said: {}",
            head.lines().next().unwrap_or("?")
        ))),
        None => Err(std::io::Error::other("malformed HTTP response")),
    }
}

fn cmd_attach(addr: &str) -> ExitCode {
    let health = match http_get(addr, "/health") {
        Ok(body) => body,
        Err(e) => {
            eprintln!("live: cannot reach {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Ok(h) = json::parse(&health) else {
        eprintln!("live: /health returned unparseable JSON: {health}");
        return ExitCode::FAILURE;
    };
    let text = |key: &str| h.get(key).and_then(Json::as_str).unwrap_or("-").to_string();
    let num = |key: &str| h.get(key).and_then(Json::as_f64);
    println!("server  {addr}");
    println!("run     {}", text("run"));
    println!("phase   {}", text("phase"));
    println!("step    epoch {} step {}", num("epoch").unwrap_or(0.0), num("step").unwrap_or(0.0));
    match num("last_step_age_s") {
        Some(age) => println!("last    {age:.1}s since last training step"),
        None => println!("last    no training step yet"),
    }
    if let Some(up) = num("uptime_s") {
        println!("uptime  {up:.1}s");
    }
    if let Some(wd) = h.get("watchdog") {
        let armed = matches!(wd.get("armed"), Some(Json::Bool(true)));
        let alerts = match wd.get("alerts") {
            Some(Json::Arr(a)) => a.len(),
            _ => 0,
        };
        println!(
            "watch   {} ({} active alert{})",
            if armed { "armed" } else { "disarmed" },
            alerts,
            if alerts == 1 { "" } else { "s" }
        );
        if let Some(Json::Arr(list)) = wd.get("alerts") {
            for a in list {
                println!(
                    "        ALERT {}: {}",
                    a.get("rule").and_then(Json::as_str).unwrap_or("?"),
                    a.get("message").and_then(Json::as_str).unwrap_or("")
                );
            }
        }
    }
    match http_get(addr, "/metrics") {
        Ok(metrics) => {
            let families = metrics.lines().filter(|l| l.starts_with("# TYPE ")).count();
            println!("metrics {families} families exported at /metrics");
        }
        Err(e) => eprintln!("live: /metrics failed: {e}"),
    }
    ExitCode::SUCCESS
}

fn cmd_tail(addr: &str, max_events: Option<usize>) -> ExitCode {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("live: cannot reach {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stream = stream;
    if write!(stream, "GET /events HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n")
        .is_err()
    {
        eprintln!("live: request write failed");
        return ExitCode::FAILURE;
    }
    let mut reader = BufReader::new(stream);
    let mut seen = 0usize;
    let mut event_kind = String::new();
    let mut in_body = false;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // server went down with its run
            Ok(_) => {}
            Err(e) => {
                eprintln!("live: stream error: {e}");
                return ExitCode::FAILURE;
            }
        }
        let l = line.trim_end();
        if !in_body {
            in_body = l.is_empty(); // blank line ends the HTTP head
            continue;
        }
        if let Some(kind) = l.strip_prefix("event: ") {
            event_kind = kind.to_string();
        } else if let Some(data) = l.strip_prefix("data: ") {
            println!("[{event_kind}] {data}");
            seen += 1;
            let done = event_kind == "run_end" || max_events.is_some_and(|m| seen >= m);
            if done {
                break;
            }
        }
        // keep-alive comments (": keepalive") and blank separators skip
    }
    println!("({seen} events)");
    ExitCode::SUCCESS
}

/// A tiny deterministic STGCN run for smoke tests. With
/// `TRAFFIC_LIVE=<addr>` set, the run serves telemetry while training;
/// either way the epoch losses print as exact bit patterns so two
/// invocations can be byte-compared.
fn cmd_demo(epochs: usize, hold_ms: u64) -> ExitCode {
    let run = match traffic_suite::obs::Run::named("live-demo")
        .console(false)
        .jsonl("reports/runs")
        .start()
    {
        Ok(run) => run,
        Err(e) => {
            eprintln!("live: cannot start run: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = run.live_addr() {
        // Flush so a piped smoke test sees the address before training
        // ends (stdout is block-buffered when not a tty).
        println!("serving http://{addr} (metrics/health/runs/events)");
        let _ = std::io::stdout().flush();
    }
    let mut cfg = SimConfig::new("live-demo", Task::Speed, 8, 5);
    cfg.missing_rate = 0.0;
    let ds = simulate(&cfg);
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let model = build_model("STGCN", &ctx, &mut rng);
    let train_cfg = TrainConfig {
        epochs,
        batch_size: 16,
        max_batches_per_epoch: Some(8),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &train_cfg);
    for (i, loss) in report.epoch_losses.iter().enumerate() {
        println!("loss[{i}]={:08x}", loss.to_bits());
    }
    let _ = std::io::stdout().flush();
    // Keep the server up after training so smoke tests can probe it
    // (the run — and with it the server — drops when this returns).
    if hold_ms > 0 && run.live_addr().is_some() {
        std::thread::sleep(Duration::from_millis(hold_ms));
    }
    drop(run);
    ExitCode::SUCCESS
}
