//! Weight initialisers. All take an explicit RNG so experiments are
//! reproducible under fixed seeds.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;

use crate::tensor::Tensor;

/// Uniform on `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let dist = Uniform::new(lo, hi);
    Tensor::from_vec((0..crate::shape::numel(shape)).map(|_| dist.sample(rng)).collect(), shape)
}

/// Standard normal scaled by `std`.
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    // Box-Muller; avoids a rand_distr dependency.
    let n = crate::shape::numel(shape);
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape)
}

/// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: &[usize], rng: &mut impl Rng) -> Tensor {
    let (fan_in, fan_out) = fans(shape);
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// Kaiming/He uniform for ReLU layers: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(shape: &[usize], rng: &mut impl Rng) -> Tensor {
    let (fan_in, _) = fans(shape);
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// `(fan_in, fan_out)` for linear (`[out, in]`) and conv
/// (`[out, in, kh, kw]`) weight layouts.
fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        2 => (shape[1], shape[0]),
        _ => {
            let receptive: usize = shape[2..].iter().product();
            (shape[1] * receptive, shape[0] * receptive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&[10_000], 1.0, 2.0, &mut rng);
        assert!((t.mean_all() - 1.0).abs() < 0.1);
        assert!((t.std_all() - 2.0).abs() < 0.1);
    }

    #[test]
    fn xavier_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(&[8, 4], &mut rng);
        let a = (6.0f32 / 12.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(xavier_uniform(&[3, 3], &mut r1), xavier_uniform(&[3, 3], &mut r2));
    }

    #[test]
    fn conv_fans() {
        assert_eq!(fans(&[16, 8, 1, 3]), (24, 48));
    }
}
