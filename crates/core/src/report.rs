//! Plain-text table rendering and CSV output for experiment reports.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Renders a fixed-width text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<w$} ", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let mut out = String::new();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV (simple quoting: fields containing commas or quotes
/// are double-quoted).
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(f, "{}", headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(f, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","))?;
    }
    Ok(())
}

/// A crude unicode sparkline for terminal figures (Fig 3 case study).
/// The single implementation lives in `traffic-obs` (the console sink
/// uses the same renderer for live loss curves).
pub fn sparkline(values: &[f32]) -> String {
    traffic_obs::sparkline(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["model", "mae"],
            &[vec!["STGCN".into(), "3.1".into()], vec!["Graph-WaveNet".into(), "2.7".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[3].contains("Graph-WaveNet"));
        // all rows equal width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_quoting() {
        let dir = std::env::temp_dir().join("traffic_report_test");
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["plain".into(), "has,comma".into()], vec!["q\"uote".into(), "x".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"has,comma\""));
        assert!(content.contains("\"q\"\"uote\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_rows_table() {
        let t = format_table(&["a", "b"], &[]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2); // header + separator only
    }

    #[test]
    fn sparkline_constant_series() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
        // constant series maps to the lowest bar, not NaN garbage
        assert!(s.chars().all(|c| c == '▁'));
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
