//! Graph convolution layers over `[B, N, F]` node-feature tensors.
//!
//! Three families, matching the paper's Table II taxonomy:
//! - **spectral** ([`ChebConv`]): Chebyshev polynomials of the scaled graph
//!   Laplacian (STGCN, ASTGCN);
//! - **spatial** ([`DiffusionConv`], [`DenseGraphConv`]): powers of
//!   random-walk transition matrices applied directly to the adjacency
//!   structure (DCRNN, Graph-WaveNet, STG2Seq, STSGCN);
//! - **attention** ([`GraphAttention`]): learned edge weights (ST-MetaNet,
//!   and the spatial half of GMAN).

use rand::Rng;
use traffic_tensor::{init, Propagator, Tape, Tensor, Var};

use crate::param::{Param, ParamStore};

/// Chebyshev spectral graph convolution of order `K`.
///
/// `y = Σ_{k<K} T_k(L̃) · x · W_k` where `T_k` is the Chebyshev recurrence
/// and `L̃` the rescaled Laplacian (`2L/λmax − I`).
pub struct ChebConv {
    weights: Param, // [K, F_in, F_out]
    bias: Param,    // [F_out]
    laplacian: Propagator,
    order: usize,
}

impl ChebConv {
    /// `laplacian` must be the rescaled Laplacian `L̃ ∈ [N, N]`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        laplacian: Tensor,
        order: usize,
        f_in: usize,
        f_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(order >= 1, "Chebyshev order must be >= 1");
        assert_eq!(laplacian.rank(), 2, "laplacian must be [N, N]");
        assert_eq!(laplacian.shape()[0], laplacian.shape()[1]);
        let weights = store
            .add(format!("{prefix}.weights"), init::xavier_uniform(&[order, f_in, f_out], rng));
        let bias = store.add(format!("{prefix}.bias"), Tensor::zeros(&[f_out]));
        ChebConv { weights, bias, laplacian: Propagator::from_matrix(laplacian), order }
    }

    /// Forward on `[B, N, F_in] -> [B, N, F_out]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let w = self.weights.var(tape);
        let (f_in, f_out) = (self.weights.shape()[1], self.weights.shape()[2]);
        let mut t_prev2 = x; // T_0 = x
        let mut out = t_prev2.matmul(&w.narrow(0, 0, 1).reshape(&[f_in, f_out]));
        if self.order > 1 {
            let mut t_prev1 = self.laplacian.apply(tape, x); // T_1 = L̃ x
            out = out.add(&t_prev1.matmul(&w.narrow(0, 1, 1).reshape(&[f_in, f_out])));
            for k in 2..self.order {
                // T_k = 2 L̃ T_{k-1} − T_{k-2}
                let t_k = self.laplacian.apply(tape, t_prev1).mul_scalar(2.0).sub(&t_prev2);
                out = out.add(&t_k.matmul(&w.narrow(0, k, 1).reshape(&[f_in, f_out])));
                t_prev2 = t_prev1;
                t_prev1 = t_k;
            }
        }
        out.add(&self.bias.var(tape))
    }
}

/// Diffusion convolution (DCRNN / Graph-WaveNet style).
///
/// `y = Σ_s Σ_{k≤K} (P_s)^k · x · W_{s,k}` over a set of support matrices
/// `P_s` (typically forward and backward random-walk transitions, plus an
/// optional learned adaptive adjacency supplied at forward time).
pub struct DiffusionConv {
    weights: Param, // [S*(K+1), F_in, F_out]
    bias: Param,
    supports: Vec<Propagator>,
    steps: usize,
    extra_supports: usize,
}

impl DiffusionConv {
    /// `supports` are the fixed `[N, N]` transition matrices;
    /// `extra_supports` reserves weight slots for adaptive matrices passed
    /// to [`DiffusionConv::forward_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        supports: Vec<Tensor>,
        extra_supports: usize,
        steps: usize,
        f_in: usize,
        f_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let total = supports.len() + extra_supports;
        assert!(total > 0, "diffusion conv needs at least one support");
        // k = 0 term (identity) is shared once, then K terms per support.
        let slots = 1 + total * steps;
        let weights = store
            .add(format!("{prefix}.weights"), init::xavier_uniform(&[slots, f_in, f_out], rng));
        let bias = store.add(format!("{prefix}.bias"), Tensor::zeros(&[f_out]));
        let supports = supports.into_iter().map(Propagator::from_matrix).collect();
        DiffusionConv { weights, bias, supports, steps, extra_supports }
    }

    /// Forward using only the fixed supports.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        assert_eq!(self.extra_supports, 0, "adaptive supports required; use forward_with");
        self.forward_with(tape, x, &[])
    }

    /// Forward with additional (possibly learned) support matrices.
    pub fn forward_with<'t>(&self, tape: &'t Tape, x: Var<'t>, adaptive: &[Var<'t>]) -> Var<'t> {
        assert_eq!(
            adaptive.len(),
            self.extra_supports,
            "expected {} adaptive supports, got {}",
            self.extra_supports,
            adaptive.len()
        );
        let w = self.weights.var(tape);
        let (f_in, f_out) = (self.weights.shape()[1], self.weights.shape()[2]);
        let wk = |slot: usize| w.narrow(0, slot, 1).reshape(&[f_in, f_out]);
        // k = 0: identity.
        let mut out = x.matmul(&wk(0));
        let mut slot = 1;
        for p in &self.supports {
            let mut xk = x;
            for _ in 0..self.steps {
                xk = p.apply(tape, xk);
                out = out.add(&xk.matmul(&wk(slot)));
                slot += 1;
            }
        }
        for p in adaptive {
            let mut xk = x;
            for _ in 0..self.steps {
                xk = p.matmul(&xk);
                out = out.add(&xk.matmul(&wk(slot)));
                slot += 1;
            }
        }
        out.add(&self.bias.var(tape))
    }
}

/// Plain dense graph convolution `y = σ(Â · x · W)` with a fixed normalised
/// adjacency. The workhorse of STG2Seq / STSGCN-style blocks.
pub struct DenseGraphConv {
    weight: Param,
    bias: Param,
    adj: Propagator,
}

impl DenseGraphConv {
    /// `adj` is a pre-normalised `[N, N]` propagation matrix.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        adj: Tensor,
        f_in: usize,
        f_out: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let weight =
            store.add(format!("{prefix}.weight"), init::xavier_uniform(&[f_in, f_out], rng));
        let bias = store.add(format!("{prefix}.bias"), Tensor::zeros(&[f_out]));
        DenseGraphConv { weight, bias, adj: Propagator::from_matrix(adj) }
    }

    /// Forward on `[B, N, F_in]` (no activation; callers choose).
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        self.adj.apply(tape, x).matmul(&self.weight.var(tape)).add(&self.bias.var(tape))
    }
}

/// Single-layer multi-head graph attention (GAT).
///
/// Dense formulation: attention scores are computed for every node pair and
/// masked to the graph's edges (+self-loops) before the softmax.
pub struct GraphAttention {
    w: Param,     // [H, F_in, F_head]
    a_src: Param, // [H, F_head]
    a_dst: Param, // [H, F_head]
    mask: Tensor, // [N, N]: 0 on edges, -1e9 elsewhere
    heads: usize,
    f_head: usize,
}

impl GraphAttention {
    /// `adj` is any `[N, N]` matrix whose non-zero entries mark edges;
    /// self-loops are always allowed. Output feature size is
    /// `heads * f_head` (concatenated heads).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        adj: &Tensor,
        heads: usize,
        f_in: usize,
        f_head: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let n = adj.shape()[0];
        assert_eq!(adj.shape(), &[n, n], "adjacency must be square");
        let mut mask = Tensor::zeros(&[n, n]);
        {
            let m = mask.make_mut();
            let a = adj.as_slice();
            for i in 0..n {
                for j in 0..n {
                    if a[i * n + j] == 0.0 && i != j {
                        m[i * n + j] = -1e9;
                    }
                }
            }
        }
        GraphAttention {
            w: store.add(format!("{prefix}.w"), init::xavier_uniform(&[heads, f_in, f_head], rng)),
            a_src: store
                .add(format!("{prefix}.a_src"), init::xavier_uniform(&[heads, f_head], rng)),
            a_dst: store
                .add(format!("{prefix}.a_dst"), init::xavier_uniform(&[heads, f_head], rng)),
            mask,
            heads,
            f_head,
        }
    }

    /// Forward on `[B, N, F_in] -> [B, N, heads * f_head]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        let (b, n) = (shape[0], shape[1]);
        let w = self.w.var(tape);
        let asrc = self.a_src.var(tape);
        let adst = self.a_dst.var(tape);
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let f_in = self.w.shape()[1];
            let wh = w.narrow(0, h, 1).reshape(&[f_in, self.f_head]);
            let hx = x.matmul(&wh); // [B, N, Fh]
            let s = hx.matmul(&asrc.narrow(0, h, 1).reshape(&[self.f_head, 1])); // [B, N, 1]
            let d = hx.matmul(&adst.narrow(0, h, 1).reshape(&[self.f_head, 1])); // [B, N, 1]
                                                                                 // scores[i][j] = s_i + d_j
            let scores = s.add(&d.reshape(&[b, 1, n])).leaky_relu(0.2);
            let masked = scores.add_const(&self.mask.reshape(&[1, n, n]));
            let alpha = masked.softmax(2);
            head_outs.push(alpha.matmul(&hx)); // [B, N, Fh]
        }
        Var::concat(&head_outs, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_tensor::Tape;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    /// Path graph 0-1-2 rescaled Laplacian substitute for tests.
    fn toy_lap() -> Tensor {
        Tensor::from_vec(vec![0.5, -0.5, 0.0, -0.5, 1.0, -0.5, 0.0, -0.5, 0.5], &[3, 3])
    }

    fn row_norm_adj() -> Tensor {
        // path graph with self loops, row-normalised
        Tensor::from_vec(
            vec![0.5, 0.5, 0.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.0, 0.5, 0.5],
            &[3, 3],
        )
    }

    #[test]
    fn cheb_shapes_orders() {
        for order in 1..=3 {
            let mut store = ParamStore::new();
            let conv = ChebConv::new(&mut store, "c", toy_lap(), order, 2, 4, &mut rng());
            let tape = Tape::new();
            let x = tape.constant(Tensor::ones(&[2, 3, 2]));
            let y = conv.forward(&tape, x);
            assert_eq!(y.shape(), vec![2, 3, 4]);
            assert_eq!(store.num_scalars(), order * 2 * 4 + 4);
        }
    }

    #[test]
    fn cheb_order1_is_linear() {
        // K = 1 ignores the graph entirely: y = x W_0 + b
        let mut store = ParamStore::new();
        let conv = ChebConv::new(&mut store, "c", toy_lap(), 1, 1, 1, &mut rng());
        conv.weights.set_value(Tensor::from_vec(vec![2.0], &[1, 1, 1]));
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3, 1]));
        let y = conv.forward(&tape, x).value();
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn diffusion_propagates_neighbours() {
        let mut store = ParamStore::new();
        let conv =
            DiffusionConv::new(&mut store, "d", vec![row_norm_adj()], 0, 2, 1, 1, &mut rng());
        // zero identity weight, unit first-step weight, zero rest
        let mut w = Tensor::zeros(&[3, 1, 1]);
        w.make_mut()[1] = 1.0;
        conv.weights.set_value(w);
        let tape = Tape::new();
        // impulse at node 0
        let x = tape.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3, 1]));
        let y = conv.forward(&tape, x).value();
        // node 2 unreachable in one hop of the path graph
        assert!(y.at(&[0, 0, 0]) > 0.0);
        assert!(y.at(&[0, 1, 0]) > 0.0);
        assert_eq!(y.at(&[0, 2, 0]), 0.0);
    }

    #[test]
    fn diffusion_with_adaptive_support() {
        let mut store = ParamStore::new();
        let conv =
            DiffusionConv::new(&mut store, "d", vec![row_norm_adj()], 1, 2, 2, 3, &mut rng());
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3, 2]));
        let adp = tape.constant(Tensor::eye(3));
        let y = conv.forward_with(&tape, x, &[adp]);
        assert_eq!(y.shape(), vec![2, 3, 3]);
    }

    #[test]
    fn dense_graphconv_shapes_grads() {
        let mut store = ParamStore::new();
        let conv = DenseGraphConv::new(&mut store, "g", row_norm_adj(), 2, 5, &mut rng());
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[4, 3, 2]));
        let y = conv.forward(&tape, x);
        assert_eq!(y.shape(), vec![4, 3, 5]);
        let grads = tape.backward(y.powf(2.0).mean_all());
        store.capture_grads(&tape, &grads);
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn gat_respects_graph_mask() {
        let mut store = ParamStore::new();
        // path graph adjacency (no 0-2 edge)
        let adj = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0], &[3, 3]);
        let gat = GraphAttention::new(&mut store, "gat", &adj, 2, 2, 3, &mut rng());
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 3, 2]));
        let y = gat.forward(&tape, x);
        assert_eq!(y.shape(), vec![1, 3, 6]);
        // mask: nodes 0 and 2 not connected
        assert_eq!(gat.mask.at(&[0, 2]), -1e9);
        assert_eq!(gat.mask.at(&[0, 1]), 0.0);
        assert_eq!(gat.mask.at(&[1, 1]), 0.0); // self loop allowed
    }

    #[test]
    fn gat_grads_flow() {
        let mut store = ParamStore::new();
        let adj = Tensor::ones(&[3, 3]);
        let gat = GraphAttention::new(&mut store, "gat", &adj, 1, 2, 2, &mut rng());
        let tape = Tape::new();
        let x =
            tape.constant(Tensor::from_vec((0..6).map(|i| i as f32 / 6.0).collect(), &[1, 3, 2]));
        let grads = tape.backward(gat.forward(&tape, x).powf(2.0).sum_all());
        store.capture_grads(&tape, &grads);
        assert!(store.params().iter().all(|p| p.grad().is_some()));
    }
}
