//! Training-health telemetry: per-layer gradient/update statistics
//! sampled every K optimizer steps, and "blame reports" that name the
//! parameter groups whose statistics spiked when a step is skipped or
//! an epoch is rolled back.
//!
//! ## Overhead policy
//!
//! The insight path must be free when off and cheap when on:
//!
//! - **Off (default)** — the trainer holds `None` instead of a
//!   [`HealthMonitor`]; the hot loop pays one `Option` check per step,
//!   no allocation, no extra tensor traffic, and losses stay
//!   bit-identical to a build without this module.
//! - **On** — between sampled steps the only cost is
//!   [`HealthMonitor::due`] (one modulo). On a sampled step the trainer
//!   snapshots the store (copy-on-write handles), lets the optimizer
//!   step, then walks parameters once to compute group norms — O(model
//!   size) every `every` steps, gated to ≤ 2% step overhead at the
//!   default cadence by `benches/train_step.rs`.
//!
//! Enabled per run with [`crate::TrainConfig::insight_every`] or
//! globally with `TRAFFIC_INSIGHT` (`1` = default cadence of every
//! [`DEFAULT_EVERY`] steps, `K` ≥ 2 = every K steps, `0`/`off`/unset =
//! disabled).

use std::collections::VecDeque;

use traffic_nn::ParamStore;
use traffic_obs::{emit_with, Event};
use traffic_tensor::{Tape, Tensor};

/// Sampling cadence when enabled without an explicit interval.
pub const DEFAULT_EVERY: usize = 10;

/// Rolling grad-norm history per group kept for blame medians.
const WINDOW: usize = 32;

/// Blame entries emitted to the manifest / rendered per report.
const BLAME_TOP: usize = 8;

/// Sampling cadence from `TRAFFIC_INSIGHT` (`None` = disabled).
pub fn every_from_env() -> Option<usize> {
    let v = std::env::var("TRAFFIC_INSIGHT").ok()?;
    let v = v.trim();
    if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")
    {
        return None;
    }
    match v.parse::<usize>() {
        Ok(1) => Some(DEFAULT_EVERY), // "1" means "on", not "every step"
        Ok(k) => Some(k),
        Err(_) => Some(DEFAULT_EVERY), // "on", "true", …
    }
}

/// Resolves [`crate::TrainConfig::insight_every`] against the
/// environment: `Some(0)` forces off, `Some(k)` forces every `k`
/// steps, `None` defers to `TRAFFIC_INSIGHT`.
pub fn resolve_every(cfg: Option<usize>) -> Option<usize> {
    match cfg {
        Some(0) => None,
        Some(k) => Some(k),
        None => every_from_env(),
    }
}

/// Per-layer training-health sampler owned by the trainer while
/// insight is enabled (see module docs for the overhead policy).
pub struct HealthMonitor {
    every: usize,
    /// Rolling finite grad-norm history per group, registration order.
    history: Vec<(String, VecDeque<f32>)>,
    samples: usize,
}

impl HealthMonitor {
    /// A monitor sampling every `every` optimizer steps (min 1).
    pub fn new(every: usize) -> HealthMonitor {
        HealthMonitor { every: every.max(1), history: Vec::new(), samples: 0 }
    }

    /// Whether `step` is a sampling step. Allocation-free — this is the
    /// only insight cost paid on non-sampled steps.
    #[inline]
    pub fn due(&self, step: usize) -> bool {
        step.is_multiple_of(self.every)
    }

    /// Number of sampling steps taken so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Records one sample after an optimizer step: per-group weight/grad
    /// norms and update ratios (against `prev`, the pre-step weight
    /// snapshot), plus activation-saturation fractions from the tape.
    /// Each statistic is emitted as an `insight` event and finite grad
    /// norms are remembered for later [`HealthMonitor::blame`] medians.
    pub fn sample(
        &mut self,
        model: &str,
        epoch: usize,
        step: usize,
        store: &ParamStore,
        tape: &Tape,
        prev: &[Tensor],
    ) {
        for gh in store.group_health(Some(prev)) {
            if let Some(gn) = gh.grad_norm.filter(|g| g.is_finite()) {
                let hist = match self.history.iter_mut().find(|(g, _)| *g == gh.group) {
                    Some((_, h)) => h,
                    None => {
                        self.history.push((gh.group.clone(), VecDeque::with_capacity(WINDOW)));
                        &mut self.history.last_mut().expect("just pushed").1
                    }
                };
                if hist.len() == WINDOW {
                    hist.pop_front();
                }
                hist.push_back(gn);
            }
            emit_with(|| {
                Event::new("insight")
                    .with("model", model)
                    .with("epoch", epoch as u64)
                    .with("step", step as u64)
                    .with("group", gh.group.as_str())
                    .with("params", gh.scalars as u64)
                    .with("weight_norm", gh.weight_norm)
                    .with("grad_norm", gh.grad_norm.unwrap_or(f32::NAN))
                    .with("update_ratio", gh.update_ratio.unwrap_or(f32::NAN))
            });
        }
        for s in tape.saturation_stats() {
            emit_with(|| {
                Event::new("insight")
                    .with("model", model)
                    .with("epoch", epoch as u64)
                    .with("step", step as u64)
                    .with("op", s.op)
                    .with("elems", s.elems as u64)
                    .with("saturated", s.saturated as u64)
                    .with("saturation", s.fraction())
            });
        }
        self.samples += 1;
    }

    /// Snapshots the current per-group gradient state into a report
    /// naming the likely culprits: groups with non-finite grad norms
    /// first, then by spike factor over each group's rolling median.
    pub fn blame(
        &self,
        store: &ParamStore,
        reason: &str,
        epoch: usize,
        step: usize,
    ) -> BlameReport {
        let mut entries: Vec<BlameEntry> = store
            .group_health(None)
            .into_iter()
            .map(|gh| {
                let grad_norm = gh.grad_norm.unwrap_or(f32::NAN);
                let non_finite = !grad_norm.is_finite();
                let median = self.median(&gh.group);
                let spike = if non_finite {
                    f32::INFINITY
                } else {
                    match median {
                        Some(m) if m > 0.0 => grad_norm / m,
                        _ => 1.0, // no history: neither exonerated nor accused
                    }
                };
                BlameEntry {
                    group: gh.group,
                    grad_norm,
                    median_grad_norm: median.unwrap_or(f32::NAN),
                    spike,
                    non_finite,
                }
            })
            .collect();
        entries.sort_by(|a, b| {
            b.non_finite
                .cmp(&a.non_finite)
                .then(b.spike.partial_cmp(&a.spike).unwrap_or(std::cmp::Ordering::Equal))
        });
        BlameReport { reason: reason.to_string(), epoch, step, entries }
    }

    /// Forgets accumulated history (after a divergence rollback the
    /// rewound steps' statistics no longer describe the live weights).
    pub fn clear_history(&mut self) {
        self.history.clear();
    }

    fn median(&self, group: &str) -> Option<f32> {
        let (_, hist) = self.history.iter().find(|(g, _)| g == group)?;
        if hist.is_empty() {
            return None;
        }
        let mut sorted: Vec<f32> = hist.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(sorted[sorted.len() / 2])
    }
}

/// One accused parameter group in a [`BlameReport`].
#[derive(Debug, Clone)]
pub struct BlameEntry {
    /// Parameter-group name (layer prefix, e.g. `block0.t1`).
    pub group: String,
    /// Grad norm of the group at the failure.
    pub grad_norm: f32,
    /// Rolling median of the group's sampled grad norms (NaN = no
    /// history yet).
    pub median_grad_norm: f32,
    /// `grad_norm / median` (∞ for a non-finite norm, 1 without
    /// history).
    pub spike: f32,
    /// The group's gradient contained NaN/∞.
    pub non_finite: bool,
}

/// Which layers to blame for a skipped step or rollback, worst first.
#[derive(Debug, Clone)]
pub struct BlameReport {
    /// What went wrong: `non_finite_grad` or `divergence_rollback`.
    pub reason: String,
    /// Epoch and optimizer step of the failure.
    pub epoch: usize,
    /// Global optimizer step of the failure.
    pub step: usize,
    /// All parameter groups, most suspicious first.
    pub entries: Vec<BlameEntry>,
}

impl BlameReport {
    /// The most suspicious group, when any entry actually looks bad.
    pub fn culprit(&self) -> Option<&BlameEntry> {
        self.entries.first().filter(|e| e.non_finite || e.spike > 1.0)
    }

    /// Emits the top entries as `blame` manifest events (free when no
    /// sink is installed).
    pub fn emit(&self, model: &str) {
        for (rank, e) in self.entries.iter().take(BLAME_TOP).enumerate() {
            emit_with(|| {
                Event::new("blame")
                    .with("model", model)
                    .with("reason", self.reason.as_str())
                    .with("epoch", self.epoch as u64)
                    .with("step", self.step as u64)
                    .with("rank", rank as u64)
                    .with("group", e.group.as_str())
                    .with("grad_norm", e.grad_norm)
                    .with("median_grad_norm", e.median_grad_norm)
                    .with("spike", e.spike)
                    .with("non_finite", e.non_finite)
            });
        }
    }

    /// Human-readable table for logs and the `insight` CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "blame report: {} at epoch {} step {}\n  {:<28} {:>12} {:>12} {:>8}\n",
            self.reason, self.epoch, self.step, "group", "grad_norm", "median", "spike"
        );
        for e in self.entries.iter().take(BLAME_TOP) {
            out.push_str(&format!(
                "  {:<28} {:>12.4e} {:>12.4e} {:>7.1}x{}\n",
                e.group,
                e.grad_norm,
                e.median_grad_norm,
                e.spike,
                if e.non_finite { "  ← non-finite" } else { "" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_nn::Linear;

    fn store_with_layers() -> ParamStore {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let _a = Linear::new(&mut store, "enc.fc", 4, 4, true, &mut rng);
        let _b = Linear::new(&mut store, "dec.fc", 4, 4, true, &mut rng);
        store
    }

    fn fake_grads(store: &ParamStore, scale: f32) {
        for p in store.params() {
            p.set_grad(p.value().map(|_| scale));
        }
    }

    #[test]
    fn cadence_and_resolution() {
        let h = HealthMonitor::new(10);
        assert!(h.due(0) && h.due(10) && !h.due(5));
        assert_eq!(resolve_every(Some(0)), None, "Some(0) forces off");
        assert_eq!(resolve_every(Some(7)), Some(7));
        // None defers to env; we can't assert env here without races,
        // just that the explicit settings win.
    }

    #[test]
    fn blame_names_spiking_group() {
        let store = store_with_layers();
        let mut h = HealthMonitor::new(1);
        // Build history: modest grad norms for both groups.
        let tape = Tape::new();
        for step in 0..5 {
            fake_grads(&store, 0.1);
            let prev = store.snapshot();
            h.sample("t", 0, step, &store, &tape, &prev);
        }
        // Spike only enc.fc.
        for p in store.params() {
            let scale = if p.name().starts_with("enc.fc") { 100.0 } else { 0.1 };
            p.set_grad(p.value().map(|_| scale));
        }
        let report = h.blame(&store, "exploding", 0, 5);
        let culprit = report.culprit().expect("spike should accuse someone");
        assert_eq!(culprit.group, "enc.fc");
        assert!(culprit.spike > 100.0, "spike {} should be ~1000x", culprit.spike);
        assert!(!culprit.non_finite);
        assert!(report.render().contains("enc.fc"));
    }

    #[test]
    fn blame_puts_non_finite_first() {
        let store = store_with_layers();
        let h = HealthMonitor::new(1);
        fake_grads(&store, 0.1);
        for p in store.params() {
            if p.name().starts_with("dec.fc") {
                p.set_grad(p.value().map(|_| f32::NAN));
            }
        }
        let report = h.blame(&store, "non_finite_grad", 1, 17);
        let culprit = report.culprit().expect("non-finite group must be accused");
        assert_eq!(culprit.group, "dec.fc");
        assert!(culprit.non_finite);
        assert!(culprit.spike.is_infinite());
        assert_eq!(report.entries.len(), 2);
        assert!(!report.entries[1].non_finite);
    }

    #[test]
    fn history_window_is_bounded() {
        let store = store_with_layers();
        let mut h = HealthMonitor::new(1);
        let tape = Tape::new();
        for step in 0..(WINDOW + 10) {
            fake_grads(&store, 1.0);
            let prev = store.snapshot();
            h.sample("t", 0, step, &store, &tape, &prev);
        }
        assert_eq!(h.samples(), WINDOW + 10);
        for (_, hist) in &h.history {
            assert!(hist.len() <= WINDOW);
        }
        h.clear_history();
        assert!(h.history.is_empty());
    }
}
