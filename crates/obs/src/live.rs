//! `traffic-live`: zero-dependency live telemetry server.
//!
//! A tiny HTTP server over std [`TcpListener`] (no tokio, no hyper)
//! that attaches to the in-process run — via
//! [`crate::RunBuilder::live_server`] or `TRAFFIC_LIVE=<addr>` — and
//! makes the previously post-hoc observability surfaces reachable
//! while the run is still training:
//!
//! - `GET /metrics` — the entire live metric registry in Prometheus
//!   text exposition format: counters (`_total`), gauges, and
//!   log-bucket histograms with `_bucket`/`_sum`/`_count` series plus
//!   exact `_min`/`_max` gauges.
//! - `GET /health` — run phase, epoch/step progress, last-step age,
//!   and watchdog state ([`crate::watch`]) as JSON.
//! - `GET /runs` and `GET /runs/<id>` — [`crate::RunStore`] summaries
//!   of the manifest directory as JSON.
//! - `GET /events` — live manifest events (epoch, insight, blame,
//!   sched cell start/end, sys samples, alerts) as Server-Sent Events.
//!
//! ## Overhead policy
//!
//! The established invariant: with the server off, the hot path adds
//! **one relaxed atomic load per step and zero allocations**
//! ([`heartbeat`] is the only per-step hook; gated by a counting-
//! allocator test). With the server on, training losses stay
//! bit-identical — the server only *observes* (sink tee + atomic
//! snapshots); it never touches RNG, scheduling, or numerics.
//!
//! ## Broadcast ring / drop policy
//!
//! `/events` is fed by an [`EventTap`] sink teed into the global sink
//! table: events are pre-rendered to JSON once and pushed into a
//! bounded ring (capacity [`RING_CAP`]). Slow consumers that fall more
//! than a ring behind **drop** the missed events — counted in the
//! `live/dropped_events` counter and announced in-stream as a
//! `dropped` SSE event — so a stalled `curl` can never apply
//! backpressure to the trainer.

use std::collections::VecDeque;
use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::event::{push_json_str, Event};
use crate::sink::Sink;
use crate::store::{MetricValue, RunStore, RunSummary};

/// Broadcast ring capacity (events retained for late/slow consumers).
const RING_CAP: usize = 1024;

/// Accept-loop poll interval (the listener is non-blocking so shutdown
/// never waits on `accept`).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How long an idle `/events` consumer waits before emitting an SSE
/// keep-alive comment (and re-checking the stop flag).
const SSE_IDLE: Duration = Duration::from_millis(250);

// ---------------------------------------------------------------------
// Run status: phase + step progress shared with /health and the watchdog
// ---------------------------------------------------------------------

/// Coarse run phase reported in `/health` and used by the watchdog's
/// step-stall rule (which only fires while training).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No instrumented phase active.
    Idle,
    /// Dataset simulation / windowing / model build.
    Prepare,
    /// The training loop.
    Train,
    /// A validation pass inside training.
    Validate,
    /// Inference over a split.
    Predict,
    /// A scheduled Fig-1/Fig-2 sweep.
    Sweep,
}

const PHASE_NAMES: [&str; 6] = ["idle", "prepare", "train", "validate", "predict", "sweep"];

impl Phase {
    /// Stable lower-case name (`/health` vocabulary).
    pub fn name(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }
}

/// Number of live trackers (server instances + armed watchdogs). The
/// per-step [`heartbeat`] early-outs on this single relaxed load.
static TRACKERS: AtomicUsize = AtomicUsize::new(0);
static PHASE: AtomicUsize = AtomicUsize::new(0);
static EPOCH: AtomicU64 = AtomicU64::new(0);
static STEP: AtomicU64 = AtomicU64::new(0);
/// `elapsed_ns` of the last heartbeat; 0 = no step seen yet.
static LAST_STEP_NS: AtomicU64 = AtomicU64::new(0);

/// True when a live server or watchdog is consuming heartbeats.
pub fn tracking() -> bool {
    TRACKERS.load(Ordering::Relaxed) != 0
}

pub(crate) fn track() {
    TRACKERS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn untrack() {
    TRACKERS.fetch_sub(1, Ordering::Relaxed);
}

/// Per-step progress hook for the trainer. With no live server and no
/// watchdog this is **one relaxed atomic load** and returns; otherwise
/// it stores epoch/step/timestamp (still allocation-free).
#[inline]
pub fn heartbeat(epoch: usize, step: usize) {
    if TRACKERS.load(Ordering::Relaxed) == 0 {
        return;
    }
    EPOCH.store(epoch as u64, Ordering::Relaxed);
    STEP.store(step as u64, Ordering::Relaxed);
    LAST_STEP_NS.store(crate::elapsed_ns().max(1), Ordering::Relaxed);
}

/// RAII phase marker: sets the global phase, restores the previous one
/// on drop (phases nest — validation inside training).
pub struct PhaseGuard {
    prev: usize,
}

/// Enters a phase for the lifetime of the returned guard.
pub fn phase(p: Phase) -> PhaseGuard {
    PhaseGuard { prev: PHASE.swap(p as usize, Ordering::Relaxed) }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        PHASE.store(self.prev, Ordering::Relaxed);
    }
}

/// The current phase.
pub fn current_phase() -> Phase {
    match PHASE.load(Ordering::Relaxed) {
        1 => Phase::Prepare,
        2 => Phase::Train,
        3 => Phase::Validate,
        4 => Phase::Predict,
        5 => Phase::Sweep,
        _ => Phase::Idle,
    }
}

/// `(epoch, step)` of the last heartbeat.
pub fn progress() -> (u64, u64) {
    (EPOCH.load(Ordering::Relaxed), STEP.load(Ordering::Relaxed))
}

/// Seconds since the last heartbeat (`None` before the first step).
pub fn last_step_age() -> Option<f64> {
    match LAST_STEP_NS.load(Ordering::Relaxed) {
        0 => None,
        ns => Some((crate::elapsed_ns().saturating_sub(ns)) as f64 * 1e-9),
    }
}

/// Clears progress state (run isolation; used by tests and run start).
pub fn reset_progress() {
    EPOCH.store(0, Ordering::Relaxed);
    STEP.store(0, Ordering::Relaxed);
    LAST_STEP_NS.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Event tap: bounded broadcast ring teed into the sink layer
// ---------------------------------------------------------------------

/// Is this event kind part of the live `/events` stream? Metric
/// snapshots and spans are high-volume registry detail; everything a
/// human tails stays in.
fn streamed(kind: &str) -> bool {
    matches!(
        kind,
        "run_start"
            | "run_end"
            | "epoch"
            | "insight"
            | "blame"
            | "alert"
            | "sys"
            | "cell_start"
            | "cell_end"
            | "sched_start"
            | "sched_end"
            | "checkpoint"
            | "checkpoint_failed"
            | "resume"
            | "skipped_step"
            | "divergence_rollback"
            | "divergence_giveup"
            | "reload"
            | "breaker"
    )
}

struct TapInner {
    /// Sequence number the *next* pushed event will get.
    next_seq: u64,
    /// `(seq, kind, json)` — newest at the back.
    ring: VecDeque<(u64, String, String)>,
}

/// The broadcast sink: pre-renders each streamed event to JSON and
/// fans it out to every connected `/events` consumer via the ring.
struct EventTap {
    inner: Mutex<TapInner>,
    cv: Condvar,
}

impl EventTap {
    fn new() -> Self {
        EventTap {
            inner: Mutex::new(TapInner { next_seq: 0, ring: VecDeque::with_capacity(RING_CAP) }),
            cv: Condvar::new(),
        }
    }
}

impl Sink for EventTap {
    fn on_event(&self, event: &Event) {
        if !streamed(&event.kind) {
            return;
        }
        // Render outside the lock: consumers share the one string.
        let json = event.to_json();
        let mut g = self.inner.lock().expect("live tap poisoned");
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.ring.len() == RING_CAP {
            g.ring.pop_front();
        }
        g.ring.push_back((seq, event.kind.clone(), json));
        drop(g);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// The live telemetry server (RAII: dropping it stops the accept loop,
/// joins every connection thread, and removes the event tap).
pub struct LiveServer {
    addr: SocketAddr,
    run: Option<String>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    tap: Arc<EventTap>,
    tap_sink: Arc<dyn Sink>,
    accept: Option<JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `addr` (e.g. `127.0.0.1:9898`; port 0 picks a free port)
    /// and starts serving. The manifest directory for `/runs` defaults
    /// to `reports/runs`.
    pub fn start(addr: &str) -> std::io::Result<LiveServer> {
        Self::start_with(addr, None, None)
    }

    /// [`LiveServer::start`] with an attached run name (shown in
    /// `/health`) and an explicit `/runs` manifest directory.
    pub fn start_with(
        addr: &str,
        run: Option<&str>,
        runs_dir: Option<&Path>,
    ) -> std::io::Result<LiveServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let tap = Arc::new(EventTap::new());
        let tap_sink: Arc<dyn Sink> = tap.clone();
        crate::sink::add_sink(Arc::clone(&tap_sink));
        track();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ctx = Arc::new(ServeCtx {
            run: run.map(str::to_string),
            runs_dir: runs_dir.map(Path::to_path_buf).unwrap_or_else(|| "reports/runs".into()),
            tap: Arc::clone(&tap),
            stop: Arc::clone(&stop),
            conns: Mutex::new(Vec::new()),
        });
        let accept_ctx = Arc::clone(&ctx);
        let accept = std::thread::Builder::new()
            .name("traffic-live".into())
            .spawn(move || accept_loop(listener, accept_ctx))
            .ok();
        Ok(LiveServer { addr, run: run.map(str::to_string), stop, tap, tap_sink, accept })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The attached run name, when started from a [`crate::Run`].
    pub fn run(&self) -> Option<&str> {
        self.run.as_deref()
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake idle SSE consumers so they observe the stop flag now.
        self.tap.cv.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        crate::sink::remove_sink(&self.tap_sink);
        untrack();
    }
}

/// Shared state of one server instance.
struct ServeCtx {
    run: Option<String>,
    runs_dir: PathBuf,
    tap: Arc<EventTap>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServeCtx>) {
    loop {
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                crate::metrics::counter("live/requests").inc();
                let conn_ctx = Arc::clone(&ctx);
                let handle = std::thread::Builder::new()
                    .name("traffic-live-conn".into())
                    .spawn(move || handle_conn(stream, &conn_ctx))
                    .ok();
                if let Some(h) = handle {
                    let mut conns = ctx.conns.lock().expect("live conns poisoned");
                    // Reap finished handlers so long-lived servers don't
                    // accumulate joined-but-stored handles.
                    conns.retain(|c| !c.is_finished());
                    conns.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Join connection threads: SSE loops poll the stop flag on SSE_IDLE
    // cadence and plain requests finish in one write.
    let handles = std::mem::take(&mut *ctx.conns.lock().expect("live conns poisoned"));
    for h in handles {
        let _ = h.join();
    }
}

fn handle_conn(mut stream: TcpStream, ctx: &ServeCtx) {
    // Bound reads and writes so a dead peer can never pin a thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    match path.as_str() {
        "/metrics" => respond(&mut stream, 200, "text/plain; version=0.0.4", &prometheus_text()),
        "/health" => respond(&mut stream, 200, "application/json", &health_json(ctx)),
        "/runs" => match runs_json(&ctx.runs_dir) {
            Ok(body) => respond(&mut stream, 200, "application/json", &body),
            Err(e) => respond(&mut stream, 500, "text/plain", &format!("cannot index runs: {e}\n")),
        },
        "/events" => sse_loop(&mut stream, ctx),
        "/" => respond(
            &mut stream,
            200,
            "text/plain",
            "traffic-live endpoints: /metrics /health /runs /runs/<id> /events\n",
        ),
        p => {
            if let Some(id) = p.strip_prefix("/runs/") {
                match run_json(&ctx.runs_dir, id) {
                    Some(body) => respond(&mut stream, 200, "application/json", &body),
                    None => respond(&mut stream, 404, "text/plain", "no such run\n"),
                }
            } else {
                respond(&mut stream, 404, "text/plain", "not found\n");
            }
        }
    }
}

/// Reads the request head and returns the path of a `GET` request
/// (query strings are stripped; anything else is `None`).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next()?.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

// ---------------------------------------------------------------------
// /events — Server-Sent Events
// ---------------------------------------------------------------------

fn sse_loop(stream: &mut TcpStream, ctx: &ServeCtx) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let dropped_counter = crate::metrics::counter("live/dropped_events");
    // Start at the oldest retained event so a late consumer sees recent
    // history immediately, then follows live.
    let mut next = {
        let g = ctx.tap.inner.lock().expect("live tap poisoned");
        g.next_seq - g.ring.len() as u64
    };
    loop {
        let mut batch: Vec<(String, String)> = Vec::new();
        let mut dropped = 0u64;
        {
            let mut g = ctx.tap.inner.lock().expect("live tap poisoned");
            loop {
                if ctx.stop.load(Ordering::Relaxed) {
                    return;
                }
                let oldest = g.next_seq - g.ring.len() as u64;
                if next < oldest {
                    // Slow consumer: the ring lapped us. Drop and jump.
                    dropped = oldest - next;
                    next = oldest;
                }
                if next < g.next_seq {
                    for (seq, kind, json) in g.ring.iter() {
                        if *seq >= next {
                            batch.push((kind.clone(), json.clone()));
                        }
                    }
                    next = g.next_seq;
                    break;
                }
                let (guard, timeout) =
                    ctx.tap.cv.wait_timeout(g, SSE_IDLE).expect("live tap poisoned");
                g = guard;
                if timeout.timed_out() {
                    break; // emit a keep-alive below, re-check stop
                }
            }
        }
        if dropped > 0 {
            dropped_counter.add(dropped);
            if stream
                .write_all(format!("event: dropped\ndata: {{\"count\":{dropped}}}\n\n").as_bytes())
                .is_err()
            {
                return;
            }
        }
        if batch.is_empty() {
            // Keep-alive comment: lets dead peers surface as write errors.
            if stream.write_all(b": keepalive\n\n").is_err() || stream.flush().is_err() {
                return;
            }
            continue;
        }
        for (kind, json) in &batch {
            if stream.write_all(format!("event: {kind}\ndata: {json}\n\n").as_bytes()).is_err() {
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// /metrics — Prometheus text exposition
// ---------------------------------------------------------------------

/// Sanitizes a registry metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with `traffic_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("traffic_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus sample-value formatting (`NaN`/`+Inf`/`-Inf` spelled per
/// the exposition grammar).
fn prom_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        v.to_string()
    }
}

/// Renders the whole live metric registry in Prometheus text
/// exposition format. Counters export as `<name>_total`; histograms as
/// the standard `_bucket`/`_sum`/`_count` series over the non-empty
/// log buckets plus exact `_min`/`_max` gauges. A gauge whose family
/// name collides with a histogram's (e.g. `train.grad_norm` is both)
/// exports as `<name>_current`.
pub fn prometheus_text() -> String {
    let (counters, gauges, histograms) = crate::metrics::export_lists();
    let hist_names: Vec<String> = histograms.iter().map(|(n, _)| prom_name(n)).collect();
    let mut out = String::with_capacity(4096);
    for (name, c) in &counters {
        let n = format!("{}_total", prom_name(name));
        out.push_str(&format!("# HELP {n} counter `{name}`\n# TYPE {n} counter\n"));
        out.push_str(&format!("{n} {}\n", c.get()));
    }
    for (name, g) in &gauges {
        let mut n = prom_name(name);
        if hist_names.contains(&n) {
            n.push_str("_current");
        }
        out.push_str(&format!("# HELP {n} gauge `{name}`\n# TYPE {n} gauge\n"));
        out.push_str(&format!("{n} {}\n", prom_value(g.get())));
    }
    for (name, h) in &histograms {
        let n = prom_name(name);
        out.push_str(&format!("# HELP {n} log-bucket histogram `{name}`\n# TYPE {n} histogram\n"));
        let (buckets, total) = h.cumulative_buckets();
        for (upper, cum) in &buckets {
            out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", prom_value(*upper)));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {total}\n"));
        out.push_str(&format!("{n}_sum {}\n", prom_value(h.sum())));
        out.push_str(&format!("{n}_count {total}\n"));
        // Exact extrema ride along as gauges (Prometheus histograms
        // have no native min/max series).
        if h.count() > 0 && h.min().is_finite() {
            for (suffix, v) in [("min", h.min()), ("max", h.max())] {
                out.push_str(&format!(
                    "# HELP {n}_{suffix} exact {suffix} of `{name}`\n\
                     # TYPE {n}_{suffix} gauge\n{n}_{suffix} {}\n",
                    prom_value(v)
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// /health and /runs — JSON rendering
// ---------------------------------------------------------------------

fn push_kv_str(out: &mut String, key: &str, val: &str) {
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, val);
}

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

fn health_json(ctx: &ServeCtx) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_kv_str(&mut out, "phase", current_phase().name());
    let (epoch, step) = progress();
    out.push_str(&format!(",\"epoch\":{epoch},\"step\":{step},\"last_step_age_s\":"));
    match last_step_age() {
        Some(age) => push_num(&mut out, age),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"uptime_s\":{}", crate::elapsed_ms() / 1e3));
    if let Some(run) = &ctx.run {
        out.push(',');
        push_kv_str(&mut out, "run", run);
    }
    // Serving section: only rendered when a serve queue exists in this
    // process (the high-water gauge is set by its constructor).
    let high_water = crate::metrics::gauge("serve/queue_high_water").get();
    if high_water > 0.0 {
        let c = |name: &str| crate::metrics::counter(name).get();
        out.push_str(&format!(
            ",\"serving\":{{\"state\":\"{}\",\"queue_depth\":{},\"high_water\":{},\
             \"requests\":{},\"ok\":{},\"degraded\":{},\"shed\":{},\"timeouts\":{},\
             \"breaker_trips\":{},\"reloads\":{},\"reload_failures\":{}}}",
            if crate::metrics::gauge("serve/breaker_open").get() > 0.0 {
                "DEGRADED"
            } else {
                "HEALTHY"
            },
            crate::metrics::gauge("serve/queue_depth").get(),
            high_water,
            c("serve/requests"),
            c("serve/ok"),
            c("serve/degraded"),
            c("serve/shed"),
            c("serve/timeouts"),
            c("serve/breaker_trips"),
            c("serve/reloads"),
            c("serve/reload_failures"),
        ));
    }
    out.push_str(",\"watchdog\":{");
    out.push_str(&format!("\"armed\":{},\"alerts\":[", crate::watch::armed()));
    for (i, a) in crate::watch::active_alerts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_kv_str(&mut out, "rule", a.rule);
        out.push(',');
        push_kv_str(&mut out, "message", &a.message);
        out.push_str(",\"value\":");
        push_num(&mut out, a.value);
        out.push_str(",\"threshold\":");
        push_num(&mut out, a.threshold);
        out.push_str(&format!(",\"since_ms\":{}", a.since_ms));
        out.push('}');
    }
    out.push_str("]}}");
    out
}

fn summary_json(r: &RunSummary, full: bool) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_kv_str(&mut out, "name", &r.name);
    out.push(',');
    push_kv_str(&mut out, "git", &r.git);
    out.push_str(&format!(",\"threads\":{},\"events\":{}", r.threads, r.events));
    out.push_str(&format!(",\"epochs\":{},\"malformed\":{}", r.epochs.len(), r.malformed));
    out.push_str(",\"wall_s\":");
    match r.wall_s {
        Some(w) => push_num(&mut out, w),
        None => out.push_str("null"),
    }
    if let Some(e) = r.epochs.last() {
        out.push_str(",\"final_loss\":");
        push_num(&mut out, e.loss);
    }
    out.push_str(&format!(",\"alerts\":{}", r.alerts.len()));
    if full {
        out.push_str(",\"losses\":[");
        for (i, e) in r.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_num(&mut out, e.loss);
        }
        out.push_str("],\"metrics\":{");
        let mut first = true;
        for (name, m) in &r.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_str(&mut out, name);
            out.push(':');
            match m {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => push_num(&mut out, *v),
                MetricValue::Histogram { count, mean, min, max, p50, p90, p99 } => {
                    out.push_str("{\"count\":");
                    push_num(&mut out, *count);
                    for (k, v) in [
                        ("mean", mean),
                        ("min", min),
                        ("max", max),
                        ("p50", p50),
                        ("p90", p90),
                        ("p99", p99),
                    ] {
                        out.push_str(&format!(",\"{k}\":"));
                        push_num(&mut out, *v);
                    }
                    out.push('}');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn runs_json(dir: &Path) -> std::io::Result<String> {
    let store = RunStore::index(dir)?;
    let mut out = String::from("[");
    for (i, r) in store.runs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&summary_json(r, false));
    }
    out.push(']');
    Ok(out)
}

fn run_json(dir: &Path, id: &str) -> Option<String> {
    let store = RunStore::index(dir).ok()?;
    store.get(id).map(|r| summary_json(r, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_and_phase_roundtrip() {
        reset_progress();
        assert_eq!(current_phase(), Phase::Idle);
        {
            let _p = phase(Phase::Train);
            assert_eq!(current_phase(), Phase::Train);
            {
                let _v = phase(Phase::Validate);
                assert_eq!(current_phase(), Phase::Validate);
            }
            assert_eq!(current_phase(), Phase::Train, "phases nest and restore");
        }
        assert_eq!(current_phase(), Phase::Idle);
        // Untracked heartbeats are dropped (one-atomic fast path).
        heartbeat(3, 41);
        assert_eq!(progress(), (0, 0));
        assert_eq!(last_step_age(), None);
        track();
        heartbeat(3, 42);
        untrack();
        assert_eq!(progress(), (3, 42));
        assert!(last_step_age().unwrap() >= 0.0);
        reset_progress();
    }

    #[test]
    fn prom_names_are_grammar_safe() {
        assert_eq!(prom_name("train.batch_s"), "traffic_train_batch_s");
        assert_eq!(prom_name("mem/pool_hits"), "traffic_mem_pool_hits");
        assert_eq!(prom_value(f64::NAN), "NaN");
        assert_eq!(prom_value(f64::INFINITY), "+Inf");
        assert_eq!(prom_value(0.25), "0.25");
    }

    #[test]
    fn prometheus_text_is_line_well_formed() {
        crate::metrics::counter("livetest/ticks").add(3);
        crate::metrics::gauge("livetest/load").set(0.5);
        let h = crate::metrics::histogram("livetest/lat_s");
        h.record(0.01);
        h.record(0.02);
        let text = prometheus_text();
        assert!(text.contains("traffic_livetest_ticks_total 3"));
        assert!(text.contains("traffic_livetest_load 0.5"));
        assert!(text.contains("traffic_livetest_lat_s_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("traffic_livetest_lat_s_count 2"));
        assert!(text.contains("traffic_livetest_lat_s_min 0.01"));
        assert!(text.contains("traffic_livetest_lat_s_max 0.02"));
        for line in text.lines() {
            let ok = line.starts_with("# HELP ") || line.starts_with("# TYPE ") || {
                let mut it = line.rsplitn(2, ' ');
                let val = it.next().unwrap_or("");
                let name = it.next().unwrap_or("");
                !name.is_empty() && (val.parse::<f64>().is_ok() || val == "+Inf" || val == "NaN")
            };
            assert!(ok, "malformed exposition line: {line}");
        }
    }

    #[test]
    fn streamed_filters_registry_noise() {
        assert!(streamed("epoch"));
        assert!(streamed("alert"));
        assert!(streamed("sys"));
        assert!(!streamed("metric"));
        assert!(!streamed("op_stat"));
    }
}
