//! Extension experiment: rolling-origin (time-series) cross-validation —
//! trains on growing history, evaluates each fold's held-out future block,
//! and reports the variance the paper approximates with 5 repeated runs.
//!
//! ```text
//! cargo run --release --example rolling_validation [-- --scale smoke|quick]
//! ```

use traffic_suite::core::{predict, train, TrainConfig};
use traffic_suite::data::{
    dataset_info, prepare_with_split, rolling_origin_splits, simulate, SimConfig,
};
use traffic_suite::metrics::{evaluate, mean_std};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    let info = dataset_info("PeMSD8").expect("catalog entry");
    let sim = SimConfig::for_dataset(info, scale.dataset_scale);
    let dataset = simulate(&sim);
    println!(
        "== Rolling-origin validation: Graph-WaveNet on {} ({} sensors × {} days) ==",
        dataset.name,
        dataset.num_nodes(),
        dataset.num_days()
    );
    let ctx = GraphContext::from_network(&dataset.network, 4);
    let folds = rolling_origin_splits(dataset.num_steps(), 3, 0.5);
    let mut maes = Vec::new();
    for (i, split) in folds.into_iter().enumerate() {
        let data = prepare_with_split(&dataset, 12, 12, split.clone());
        if data.test.is_empty() {
            println!("fold {i}: test block too short, skipped");
            continue;
        }
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(i as u64);
        let model = build_model("Graph-WaveNet", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: scale.epochs,
            batch_size: scale.batch_size,
            max_batches_per_epoch: scale.max_train_batches,
            seed: i as u64,
            ..Default::default()
        };
        train(model.as_ref(), &data, &cfg);
        let test = match scale.max_test_samples {
            Some(cap) => data.test.truncate(cap),
            None => data.test.clone(),
        };
        let m = evaluate(
            &predict(model.as_ref(), &test, &data.scaler, scale.batch_size),
            &test.y_raw,
            None,
        );
        println!(
            "fold {i}: train steps {:>6}, test block [{}, {}): {m}",
            split.train.len(),
            split.test.start,
            split.test.end
        );
        maes.push(m.mae);
    }
    let (mean, std) = mean_std(&maes);
    println!("\nacross folds: MAE {mean:.3} ± {std:.3}");
}
