#!/usr/bin/env bash
# End-to-end smoke test for the live telemetry layer: a real training
# run served over HTTP while it is scraped, then proven unperturbed.
#
# 1. Runs `live demo` (2-epoch STGCN) with TRAFFIC_LIVE=127.0.0.1:0 in
#    the background; the demo holds the server open after training so
#    this script has a stable probe window.
# 2. curl /metrics — every line must be Prometheus text exposition
#    (`# HELP`/`# TYPE` or `name[{labels}] value`), and the training
#    counter families must be present.
# 3. curl /health — must parse as JSON and report the run name.
# 4. curl /events — the SSE stream must replay at least one epoch event.
# 5. Exercises the `live attach` client against the same server.
# 6. Reruns the demo with the server OFF and byte-compares the
#    `loss[i]=<bits>` lines: observation must not change training.
#
# Usage: scripts/live_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/live_smoke.XXXXXX")
DEMO_PID=""
cleanup() {
  [[ -n "$DEMO_PID" ]] && kill "$DEMO_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -q --bin live

echo "[live_smoke] 1/6 demo run with TRAFFIC_LIVE…"
TRAFFIC_LIVE=127.0.0.1:0 target/release/live demo --epochs 2 --hold-ms 20000 \
  >"$WORK/served.log" 2>&1 &
DEMO_PID=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's|^serving http://\([^ ]*\).*|\1|p' "$WORK/served.log" | head -1)
  [[ -n "$ADDR" ]] && break
  kill -0 "$DEMO_PID" 2>/dev/null || { echo "FAIL: demo died before serving"; cat "$WORK/served.log"; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "FAIL: demo never printed its server address"; cat "$WORK/served.log"; exit 1; }
echo "[live_smoke]     serving at $ADDR"

echo "[live_smoke] 2/6 /metrics exposition format…"
curl -sf "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^# TYPE traffic_train_batches_total counter$' "$WORK/metrics.txt" || {
  echo "FAIL: /metrics is missing the training counter family"
  head -20 "$WORK/metrics.txt"
  exit 1
}
grep -q '^traffic_train_batch_s_bucket{le="+Inf"} ' "$WORK/metrics.txt" || {
  echo "FAIL: /metrics has no histogram buckets"
  exit 1
}
awk '
  /^# (HELP|TYPE) /                                  { next }
  /^[A-Za-z_:][A-Za-z0-9_:]*({[^}]*})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$/ { next }
  { print "malformed: " $0; bad = 1 }
  END { exit bad }
' "$WORK/metrics.txt" || { echo "FAIL: /metrics line not in exposition format"; exit 1; }

echo "[live_smoke] 3/6 /health JSON…"
curl -sf "http://$ADDR/health" >"$WORK/health.json"
python3 - "$WORK/health.json" <<'EOF'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["run"] == "live-demo", h
assert "phase" in h and "epoch" in h and "step" in h, h
assert "watchdog" in h, h
EOF

echo "[live_smoke] 4/6 /events SSE replay…"
# The ring replays from the oldest retained event; training is done, so
# the epoch events are already in it. curl exits 28 at --max-time.
curl -sN --max-time 3 "http://$ADDR/events" >"$WORK/events.txt" || true
grep -q '^event: epoch$' "$WORK/events.txt" || {
  echo "FAIL: /events streamed no epoch event"
  head -20 "$WORK/events.txt"
  exit 1
}

echo "[live_smoke] 5/6 live attach client…"
target/release/live attach "$ADDR" | tee "$WORK/attach.log"
grep -q '^run     live-demo$' "$WORK/attach.log" || {
  echo "FAIL: 'live attach' did not report the run"
  exit 1
}

kill "$DEMO_PID" 2>/dev/null || true
wait "$DEMO_PID" 2>/dev/null || true
DEMO_PID=""

echo "[live_smoke] 6/6 server-off run must be bit-identical…"
target/release/live demo --epochs 2 >"$WORK/plain.log" 2>&1
grep '^loss\[' "$WORK/served.log" >"$WORK/served.losses"
grep '^loss\[' "$WORK/plain.log" >"$WORK/plain.losses"
[[ -s "$WORK/served.losses" ]] || { echo "FAIL: served run printed no losses"; cat "$WORK/served.log"; exit 1; }
if ! cmp -s "$WORK/served.losses" "$WORK/plain.losses"; then
  echo "FAIL: losses differ with the live server on vs off"
  diff "$WORK/served.losses" "$WORK/plain.losses" || true
  exit 1
fi

echo "[live_smoke] OK"
