#!/usr/bin/env bash
# End-to-end smoke test for the insight layer: telemetry example →
# manifest → run store → CLI → offline dashboard.
#
# 1. Runs the telemetry example at smoke scale (insight sampling and the
#    system sampler both on), which writes reports/runs/telemetry-demo.jsonl
#    and exports reports/insight/telemetry-demo.html itself.
# 2. Asserts the dashboard is non-empty, well-formed, self-contained HTML.
# 3. Exercises the `insight` CLI: list, show, a regeneration of the
#    dashboard, and a self-diff — a run diffed against itself must report
#    zero regressions and exit 0.
#
# Usage: scripts/insight_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/insight_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

echo "[insight_smoke] 1/3 telemetry example (smoke scale)…"
cargo run --release -q --example telemetry -- --scale smoke >"$WORK/telemetry.log" 2>&1 || {
  echo "FAIL: telemetry example did not complete"
  cat "$WORK/telemetry.log"
  exit 1
}
grep -q '^dashboard: ' "$WORK/telemetry.log" || {
  echo "FAIL: example did not export the dashboard"
  exit 1
}

echo "[insight_smoke] 2/3 dashboard well-formedness…"
DASH=reports/insight/telemetry-demo.html
[[ -s "$DASH" ]] || { echo "FAIL: $DASH missing or empty"; exit 1; }
grep -q '<!DOCTYPE html>' "$DASH" || { echo "FAIL: $DASH has no doctype"; exit 1; }
grep -q '</html>' "$DASH" || { echo "FAIL: $DASH is truncated (no </html>)"; exit 1; }
grep -q '<svg' "$DASH" || { echo "FAIL: $DASH renders no charts"; exit 1; }
# Self-contained means zero external fetches and zero scripting.
if grep -qiE '<script|https?://|src=|@import' "$DASH"; then
  echo "FAIL: $DASH references external resources or scripts"
  exit 1
fi
open_svg=$(grep -o '<svg' "$DASH" | wc -l)
close_svg=$(grep -o '</svg>' "$DASH" | wc -l)
[[ "$open_svg" -eq "$close_svg" && "$open_svg" -gt 0 ]] || {
  echo "FAIL: unbalanced <svg> tags ($open_svg open, $close_svg close)"
  exit 1
}

echo "[insight_smoke] 3/3 insight CLI…"
insight() { cargo run --release -q --bin insight -- "$@"; }
insight list | tee "$WORK/list.log"
grep -q 'telemetry-demo' "$WORK/list.log" || {
  echo "FAIL: 'insight list' does not show the run"
  exit 1
}
insight show telemetry-demo >"$WORK/show.log"
grep -q '^insight .* samples across ' "$WORK/show.log" || {
  echo "FAIL: 'insight show' reports no health samples"
  cat "$WORK/show.log"
  exit 1
}
insight html telemetry-demo --out "$WORK/html" >/dev/null
[[ -s "$WORK/html/telemetry-demo.html" ]] || {
  echo "FAIL: 'insight html' wrote nothing"
  exit 1
}
# A run diffed against itself has zero deltas; a nonzero exit here would
# mean the regression detector flags noise.
insight diff telemetry-demo telemetry-demo | tee "$WORK/diff.log"
grep -q '0 regressed' "$WORK/diff.log" || {
  echo "FAIL: self-diff reported regressions"
  exit 1
}

echo "[insight_smoke] OK"
