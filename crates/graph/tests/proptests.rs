//! Property tests for graph machinery: adjacency invariants, Laplacian
//! spectra, transition stochasticity, embedding sanity — on randomly
//! generated road networks of every topology.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_graph::{
    backward_transition, forward_transition, gaussian_adjacency, normalized_laplacian,
    row_normalize, scaled_laplacian, spectral_embedding, symmetrize, RoadNetwork,
};

fn any_network() -> impl Strategy<Value = RoadNetwork> {
    (0u8..3, 8usize..24, 0u64..1000).prop_map(|(kind, n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        match kind {
            0 => traffic_graph::freeway_corridor(n, 1.0, &mut rng),
            1 => traffic_graph::random_geometric(n, 8.0, 3.0, &mut rng),
            _ => traffic_graph::metro_mix(n.max(8), &mut rng),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gaussian_adjacency_well_formed(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        let n = net.num_nodes();
        prop_assert_eq!(a.shape(), &[n, n]);
        prop_assert!(!a.has_non_finite());
        // weights in [0, 1], diagonal 1
        for i in 0..n {
            prop_assert_eq!(a.at(&[i, i]), 1.0);
            for j in 0..n {
                let v = a.at(&[i, j]);
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        // at least the corridor/graph edges survive thresholding
        let nnz = a.as_slice().iter().filter(|&&v| v > 0.0).count();
        prop_assert!(nnz > n, "adjacency degenerated to identity");
    }

    #[test]
    fn transitions_row_stochastic(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        for p in [forward_transition(&a), backward_transition(&a)] {
            let n = net.num_nodes();
            for i in 0..n {
                let sum: f32 = (0..n).map(|j| p.at(&[i, j])).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4 || sum == 0.0, "row {i} sums {sum}");
            }
        }
    }

    #[test]
    fn laplacian_psd_and_bounded(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        let l = normalized_laplacian(&a);
        let eig = traffic_graph::eigen::sym_eigen(&l, 14);
        prop_assert!(eig.values[0] > -1e-3, "λmin {}", eig.values[0]);
        prop_assert!(*eig.values.last().unwrap() < 2.0 + 1e-3);
        // symmetric
        let n = net.num_nodes();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((l.at(&[i, j]) - l.at(&[j, i])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn scaled_laplacian_in_unit_disc(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        let lt = scaled_laplacian(&a);
        let eig = traffic_graph::eigen::sym_eigen(&lt, 14);
        prop_assert!(eig.values[0] > -1.0 - 1e-2);
        prop_assert!(*eig.values.last().unwrap() < 1.0 + 1e-2);
    }

    #[test]
    fn symmetrize_idempotent_and_dominates(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        let s = symmetrize(&a);
        prop_assert_eq!(symmetrize(&s), s.clone());
        for (x, y) in s.as_slice().iter().zip(a.as_slice()) {
            prop_assert!(x >= y);
        }
    }

    #[test]
    fn row_normalize_preserves_zero_pattern(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        let p = row_normalize(&a);
        for (x, y) in p.as_slice().iter().zip(a.as_slice()) {
            prop_assert_eq!(*x == 0.0, *y == 0.0);
        }
    }

    #[test]
    fn embedding_finite_and_nontrivial(net in any_network()) {
        let a = gaussian_adjacency(&net, 0.05);
        let e = spectral_embedding(&a, 6);
        prop_assert!(!e.has_non_finite());
        prop_assert_eq!(e.shape(), &[net.num_nodes(), 6]);
        // first column (Fiedler-ish) must not be constant
        let n = net.num_nodes();
        let col0: Vec<f32> = (0..n).map(|i| e.at(&[i, 0])).collect();
        let spread = col0.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - col0.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assert!(spread > 1e-4, "embedding collapsed");
    }

    #[test]
    fn generators_produce_connected_usable_graphs(net in any_network()) {
        prop_assert!(net.isolated_nodes().is_empty());
        prop_assert!(net.num_edges() >= net.num_nodes() - 1);
        for e in net.edges() {
            prop_assert!(e.distance_km > 0.0);
        }
    }
}
