//! Trainer-level insight invariants: blame reports under injected
//! faults, and bit-identical losses with sampling on vs off. Both
//! tests touch process-global state (the fault registry), so they
//! serialize on one mutex.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_core::{train, TrainConfig};
use traffic_data::{prepare, simulate, PreparedData, SimConfig, Task};
use traffic_models::{build_model, GraphContext};
use traffic_obs::faults::{self, FaultMode};

static GLOBALS: Mutex<()> = Mutex::new(());

fn tiny_setup() -> (PreparedData, GraphContext) {
    let ds = simulate(&SimConfig::new("insight", Task::Speed, 6, 4));
    let prepared = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    (prepared, ctx)
}

/// The `nan_grad` fault site (what `TRAFFIC_FAULTS=nan_grad@3` arms
/// from the environment) poisons every captured gradient; the skipped
/// step must produce a blame report naming the poisoned groups.
#[test]
fn nan_grad_fault_produces_blame_report() {
    let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    faults::reset();
    let (data, ctx) = tiny_setup();
    let mut rng = StdRng::seed_from_u64(11);
    let model = build_model("STGCN", &ctx, &mut rng);
    faults::arm("nan_grad", 3, FaultMode::Soft);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        max_batches_per_epoch: Some(6),
        insight_every: Some(1),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);
    faults::reset();

    assert_eq!(report.skipped_steps, 1, "poisoned grads skip exactly one step");
    let blame = report.blame.expect("skipped step must capture blame");
    assert_eq!(blame.reason, "non_finite_grad");
    assert_eq!(blame.step, 2, "fault armed at the 3rd batch (0-based global step 2)");
    assert!(!blame.entries.is_empty(), "every parameter group is examined");
    let culprit = blame.culprit().expect("a poisoned group must be accused");
    assert!(culprit.non_finite, "the culprit's gradient was non-finite: {culprit:?}");
    assert!(culprit.spike.is_infinite());
    assert!(blame.render().contains(&culprit.group));
    // Training recovered: weights stayed finite and later steps ran.
    assert!(!model.store().has_non_finite());
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
}

/// Telemetry must be observation-only: the loss sequence with
/// per-step sampling is bit-identical to a run with insight off.
#[test]
fn insight_sampling_never_changes_the_losses() {
    let _lock = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    faults::reset();
    let (data, ctx) = tiny_setup();
    let run_with = |insight_every: Option<usize>| {
        let mut rng = StdRng::seed_from_u64(21);
        let model = build_model("STGCN", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_batches_per_epoch: Some(5),
            insight_every,
            ..Default::default()
        };
        train(model.as_ref(), &data, &cfg).epoch_losses
    };
    // Some(0) forces sampling off regardless of TRAFFIC_INSIGHT.
    let off = run_with(Some(0));
    let on = run_with(Some(1));
    assert_eq!(off.len(), on.len());
    for (epoch, (a, b)) in off.iter().zip(&on).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "epoch {epoch} loss must be bit-identical: {a} vs {b}"
        );
    }
}
