//! # traffic-data
//!
//! Data layer for the reproduction: the seven-dataset catalog of the
//! paper's Table I, a synthetic PeMS-like traffic simulator standing in
//! for the proprietary downloads, normalisation (z-score values, min-max
//! timestamps), `T' = T = 12` sliding windows over a chronological 7:1:2
//! split, mini-batching, and the difficult-interval extraction of §V-B
//! (30-minute moving std, upper 25%).

pub mod catalog;
pub mod dataset;
pub mod intervals;
pub mod io;
pub mod loader;
pub mod normalize;
pub mod simulate;
pub mod split;
pub mod window;

pub use catalog::{
    dataset_info, flow_datasets, speed_datasets, DatasetInfo, Task, Topology, DATASETS,
};
pub use dataset::{TrafficDataset, STEPS_PER_DAY};
pub use intervals::{
    difficult_mask, difficult_mask_range, difficult_runs, moving_std, quantile, PAPER_QUANTILE,
    PAPER_WINDOW,
};
pub use io::{load_dataset, save_dataset, IoError};
pub use loader::{batches, Batch};
pub use normalize::{MinMax, ZScore};
pub use simulate::{inject_incident, simulate, SimConfig};
pub use split::{chronological_split, paper_split, rolling_origin_splits, SplitRanges};
pub use window::{prepare, prepare_with_split, PreparedData, WindowedData};
