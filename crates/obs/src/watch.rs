//! Stall/divergence watchdog: declarative threshold rules evaluated on
//! the [`crate::sysmon`] sampling cadence.
//!
//! Rules watch the signals a human tails during a long sweep — step
//! progress, RSS vs `TRAFFIC_MEM_CAP`, mem-pool hit rate, divergence-
//! supervisor rollbacks — and raise **edge-triggered** `alert` manifest
//! events: one event when a rule first trips, one `resolved` event when
//! it clears. The active set is served by the live server's `/health`
//! endpoint, printed by the console sink, and listed in the insight
//! HTML dashboard's alert section.
//!
//! The watchdog never intervenes: it observes and reports. Arming it
//! registers as a live tracker so the trainer's [`crate::live::heartbeat`]
//! flows; disarmed, the hot path stays at one relaxed atomic load.

use std::sync::Mutex;
use std::time::Duration;

use crate::live::{self, Phase};
use crate::sysmon::ProcStat;

/// One declarative watchdog rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// No training-step progress for `after` while the run is in the
    /// `train` phase (deadlock, livelock, or an I/O hang).
    StepStall {
        /// Quiet period before the alert trips.
        after: Duration,
    },
    /// Resident set size above `frac` of `TRAFFIC_MEM_CAP`. Only
    /// evaluated when the cap env var is explicitly set — the built-in
    /// default cap bounds the tensor pool, not process RSS.
    RssNearCap {
        /// Fraction of the cap (e.g. `0.9`).
        frac: f64,
    },
    /// Mem-pool hit rate below `below` after at least `min_samples`
    /// pool requests (a collapse means the size-class mix changed and
    /// buffers stopped recycling).
    PoolHitRateCollapse {
        /// Hit-rate floor in `[0, 1]`.
        below: f64,
        /// Minimum hits+misses before the rule is live (warmup misses
        /// are expected).
        min_samples: u64,
    },
    /// More than `max` divergence-supervisor rollbacks — training is
    /// repeatedly exploding and rewinding.
    DivergenceRollbacks {
        /// Rollbacks tolerated before alerting.
        max: u64,
    },
    /// Serve queue depth at or above `frac` of its high-water mark —
    /// the server is about to shed. Dormant unless a serve queue
    /// exists (high-water gauge > 0).
    ServeQueueDepth {
        /// Fraction of the high-water mark (e.g. `0.9`).
        frac: f64,
    },
    /// More than `above` of serve requests answered `TIMEOUT`, after at
    /// least `min_requests` requests — deadlines are systematically
    /// missed, not occasionally.
    DeadlineMissRate {
        /// Miss-rate ceiling in `[0, 1]`.
        above: f64,
        /// Requests before the rule is live (a cold server's first
        /// timeouts are not a trend).
        min_requests: u64,
    },
}

impl Rule {
    /// Stable rule name used in `alert` events and `/health`.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::StepStall { .. } => "step_stall",
            Rule::RssNearCap { .. } => "rss_near_cap",
            Rule::PoolHitRateCollapse { .. } => "pool_hit_rate_collapse",
            Rule::DivergenceRollbacks { .. } => "divergence_rollbacks",
            Rule::ServeQueueDepth { .. } => "serve_queue_depth",
            Rule::DeadlineMissRate { .. } => "deadline_miss_rate",
        }
    }
}

/// The default rule set armed by `TRAFFIC_WATCHDOG=1`.
pub fn standard_rules() -> Vec<Rule> {
    vec![
        Rule::StepStall { after: Duration::from_secs(30) },
        Rule::RssNearCap { frac: 0.9 },
        Rule::PoolHitRateCollapse { below: 0.5, min_samples: 10_000 },
        Rule::DivergenceRollbacks { max: 1 },
        Rule::ServeQueueDepth { frac: 0.9 },
        Rule::DeadlineMissRate { above: 0.2, min_requests: 200 },
    ]
}

/// One currently-raised alert.
#[derive(Debug, Clone)]
pub struct Alert {
    /// [`Rule::name`] of the tripped rule.
    pub rule: &'static str,
    /// Human-readable description with the observed value.
    pub message: String,
    /// Observed value that tripped the rule.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Telemetry-clock ms when the alert was raised.
    pub since_ms: u64,
}

/// The signal snapshot a tick evaluates rules against. Plain data so
/// rule evaluation is a pure function (and unit-testable without
/// touching process-global metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct Signals {
    /// Run is in the `train` phase right now.
    pub training: bool,
    /// Seconds since the last training-step heartbeat (`None` before
    /// the first step).
    pub last_step_age_s: Option<f64>,
    /// Current RSS in bytes (`None` when /proc was unreadable).
    pub rss_bytes: Option<f64>,
    /// `TRAFFIC_MEM_CAP` in bytes, when the env var is explicitly set.
    pub mem_cap_bytes: Option<f64>,
    /// Cumulative mem-pool hits.
    pub pool_hits: u64,
    /// Cumulative mem-pool misses.
    pub pool_misses: u64,
    /// Cumulative divergence-supervisor rollbacks.
    pub rollbacks: u64,
    /// Current serve queue depth (`serve/queue_depth` gauge).
    pub serve_queue_depth: f64,
    /// Serve queue shed threshold (`serve/queue_high_water` gauge;
    /// `0` = no serve queue in this process).
    pub serve_queue_high_water: f64,
    /// Cumulative serve requests admitted or refused.
    pub serve_requests: u64,
    /// Cumulative serve requests answered `TIMEOUT`.
    pub serve_timeouts: u64,
}

impl Signals {
    /// Reads the live process-global signal sources.
    fn capture(stat: Option<&ProcStat>) -> Signals {
        Signals {
            training: live::current_phase() == Phase::Train,
            last_step_age_s: live::last_step_age(),
            rss_bytes: stat.map(|s| s.rss_bytes as f64),
            mem_cap_bytes: std::env::var("TRAFFIC_MEM_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&cap| cap > 0)
                .map(|cap| cap as f64),
            pool_hits: crate::metrics::counter("mem/pool_hits").get(),
            pool_misses: crate::metrics::counter("mem/pool_misses").get(),
            rollbacks: crate::metrics::counter("train/rollbacks").get(),
            serve_queue_depth: crate::metrics::gauge("serve/queue_depth").get(),
            serve_queue_high_water: crate::metrics::gauge("serve/queue_high_water").get(),
            serve_requests: crate::metrics::counter("serve/requests").get(),
            serve_timeouts: crate::metrics::counter("serve/timeouts").get(),
        }
    }
}

/// Pure rule evaluation: `Some((value, threshold, message))` when the
/// rule is tripped by `sig`.
fn eval(rule: &Rule, sig: &Signals) -> Option<(f64, f64, String)> {
    match rule {
        Rule::StepStall { after } => {
            let age = sig.last_step_age_s?;
            let limit = after.as_secs_f64();
            (sig.training && age > limit).then(|| {
                (age, limit, format!("no training-step progress for {age:.1}s (limit {limit:.0}s)"))
            })
        }
        Rule::RssNearCap { frac } => {
            let rss = sig.rss_bytes?;
            let cap = sig.mem_cap_bytes?;
            let limit = cap * frac;
            (rss > limit).then(|| {
                (
                    rss,
                    limit,
                    format!(
                        "rss {:.0} MiB above {:.0}% of TRAFFIC_MEM_CAP ({:.0} MiB)",
                        rss / (1 << 20) as f64,
                        frac * 100.0,
                        cap / (1 << 20) as f64
                    ),
                )
            })
        }
        Rule::PoolHitRateCollapse { below, min_samples } => {
            let total = sig.pool_hits + sig.pool_misses;
            if total < *min_samples {
                return None;
            }
            let rate = sig.pool_hits as f64 / total as f64;
            (rate < *below).then(|| {
                (
                    rate,
                    *below,
                    format!("mem-pool hit rate {rate:.2} below {below:.2} after {total} requests"),
                )
            })
        }
        Rule::DivergenceRollbacks { max } => {
            let n = sig.rollbacks;
            (n > *max).then(|| {
                (
                    n as f64,
                    *max as f64,
                    format!("{n} divergence rollbacks (tolerated {max}) — training is unstable"),
                )
            })
        }
        Rule::ServeQueueDepth { frac } => {
            if sig.serve_queue_high_water <= 0.0 {
                return None; // no serve queue in this process
            }
            let depth = sig.serve_queue_depth;
            let limit = sig.serve_queue_high_water * frac;
            (depth >= limit).then(|| {
                (
                    depth,
                    limit,
                    format!(
                        "serve queue at {depth:.0}/{:.0} ({:.0}% of high water) — shedding imminent",
                        sig.serve_queue_high_water,
                        100.0 * depth / sig.serve_queue_high_water
                    ),
                )
            })
        }
        Rule::DeadlineMissRate { above, min_requests } => {
            if sig.serve_requests < *min_requests {
                return None;
            }
            let rate = sig.serve_timeouts as f64 / sig.serve_requests as f64;
            (rate > *above).then(|| {
                (
                    rate,
                    *above,
                    format!(
                        "{:.0}% of {} serve requests timed out (ceiling {:.0}%)",
                        rate * 100.0,
                        sig.serve_requests,
                        above * 100.0
                    ),
                )
            })
        }
    }
}

struct WatchState {
    rules: Vec<Rule>,
    active: Vec<Alert>,
}

static STATE: Mutex<Option<WatchState>> = Mutex::new(None);

/// Arms the watchdog with `rules` (replacing any previous set). Counts
/// as a live tracker so step heartbeats start flowing.
pub fn arm(rules: Vec<Rule>) {
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if g.is_none() {
        live::track();
    }
    *g = Some(WatchState { rules, active: Vec::new() });
}

/// Disarms the watchdog and clears all active alerts.
pub fn disarm() {
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    if g.take().is_some() {
        live::untrack();
    }
}

/// True while armed.
pub fn armed() -> bool {
    STATE.lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// The currently-raised alerts (empty when disarmed or healthy).
pub fn active_alerts() -> Vec<Alert> {
    STATE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|s| s.active.clone())
        .unwrap_or_default()
}

/// One watchdog evaluation pass — called by the sysmon sampler loop
/// each sample with the freshly-read [`ProcStat`]. No-op when disarmed.
pub fn tick(stat: Option<&ProcStat>) {
    if !armed() {
        return;
    }
    let sig = Signals::capture(stat);
    tick_with(&sig);
}

/// [`tick`] against an explicit signal snapshot (test seam).
pub fn tick_with(sig: &Signals) {
    let mut g = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = g.as_mut() else {
        return;
    };
    for rule in &state.rules {
        let name = rule.name();
        let raised = state.active.iter().position(|a| a.rule == name);
        match (eval(rule, sig), raised) {
            (Some((value, threshold, message)), None) => {
                crate::metrics::counter("watch/alerts").inc();
                crate::emit_with(|| {
                    crate::Event::new("alert")
                        .with("rule", name)
                        .with("state", "raised")
                        .with("message", message.as_str())
                        .with("value", value)
                        .with("threshold", threshold)
                });
                state.active.push(Alert {
                    rule: name,
                    message,
                    value,
                    threshold,
                    since_ms: crate::elapsed_ms() as u64,
                });
            }
            (Some((value, threshold, message)), Some(idx)) => {
                // Still tripped: refresh the observed value, keep the
                // original raise timestamp, stay silent (edge-triggered).
                let a = &mut state.active[idx];
                a.value = value;
                a.threshold = threshold;
                a.message = message;
            }
            (None, Some(idx)) => {
                let a = state.active.remove(idx);
                crate::emit_with(|| {
                    crate::Event::new("alert")
                        .with("rule", name)
                        .with("state", "resolved")
                        .with("value", a.value)
                        .with("threshold", a.threshold)
                });
            }
            (None, None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip_eval(rule: &Rule, sig: &Signals) -> bool {
        eval(rule, sig).is_some()
    }

    #[test]
    fn step_stall_requires_training_phase_and_first_step() {
        let rule = Rule::StepStall { after: Duration::from_secs(30) };
        let mut sig = Signals { training: true, last_step_age_s: Some(45.0), ..Default::default() };
        assert!(trip_eval(&rule, &sig));
        sig.training = false;
        assert!(!trip_eval(&rule, &sig), "stall only fires mid-training");
        sig.training = true;
        sig.last_step_age_s = None;
        assert!(!trip_eval(&rule, &sig), "no alert before the first step");
        sig.last_step_age_s = Some(5.0);
        assert!(!trip_eval(&rule, &sig));
    }

    #[test]
    fn rss_rule_needs_explicit_cap() {
        let rule = Rule::RssNearCap { frac: 0.9 };
        let mut sig = Signals { rss_bytes: Some(950e6), ..Default::default() };
        assert!(!trip_eval(&rule, &sig), "no cap env → rule dormant");
        sig.mem_cap_bytes = Some(1e9);
        assert!(trip_eval(&rule, &sig));
        sig.rss_bytes = Some(100e6);
        assert!(!trip_eval(&rule, &sig));
    }

    #[test]
    fn pool_collapse_waits_for_min_samples() {
        let rule = Rule::PoolHitRateCollapse { below: 0.5, min_samples: 1000 };
        let mut sig = Signals { pool_hits: 10, pool_misses: 90, ..Default::default() };
        assert!(!trip_eval(&rule, &sig), "warmup misses are expected");
        sig.pool_hits = 100;
        sig.pool_misses = 900;
        assert!(trip_eval(&rule, &sig));
        sig.pool_hits = 900;
        sig.pool_misses = 100;
        assert!(!trip_eval(&rule, &sig));
    }

    #[test]
    fn serve_queue_rule_is_dormant_without_a_queue() {
        let rule = Rule::ServeQueueDepth { frac: 0.9 };
        let mut sig = Signals { serve_queue_depth: 50.0, ..Default::default() };
        assert!(!trip_eval(&rule, &sig), "no high-water gauge → no serve queue → dormant");
        sig.serve_queue_high_water = 64.0;
        assert!(!trip_eval(&rule, &sig), "50/64 is below 90%");
        sig.serve_queue_depth = 60.0;
        assert!(trip_eval(&rule, &sig));
        sig.serve_queue_depth = 2.0;
        assert!(!trip_eval(&rule, &sig));
    }

    #[test]
    fn deadline_miss_rate_waits_for_min_requests() {
        let rule = Rule::DeadlineMissRate { above: 0.2, min_requests: 200 };
        let mut sig = Signals { serve_requests: 100, serve_timeouts: 90, ..Default::default() };
        assert!(!trip_eval(&rule, &sig), "cold server: not enough requests to call a trend");
        sig.serve_requests = 400;
        sig.serve_timeouts = 90;
        assert!(trip_eval(&rule, &sig), "22.5% > 20% ceiling");
        sig.serve_timeouts = 60;
        assert!(!trip_eval(&rule, &sig), "15% is under the ceiling");
    }

    #[test]
    fn alerts_are_edge_triggered_and_resolve() {
        // Private rule name so concurrent obs tests (shared globals)
        // can't interfere: drive tick_with directly.
        arm(vec![Rule::DivergenceRollbacks { max: 1 }]);
        let healthy = Signals::default();
        let sick = Signals { rollbacks: 3, ..Default::default() };
        tick_with(&healthy);
        assert!(active_alerts().is_empty());
        tick_with(&sick);
        let alerts = active_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "divergence_rollbacks");
        assert_eq!(alerts[0].value, 3.0);
        // Still sick: stays one alert (no re-raise).
        tick_with(&sick);
        assert_eq!(active_alerts().len(), 1);
        tick_with(&healthy);
        assert!(active_alerts().is_empty(), "falling edge resolves the alert");
        disarm();
        assert!(!armed());
        tick_with(&sick);
        assert!(active_alerts().is_empty(), "disarmed watchdog never raises");
    }
}
