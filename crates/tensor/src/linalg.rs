//! Batched matrix multiplication with broadcasting over leading axes.

use crate::shape::{broadcast_shapes, broadcast_strides, numel, strides_for};
use crate::tensor::Tensor;

/// Plain `m×k · k×n` kernel on contiguous slices, accumulating into `out`.
///
/// Loop order (i, l, j) keeps the innermost loop streaming over contiguous
/// rows of `b` and `out`, which lets LLVM auto-vectorise it.
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (l, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue; // adjacency matrices are sparse; skip zero rows cheaply
            }
            let b_row = &b[l * n..(l + 1) * n];
            for j in 0..n {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

impl Tensor {
    /// Batched matrix product.
    ///
    /// Shapes `[..., m, k] · [..., k, n] -> [..., m, n]`; leading (batch)
    /// axes broadcast like elementwise ops. Rank-1 operands are promoted to
    /// row/column matrices and the promoted axis removed from the result.
    ///
    /// ```
    /// use traffic_tensor::Tensor;
    /// let batch = Tensor::ones(&[4, 2, 3]);       // 4 matrices of 2×3
    /// let weights = Tensor::ones(&[3, 5]);        // shared 3×5
    /// assert_eq!(batch.matmul(&weights).shape(), &[4, 2, 5]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        // Promote rank-1 operands.
        let (a, squeeze_m) = if self.rank() == 1 {
            (self.reshape(&[1, self.shape()[0]]), true)
        } else {
            (self.clone(), false)
        };
        let (b, squeeze_n) = if other.rank() == 1 {
            (other.reshape(&[other.shape()[0], 1]), true)
        } else {
            (other.clone(), false)
        };
        assert!(a.rank() >= 2 && b.rank() >= 2);
        let (m, ka) = (a.shape()[a.rank() - 2], a.shape()[a.rank() - 1]);
        let (kb, n) = (b.shape()[b.rank() - 2], b.shape()[b.rank() - 1]);
        assert_eq!(
            ka,
            kb,
            "matmul inner-dimension mismatch: {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let a_batch = &a.shape()[..a.rank() - 2];
        let b_batch = &b.shape()[..b.rank() - 2];
        let batch = broadcast_shapes(a_batch, b_batch).unwrap_or_else(|| {
            panic!("matmul batch-dimension mismatch: {:?} · {:?}", self.shape(), other.shape())
        });
        let nbatch = numel(&batch);

        // Per-batch flat offsets into a and b via broadcast strides measured
        // in whole matrices.
        let a_mat = m * ka;
        let b_mat = kb * n;
        let a_bstr = broadcast_strides(a_batch, &batch);
        let b_bstr = broadcast_strides(b_batch, &batch);
        let batch_strides = strides_for(&batch);

        let mut out_shape = batch.clone();
        out_shape.push(m);
        out_shape.push(n);
        let mut out = vec![0.0f32; nbatch * m * n];
        let run_range = |out_chunk: &mut [f32], lo: usize| {
            let mut coords = vec![0usize; batch.len()];
            for (i, dst) in out_chunk.chunks_mut(m * n).enumerate() {
                let bi = lo + i;
                crate::shape::unravel(bi, &batch, &mut coords);
                let a_off: usize = coords.iter().zip(&a_bstr).map(|(c, s)| c * s).sum();
                let b_off: usize = coords.iter().zip(&b_bstr).map(|(c, s)| c * s).sum();
                matmul_kernel(
                    &a.as_slice()[a_off * a_mat..a_off * a_mat + a_mat],
                    &b.as_slice()[b_off * b_mat..b_off * b_mat + b_mat],
                    dst,
                    m,
                    ka,
                    n,
                );
            }
        };
        // Parallelise across batches when there is enough work to amortise
        // thread spawn cost (~10 µs each).
        let total_flops = nbatch * m * ka * n;
        let threads = if total_flops >= 1 << 21 {
            std::thread::available_parallelism().map(|x| x.get()).unwrap_or(1).min(nbatch).min(8)
        } else {
            1
        };
        if threads > 1 {
            let per = nbatch.div_ceil(threads);
            std::thread::scope(|scope| {
                for (ci, chunk) in out.chunks_mut(per * m * n).enumerate() {
                    let run = &run_range;
                    scope.spawn(move || run(chunk, ci * per));
                }
            });
        } else {
            run_range(&mut out, 0);
        }
        let _ = &batch_strides;
        let t = Tensor::from_vec(out, &out_shape);
        // Undo rank-1 promotions.
        match (squeeze_m, squeeze_n) {
            (false, false) => t,
            (true, false) => {
                let mut s = out_shape.clone();
                s.remove(s.len() - 2);
                t.reshape(&s)
            }
            (false, true) => {
                let mut s = out_shape.clone();
                s.pop();
                t.reshape(&s)
            }
            (true, true) => t.reshape(&[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn batched_broadcast() {
        // [2, 2, 3] · [3, 2] -> [2, 2, 2]
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(6).reshape(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // first batch, first row: [0,1,2]·cols of b
        assert_eq!(c.at(&[0, 0, 0]), 0.0 * 0.0 + 1.0 * 2.0 + 2.0 * 4.0);
        assert_eq!(c.at(&[1, 1, 1]), 9.0 * 1.0 + 10.0 * 3.0 + 11.0 * 5.0);
    }

    #[test]
    fn vec_promotions() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let vm = a.matmul(&m);
        assert_eq!(vm.shape(), &[2]);
        assert_eq!(vm.as_slice(), &[1.0, 4.0]);
        let mv = m.matmul(&a);
        assert_eq!(mv.shape(), &[2]);
        assert_eq!(mv.as_slice(), &[1.0, 4.0]);
        let dot = a.matmul(&a);
        assert_eq!(dot.shape(), &[] as &[usize]);
        assert_eq!(dot.item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "inner-dimension mismatch")]
    fn inner_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough batch to cross the threading threshold; results must
        // equal the per-batch serial kernel.
        let nb = 64;
        let (m, k, n) = (16, 16, 16);
        let a = Tensor::from_vec(
            (0..nb * m * k).map(|i| ((i % 97) as f32 - 48.0) * 0.01).collect(),
            &[nb, m, k],
        );
        let b = Tensor::from_vec(
            (0..nb * k * n).map(|i| ((i % 89) as f32 - 44.0) * 0.01).collect(),
            &[nb, k, n],
        );
        let whole = a.matmul(&b);
        for bi in [0usize, 31, 63] {
            let ai = a.narrow(0, bi, 1).reshape(&[m, k]);
            let bj = b.narrow(0, bi, 1).reshape(&[k, n]);
            let expect = ai.matmul(&bj);
            let got = whole.narrow(0, bi, 1).reshape(&[m, n]);
            for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transpose_identity() {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = Tensor::arange(12).reshape(&[3, 4]);
        let lhs = a.matmul(&b).t();
        let rhs = b.t().matmul(&a.t());
        assert_eq!(lhs, rhs);
    }
}
