//! Serving snapshots: the self-contained `TNN2` container a server
//! loads warm weights from.
//!
//! A training checkpoint ([`traffic_core::resume::TrainState`]) carries
//! optimizer moments and RNG state the server never needs; a serving
//! snapshot instead carries everything needed to **rebuild and verify**
//! an inference-ready model with no dataset on disk:
//!
//! - `serve_meta` — schema version, model name, node count, window
//!   sizes, the z-score scaler fitted at training time, the spectral
//!   embedding width, and the builder seed;
//! - `adjacency` — the `[N, N]` weighted adjacency, from which every
//!   derived graph matrix ([`GraphContext`]) is recomputed
//!   deterministically;
//! - `weights` — `(name, tensor)` pairs in parameter-store order.
//!
//! ## Validate-then-swap
//!
//! Loading is split so a hot reload can stage everything before
//! touching the live model: [`load_file`] does I/O + CRC/structure
//! verification (any torn, truncated, or bit-flipped file is rejected
//! by the `TNN2` reader), and [`ServeSnapshot::instantiate`] rebuilds
//! the model, applies the weights with strict name/shape checking, and
//! **smoke-forwards a canary input**, rejecting any snapshot whose
//! model panics or produces non-finite outputs. Only a snapshot that
//! survives all three gates may replace the live model.
//!
//! ## Fault sites
//!
//! - `serve_io` — the snapshot read reports a transient I/O error
//!   (exercised by [`load_file_with_retry`]'s bounded backoff);
//! - `reload` — the decode reports corruption (validate-then-swap must
//!   keep the last-good model).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_graph::{row_normalize, scaled_laplacian, spectral_embedding, symmetrize};
use traffic_models::{build_model, GraphContext, TrafficModel};
use traffic_nn::tnn2::{self, PayloadReader, PayloadWriter};
use traffic_nn::CheckpointError;
use traffic_obs::{counter, faults};
use traffic_tensor::{Tape, Tensor};

/// Version of the serving-snapshot schema inside the `TNN2` container.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Everything needed to rebuild an inference-ready model.
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// Model name ([`traffic_models::ALL_MODELS`] vocabulary).
    pub model: String,
    /// Number of sensors.
    pub n: usize,
    /// Spectral-embedding width used when the context was built.
    pub se_dim: usize,
    /// Input window length.
    pub t_in: usize,
    /// Output horizon.
    pub t_out: usize,
    /// Z-score mean fitted on the training split.
    pub mean: f32,
    /// Z-score std fitted on the training split.
    pub std: f32,
    /// Seed for the (immediately overwritten) builder init.
    pub seed: u64,
    /// Weighted adjacency `[N, N]`.
    pub adjacency: Tensor,
    /// `(name, value)` pairs in parameter-store order.
    pub weights: Vec<(String, Tensor)>,
}

/// A validated, inference-ready model. **Not `Send`** (parameters are
/// `Rc`-backed): it must be built and used on one thread — the serve
/// engine owns it on a dedicated worker thread.
pub struct LoadedModel {
    /// The snapshot this model was instantiated from.
    pub snap: ServeSnapshot,
    model: Box<dyn TrafficModel>,
}

impl LoadedModel {
    /// The model's parameter count (served in `/status`).
    pub fn num_params(&self) -> usize {
        self.model.num_params()
    }

    /// Batched no-tape-reuse forward: `x` is `[B, t_in, n, 2]`
    /// (normalised), returns `[B, t_out, n]` on the normalised scale.
    /// Runs under an inference guard so models take their eval
    /// shortcuts; the worker pool parallelises the kernels inside.
    pub fn forward_batch(&self, tape: &mut Tape, x: Tensor) -> Tensor {
        let _inf = traffic_tensor::inference::InferenceGuard::enter();
        tape.reset();
        let xv = tape.constant(x);
        self.model.forward(tape, xv, None).value()
    }
}

impl ServeSnapshot {
    /// Captures a snapshot from a live model + its graph material.
    #[allow(clippy::too_many_arguments)] // geometry + normalisation stats are one capture
    pub fn capture(
        model: &dyn TrafficModel,
        adjacency: &Tensor,
        se_dim: usize,
        t_in: usize,
        t_out: usize,
        mean: f32,
        std: f32,
        seed: u64,
    ) -> ServeSnapshot {
        ServeSnapshot {
            model: model.name().to_string(),
            n: adjacency.shape()[0],
            se_dim,
            t_in,
            t_out,
            mean,
            std,
            seed,
            adjacency: adjacency.clone(),
            weights: model
                .store()
                .params()
                .iter()
                .map(|p| (p.name().to_string(), p.value()))
                .collect(),
        }
    }

    /// Serialises into `TNN2` sections.
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = PayloadWriter::new();
        meta.u32(SNAPSHOT_VERSION);
        meta.str(&self.model);
        meta.u64(self.n as u64);
        meta.u64(self.se_dim as u64);
        meta.u64(self.t_in as u64);
        meta.u64(self.t_out as u64);
        meta.f32(self.mean);
        meta.f32(self.std);
        meta.u64(self.seed);

        let mut adj = PayloadWriter::new();
        adj.tensor(&self.adjacency);

        let mut weights = PayloadWriter::new();
        weights.u32(self.weights.len() as u32);
        for (name, value) in &self.weights {
            weights.str(name);
            weights.tensor(value);
        }

        tnn2::encode(&[
            ("serve_meta", meta.into_bytes()),
            ("adjacency", adj.into_bytes()),
            ("weights", weights.into_bytes()),
        ])
    }

    /// Writes the snapshot atomically (temp sibling + fsync + rename).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        tnn2::atomic_write(path, &self.encode())?;
        Ok(())
    }

    /// Parses a snapshot from verified `TNN2` bytes.
    pub fn decode(bytes: &[u8]) -> Result<ServeSnapshot, CheckpointError> {
        let sections = tnn2::decode(bytes)?;
        let find = |name: &str| -> Result<&[u8], CheckpointError> {
            sections
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| p.as_slice())
                .ok_or_else(|| CheckpointError::Corrupt(format!("missing section {name:?}")))
        };

        let mut meta = PayloadReader::new(find("serve_meta")?);
        let version = meta.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported serve-snapshot version {version} (reader supports {SNAPSHOT_VERSION})"
            )));
        }
        let model = meta.str()?;
        let n = meta.u64()? as usize;
        let se_dim = meta.u64()? as usize;
        let t_in = meta.u64()? as usize;
        let t_out = meta.u64()? as usize;
        let mean = meta.f32()?;
        let std = meta.f32()?;
        let seed = meta.u64()?;
        if n == 0 || t_in == 0 || t_out == 0 {
            return Err(CheckpointError::Corrupt("zero-sized serving geometry".into()));
        }
        // The canary forwards a raw synthetic input and never exercises
        // request normalization, so a degenerate scaler would pass every
        // other gate and then turn all real requests non-finite. Gate it
        // here: every served value goes through (x - mean) / std.
        if !mean.is_finite() || !std.is_finite() || std <= 0.0 {
            return Err(CheckpointError::Corrupt(format!(
                "degenerate z-score scaler (mean={mean}, std={std}): \
                 std must be finite and > 0, mean finite"
            )));
        }

        let mut adj = PayloadReader::new(find("adjacency")?);
        let adjacency = adj.tensor()?;
        if adjacency.shape() != [n, n] {
            return Err(CheckpointError::Corrupt(format!(
                "adjacency shape {:?} does not match n={n}",
                adjacency.shape()
            )));
        }

        let mut wsec = PayloadReader::new(find("weights")?);
        let count = wsec.u32()? as usize;
        let mut weights = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name = wsec.str()?;
            let value = wsec.tensor()?;
            weights.push((name, value));
        }

        Ok(ServeSnapshot { model, n, se_dim, t_in, t_out, mean, std, seed, adjacency, weights })
    }

    /// Rebuilds the model and verifies it end to end: derived graph
    /// matrices from the stored adjacency, strict name/shape weight
    /// application, and a canary smoke forward whose output must have
    /// the advertised shape and be entirely finite. Any failure —
    /// including a panic inside the model — is an error, never a crash.
    pub fn instantiate(self) -> Result<LoadedModel, CheckpointError> {
        let snap = self;
        let build = catch_unwind(AssertUnwindSafe(|| {
            let ctx = GraphContext {
                n: snap.n,
                scaled_laplacian: scaled_laplacian(&snap.adjacency),
                supports: traffic_graph::diffusion_supports(&snap.adjacency),
                row_norm_adj: row_normalize(&symmetrize(&snap.adjacency)),
                node_embedding: spectral_embedding(&snap.adjacency, snap.se_dim),
                adjacency: snap.adjacency.clone(),
            };
            let mut rng = StdRng::seed_from_u64(snap.seed);
            build_model(&snap.model, &ctx, &mut rng)
        }));
        let model = build.map_err(|_| {
            CheckpointError::Corrupt(format!("model {:?} panicked while building", snap.model))
        })?;

        // Strict weight application: count, order, and shapes must all
        // match before a single value is written.
        let store = model.store();
        if snap.weights.len() != store.len() {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {} params, model {:?} has {}",
                snap.weights.len(),
                snap.model,
                store.len()
            )));
        }
        for ((name, value), p) in snap.weights.iter().zip(store.params()) {
            if name != p.name() {
                return Err(CheckpointError::Mismatch(format!(
                    "parameter order mismatch: snapshot {name} vs model {}",
                    p.name()
                )));
            }
            if value.shape() != p.shape() {
                return Err(CheckpointError::Mismatch(format!(
                    "{name}: snapshot shape {:?} vs model {:?}",
                    value.shape(),
                    p.shape()
                )));
            }
        }
        for ((_, value), p) in snap.weights.iter().zip(store.params()) {
            p.set_value(value.clone());
        }

        let loaded = LoadedModel { snap, model };
        loaded.canary()?;
        Ok(loaded)
    }
}

impl LoadedModel {
    /// Smoke-forwards a deterministic canary window; rejects panics,
    /// wrong output shapes, and non-finite outputs.
    fn canary(&self) -> Result<(), CheckpointError> {
        let (t_in, t_out, n) = (self.snap.t_in, self.snap.t_out, self.snap.n);
        let mut x = vec![0.0f32; t_in * n * 2];
        for t in 0..t_in {
            for i in 0..n {
                // Mid-scale values + advancing time-of-day channel.
                x[(t * n + i) * 2] = 0.1 * (i as f32 % 7.0 - 3.0);
                x[(t * n + i) * 2 + 1] = t as f32 / traffic_models::STEPS_PER_DAY as f32;
            }
        }
        let x = Tensor::from_vec(x, &[1, t_in, n, 2]);
        let mut tape = Tape::new();
        let out = catch_unwind(AssertUnwindSafe(|| self.forward_batch(&mut tape, x)))
            .map_err(|_| CheckpointError::Corrupt("canary forward panicked".into()))?;
        if out.shape() != [1, t_out, n] {
            return Err(CheckpointError::Corrupt(format!(
                "canary output shape {:?}, expected [1, {t_out}, {n}]",
                out.shape()
            )));
        }
        if out.has_non_finite() {
            return Err(CheckpointError::Corrupt(
                "canary forward produced non-finite values".into(),
            ));
        }
        counter("serve/canary_ok").inc();
        Ok(())
    }
}

/// Reads the raw snapshot bytes. The `serve_io` fault site injects a
/// transient I/O error here.
fn read_bytes(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    if faults::fire("serve_io").is_some() {
        return Err(CheckpointError::Io(std::io::Error::other(
            "injected snapshot I/O fault (serve_io)",
        )));
    }
    Ok(std::fs::read(path)?)
}

/// Reads + verifies + parses a snapshot file. The `reload` fault site
/// injects a corruption verdict after the read, exercising the
/// validate-then-swap path without touching the bytes on disk.
pub fn load_file(path: &Path) -> Result<ServeSnapshot, CheckpointError> {
    let bytes = read_bytes(path)?;
    if faults::fire("reload").is_some() {
        return Err(CheckpointError::Corrupt("injected reload corruption (reload)".into()));
    }
    ServeSnapshot::decode(&bytes)
}

/// [`load_file`] with bounded retry-with-backoff on **I/O** errors
/// (transient: NFS hiccups, the writer mid-rename). Corruption and
/// mismatches fail immediately — a bad file does not become good by
/// waiting. Retries are counted in `serve/reload_retries`.
pub fn load_file_with_retry(
    path: &Path,
    attempts: u32,
    backoff: Duration,
) -> Result<ServeSnapshot, CheckpointError> {
    let mut delay = backoff;
    for attempt in 1.. {
        match load_file(path) {
            Err(CheckpointError::Io(e)) if attempt < attempts => {
                counter("serve/reload_retries").inc();
                eprintln!(
                    "traffic-serve: snapshot read {} failed ({e}); retry {attempt}/{}",
                    path.display(),
                    attempts - 1
                );
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            other => return other,
        }
    }
    unreachable!("retry loop returns on the last attempt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export_fresh as tiny_snapshot;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("traffic_serve_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_and_instantiate() {
        let snap = tiny_snapshot("STGCN", 6, 3);
        let path = tmp("roundtrip");
        snap.save(&path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(back.model, "STGCN");
        assert_eq!(back.n, 6);
        assert_eq!(back.weights.len(), snap.weights.len());
        for ((an, av), (bn, bv)) in snap.weights.iter().zip(&back.weights) {
            assert_eq!(an, bn);
            assert_eq!(av, bv, "{an} weight bits must survive the roundtrip");
        }
        let loaded = back.instantiate().unwrap();
        assert!(loaded.num_params() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_and_bitflipped_files_are_rejected() {
        let snap = tiny_snapshot("STGCN", 5, 4);
        let bytes = snap.encode();
        for cut in [0, 3, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ServeSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        for flip in [8, bytes.len() / 3, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x10;
            assert!(ServeSnapshot::decode(&bad).is_err(), "bit flip at {flip} must be rejected");
        }
    }

    #[test]
    fn degenerate_scalers_are_rejected_at_decode() {
        for (mean, std) in [
            (55.0, 0.0),
            (55.0, -1.0),
            (55.0, f32::NAN),
            (f32::INFINITY, 12.0),
            (55.0, f32::INFINITY),
        ] {
            let mut snap = tiny_snapshot("STGCN", 5, 8);
            snap.mean = mean;
            snap.std = std;
            let bytes = snap.encode();
            match ServeSnapshot::decode(&bytes) {
                Err(CheckpointError::Corrupt(m)) => {
                    assert!(m.contains("scaler"), "mean={mean} std={std}: {m}")
                }
                other => panic!(
                    "mean={mean} std={std} must be rejected at decode, got ok={}",
                    other.is_ok()
                ),
            }
        }
    }

    #[test]
    fn wrong_model_weights_are_a_mismatch() {
        let mut snap = tiny_snapshot("STGCN", 5, 5);
        snap.weights.pop();
        assert!(matches!(snap.instantiate(), Err(CheckpointError::Mismatch(_))));
    }

    #[test]
    fn nan_weights_fail_the_canary() {
        let mut snap = tiny_snapshot("STGCN", 5, 6);
        // Poison everything: a single NaN weight can be absorbed by a
        // max-based ReLU, but a fully-poisoned net cannot come back.
        for (_, w) in &mut snap.weights {
            let shape = w.shape().to_vec();
            *w = Tensor::full(&shape, f32::NAN);
        }
        match snap.instantiate() {
            Err(CheckpointError::Corrupt(m)) => assert!(m.contains("non-finite"), "{m}"),
            other => panic!("NaN weights must fail the canary, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn io_fault_is_retried_corruption_is_not() {
        let _g = fault_lock();
        let snap = tiny_snapshot("STGCN", 5, 7);
        let path = tmp("retry");
        snap.save(&path).unwrap();

        faults::reset();
        faults::arm("serve_io", 1, faults::FaultMode::Soft);
        let before = counter("serve/reload_retries").get();
        let ok = load_file_with_retry(&path, 3, Duration::from_millis(1));
        assert!(ok.is_ok(), "a one-shot I/O fault must be absorbed by the retry loop");
        assert_eq!(counter("serve/reload_retries").get(), before + 1);

        faults::reset();
        faults::arm("reload", 1, faults::FaultMode::Soft);
        let before = counter("serve/reload_retries").get();
        let err = load_file_with_retry(&path, 3, Duration::from_millis(1));
        assert!(matches!(err, Err(CheckpointError::Corrupt(_))));
        assert_eq!(counter("serve/reload_retries").get(), before, "corruption must not retry");
        faults::reset();
        std::fs::remove_file(&path).ok();
    }

    /// Fault state is process-global; serialise fault-arming tests.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
