//! Profiler invariants that need process-global control: a counting
//! allocator to prove the disabled path allocates nothing, and exclusive
//! ownership of the global profiler state. Everything lives in ONE
//! `#[test]` because cargo runs tests in one binary concurrently and
//! both the allocator counter and the profiler registry are global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static A: Counting = Counting;

use traffic_obs::profile;

#[test]
fn disabled_is_allocation_free_and_flame_table_is_consistent() {
    // --- disabled path: no allocations, no records ---
    assert!(!profile::enabled(), "profiling must start disabled");
    // Warm up lazy statics (thread-locals, clock) outside the window.
    {
        let _g = profile::op("warm", "up");
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        let mut g = profile::op("gemm", "nn");
        g.set_flops(1 << 20);
        g.set_bytes(1 << 16);
        g.set_node(42);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled profiling op() must not allocate");
    assert_eq!(profile::op_count(), 0, "disabled profiling must record nothing");

    // --- enabled path: nesting, self-time, and flame-table sums ---
    profile::start();
    {
        let _outer = profile::op("train", "forward");
        for _ in 0..3 {
            let mut inner = profile::op("gemm", "nn");
            inner.set_flops(1000);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    {
        let _solo = profile::op("mem", "take");
    }
    profile::stop();

    let stats = profile::flame_table();
    assert_eq!(stats.len(), 3, "three distinct ops recorded: {stats:?}");

    let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
    let pct_sum: f64 = stats.iter().map(|s| s.self_ns as f64 / total_self as f64 * 100.0).sum();
    assert!((pct_sum - 100.0).abs() < 1e-6, "self-time percentages must sum to 100, got {pct_sum}");

    let fwd = stats.iter().find(|s| s.cat == "train" && s.name == "forward").unwrap();
    let gemm = stats.iter().find(|s| s.cat == "gemm" && s.name == "nn").unwrap();
    assert_eq!(gemm.count, 3);
    assert_eq!(gemm.flops, 3000);
    // The parent's total covers its own self time plus all nested ops.
    assert!(
        fwd.total_ns >= fwd.self_ns + gemm.total_ns,
        "parent total {} must cover self {} + child total {}",
        fwd.total_ns,
        fwd.self_ns,
        gemm.total_ns
    );
    // ~6ms slept inside children, ~1ms in the parent itself: self time
    // must be far below total for the parent.
    assert!(fwd.self_ns < fwd.total_ns / 2, "nested time must not count as parent self time");

    let rendered = profile::render_flame_table(&stats);
    assert!(rendered.contains("train/forward"), "rendered table lists ops: {rendered}");

    // --- chrome trace is valid JSON with the right event count ---
    let trace = profile::chrome_trace();
    let doc = traffic_obs::json::parse(&trace).expect("chrome trace must parse");
    let events = match doc.get("traceEvents") {
        Some(traffic_obs::json::Json::Arr(evs)) => evs,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let complete =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count();
    assert_eq!(complete, 5, "one X event per recorded op");
    assert!(
        events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")),
        "trace must carry thread_name metadata"
    );

    // stop() keeps records (reports run after the fact); clear() drops them.
    assert_eq!(profile::op_count(), 5);
    profile::clear();
    assert_eq!(profile::op_count(), 0);
}
