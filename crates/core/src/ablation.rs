//! Ablation studies of the design choices the paper's analysis singles
//! out (§V-A, §VI), as reusable library functions. The `ablations` bench
//! target prints these; tests assert their structural properties.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_metrics::{evaluate_horizons, MetricSet};
use traffic_models::{
    GraphWavenet, GraphWavenetConfig, SpatialKind, Stgcn, StgcnConfig, TrafficModel,
};

use crate::experiment::{eval_split, prepare_experiment, train_model, PreparedExperiment};
use crate::scale::ExperimentScale;
use crate::trainer::{predict, train, TrainConfig};

/// Result of training one ablation variant.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Variant label.
    pub variant: String,
    /// Parameter count.
    pub params: usize,
    /// MAE at 15/30/60 minutes.
    pub mae: [f32; 3],
}

fn train_cfg(scale: &ExperimentScale, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: scale.epochs,
        batch_size: scale.batch_size,
        max_batches_per_epoch: scale.max_train_batches,
        seed,
        ..Default::default()
    }
}

fn eval_three(
    model: &dyn TrafficModel,
    exp: &PreparedExperiment,
    scale: &ExperimentScale,
) -> [f32; 3] {
    let test = eval_split(&exp.data.test, scale);
    let pred = predict(model, &test, &exp.data.scaler, scale.batch_size);
    let ms = evaluate_horizons(&pred, &test.y_raw, &[2, 5, 11], None);
    [ms[0].mae, ms[1].mae, ms[2].mae]
}

/// Graph-WaveNet with vs without the self-adaptive adjacency.
pub fn gwn_adaptive_ablation(dataset: &str, scale: &ExperimentScale) -> Vec<AblationResult> {
    let exp = prepare_experiment(dataset, scale, 42);
    [true, false]
        .into_iter()
        .map(|adaptive| {
            let mut rng = StdRng::seed_from_u64(5);
            let cfg = GraphWavenetConfig { use_adaptive: adaptive, ..Default::default() };
            let model = GraphWavenet::new(&exp.ctx, cfg, &mut rng);
            train(&model, &exp.data, &train_cfg(scale, 5));
            AblationResult {
                variant: format!("adaptive={adaptive}"),
                params: model.num_params(),
                mae: eval_three(&model, &exp, scale),
            }
        })
        .collect()
}

/// STGCN with spectral (Chebyshev) vs spatial (diffusion) graph conv.
pub fn stgcn_spatial_kind_ablation(dataset: &str, scale: &ExperimentScale) -> Vec<AblationResult> {
    let exp = prepare_experiment(dataset, scale, 42);
    [SpatialKind::Spectral, SpatialKind::Diffusion]
        .into_iter()
        .map(|kind| {
            let mut rng = StdRng::seed_from_u64(6);
            let model = Stgcn::new(
                &exp.ctx,
                StgcnConfig { spatial_kind: kind, ..Default::default() },
                &mut rng,
            );
            train(&model, &exp.data, &train_cfg(scale, 6));
            AblationResult {
                variant: format!("{kind:?}"),
                params: model.num_params(),
                mae: eval_three(&model, &exp, scale),
            }
        })
        .collect()
}

/// Per-horizon MAE curve of one model — the error-accumulation diagnostic
/// of §VI (RNN seq2seq models should show steeper growth).
pub fn horizon_curve(
    name: &str,
    dataset: &str,
    scale: &ExperimentScale,
    seed: u64,
) -> Vec<MetricSet> {
    let exp = prepare_experiment(dataset, scale, 42);
    let (model, _) = train_model(name, &exp, scale, seed);
    let test = eval_split(&exp.data.test, scale);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    let horizons: Vec<usize> = (0..12).collect();
    evaluate_horizons(&pred, &test.y_raw, &horizons, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExperimentScale {
        let mut s = ExperimentScale::smoke();
        s.epochs = 2;
        s.max_train_batches = Some(10);
        s
    }

    #[test]
    fn gwn_ablation_changes_params_not_shape() {
        let res = gwn_adaptive_ablation("METR-LA", &smoke());
        assert_eq!(res.len(), 2);
        assert!(res[0].params > res[1].params, "adaptive variant adds embeddings");
        for r in &res {
            assert!(r.mae.iter().all(|m| m.is_finite()), "{}", r.variant);
        }
    }

    #[test]
    fn stgcn_ablation_produces_both_variants() {
        let res = stgcn_spatial_kind_ablation("METR-LA", &smoke());
        assert_eq!(res.len(), 2);
        assert_ne!(res[0].params, res[1].params);
        assert!(res.iter().all(|r| r.mae.iter().all(|m| m.is_finite())));
    }

    #[test]
    fn horizon_curve_has_12_points() {
        let curve = horizon_curve("STG2Seq", "METR-LA", &smoke(), 3);
        assert_eq!(curve.len(), 12);
        assert!(curve.iter().all(|m| m.mae.is_finite()));
    }
}
