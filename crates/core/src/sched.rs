//! Job-level parallel experiment scheduler.
//!
//! The Fig-1/Fig-2 sweeps are embarrassingly parallel at the *cell*
//! level — one (dataset, model) training run per cell, every cell's RNG
//! seed derived independently — yet the serial sweep pays the sum of
//! all cells even on a many-core box. [`run_cells`] runs them on a
//! self-scheduling job queue instead:
//!
//! - **Core groups.** The persistent worker pool is partitioned, not
//!   oversubscribed: each of the `J` job threads holds a
//!   [`pool::ThreadCapGuard`] capping its kernel fan-out at
//!   `cores / J`, clamped under any enclosing cap (nested caps only
//!   shrink), so `J` concurrent cells share the machine instead of
//!   fighting over it.
//! - **Work stealing by self-scheduling.** Jobs pull the next cell
//!   index from a shared atomic counter, so a slow cell (Graph-WaveNet)
//!   never blocks the queue behind it.
//! - **Deterministic collection.** Results are written into per-cell
//!   slots and emitted in canonical submission order; completion order
//!   never leaks into the report. Cells themselves are bit-identical to
//!   the serial sweep because the compute pool splits only output
//!   ranges and every cell seeds its own RNGs.
//! - **Panic isolation.** Every cell runs under the experiment layer's
//!   `run_cell`, so one diverging model yields one FAILED row.
//! - **Scoped obs.** Each cell runs inside a [`traffic_obs::CellScope`]:
//!   events gain a `cell` tag, and with `TRAFFIC_CELL_MANIFESTS=<dir>`
//!   each cell writes its own JSONL manifest
//!   (`<dir>/<sanitized-label>.jsonl`, readable by the insight
//!   `RunStore`) so concurrent cells never interleave lines.
//!
//! Job count: `TRAFFIC_JOBS=N` env, [`set_jobs_override`], or the
//! default `min(cells, cores/2)`. `TRAFFIC_JOBS=1` takes the exact
//! legacy serial path — same thread, same call order, no scheduler
//! threads. Nested sweeps (a cell starting its own sweep) always run
//! serially inside their cell.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use traffic_tensor::pool;

use crate::experiment::run_cell;

/// Outcome of one scheduled cell.
#[derive(Debug)]
pub struct CellOutcome<T> {
    /// The cell's label (`fig1/<dataset>/<model>`).
    pub label: String,
    /// The cell's value, or the panic reason if it failed.
    pub result: Result<T, String>,
    /// Wall-clock seconds the cell took.
    pub secs: f64,
}

/// `0` = no override (env/default applies).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatic equivalent of `TRAFFIC_JOBS` (benches and tests compare
/// serial vs parallel in one process without re-reading the env).
/// `None` removes the override. Takes precedence over the env var.
pub fn set_jobs_override(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The job count [`run_cells`] would use for a sweep of `cells` cells:
/// override, else `TRAFFIC_JOBS`, else `cores / 2`, all clamped to
/// `[1, cells]`.
pub fn planned_jobs(cells: usize) -> usize {
    if cells <= 1 {
        return 1;
    }
    let explicit = match JOBS_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::env::var("TRAFFIC_JOBS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1),
        n => Some(n),
    };
    explicit.unwrap_or_else(|| (pool::num_threads() / 2).max(1)).clamp(1, cells)
}

/// `TRAFFIC_CELL_MANIFESTS=<dir>`: per-cell JSONL manifest directory.
fn manifest_dir() -> Option<PathBuf> {
    std::env::var("TRAFFIC_CELL_MANIFESTS").ok().filter(|s| !s.trim().is_empty()).map(PathBuf::from)
}

/// A cell label as a manifest file stem: path separators and other
/// non-filename characters become `-`.
fn manifest_name(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect()
}

/// Runs one cell with scoped obs: a per-cell manifest sink when `dir`
/// is set, and (in parallel mode) `cell_start`/`cell_end` events for
/// the console's in-flight progress lines.
fn run_one<T>(
    label: &str,
    dir: Option<&Path>,
    announce: bool,
    f: impl FnOnce() -> T,
) -> (Result<T, String>, f64) {
    let _scope = dir.map(|d| match traffic_obs::JsonlSink::create(d, &manifest_name(label)) {
        Ok(sink) => traffic_obs::CellScope::enter_with_sink(label, Arc::new(sink)),
        Err(e) => {
            // Telemetry must never sink an experiment: tag-only fallback.
            eprintln!("traffic-sched: cannot create manifest for {label}: {e}");
            traffic_obs::CellScope::enter(label)
        }
    });
    if announce {
        traffic_obs::emit_with(|| traffic_obs::Event::new("cell_start").with("cell", label));
    }
    let start = Instant::now();
    let result = run_cell(label, f);
    let secs = start.elapsed().as_secs_f64();
    traffic_obs::histogram("sched/cell_s").record(secs);
    if announce {
        traffic_obs::emit_with(|| {
            traffic_obs::Event::new("cell_end")
                .with("cell", label)
                .with("ok", result.is_ok())
                .with("secs", secs)
        });
    }
    (result, secs)
}

/// Runs every `(label, body)` cell and returns their outcomes **in
/// submission order**, regardless of completion order. See the module
/// docs for the scheduling, determinism, and obs-scoping rules.
pub fn run_cells<T, F>(group: &str, cells: Vec<(String, F)>) -> Vec<CellOutcome<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    // `/health` reports "sweep" while the grid runs; the per-cell
    // train/validate phases nest inside it.
    let _phase = traffic_obs::live::phase(traffic_obs::live::Phase::Sweep);
    // A sweep started from inside a cell stays serial: its cell already
    // owns exactly one core group.
    let jobs = if traffic_obs::current_cell().is_some() { 1 } else { planned_jobs(n) };
    let dir = manifest_dir();
    if jobs <= 1 {
        // Legacy serial path: same thread, same call order as the
        // pre-scheduler sweeps.
        return cells
            .into_iter()
            .map(|(label, f)| {
                let (result, secs) = run_one(&label, dir.as_deref(), false, f);
                CellOutcome { label, result, secs }
            })
            .collect();
    }

    // Each job thread's kernels fan out over one core group; an
    // enclosing caller cap clamps the groups (nested caps only shrink).
    let group_cap = (pool::num_threads() / jobs).max(1).min(pool::current_cap());
    traffic_obs::counter("sched/parallel_sweeps").inc();
    traffic_obs::emit_with(|| {
        traffic_obs::Event::new("sched_start")
            .with("group", group)
            .with("cells", n as u64)
            .with("jobs", jobs as u64)
            .with("group_threads", group_cap as u64)
    });
    let sweep_start = Instant::now();
    let next = AtomicUsize::new(0);
    let work: Vec<Mutex<Option<(String, F)>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<CellOutcome<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..jobs {
            let (next, work, slots, dir) = (&next, &work, &slots, &dir);
            std::thread::Builder::new()
                .name(format!("traffic-sched-{w}"))
                .spawn_scoped(s, move || {
                    let _cap = pool::ThreadCapGuard::new(group_cap);
                    loop {
                        // Self-scheduling queue: claim the next unstarted
                        // cell; slow cells never block the ones behind them.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let (label, f) = work[i]
                            .lock()
                            .expect("sched work slot poisoned")
                            .take()
                            .expect("cell claimed twice");
                        let (result, secs) = run_one(&label, dir.as_deref(), true, f);
                        *slots[i].lock().expect("sched result slot poisoned") =
                            Some(CellOutcome { label, result, secs });
                    }
                })
                .expect("failed to spawn scheduler job thread");
        }
    });
    traffic_obs::emit_with(|| {
        traffic_obs::Event::new("sched_end")
            .with("group", group)
            .with("cells", n as u64)
            .with("jobs", jobs as u64)
            .with("wall_s", sweep_start.elapsed().as_secs_f64())
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sched result slot poisoned")
                .expect("scheduler finished with an unfilled cell slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the process-global jobs override.
    fn jobs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn label_cells(n: usize) -> Vec<(String, impl FnOnce() -> usize + Send)> {
        (0..n).map(|i| (format!("t/cell{i}"), move || i * 10)).collect()
    }

    #[test]
    fn collection_order_is_submission_order() {
        let _g = jobs_lock();
        set_jobs_override(Some(4));
        let out = run_cells("t", label_cells(17));
        set_jobs_override(None);
        assert_eq!(out.len(), 17);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.label, format!("t/cell{i}"));
            assert_eq!(*o.result.as_ref().unwrap(), i * 10);
            assert!(o.secs >= 0.0);
        }
    }

    #[test]
    fn panicking_cell_is_isolated_in_parallel_mode() {
        let _g = jobs_lock();
        set_jobs_override(Some(3));
        let cells: Vec<(String, Box<dyn FnOnce() -> usize + Send>)> = (0..6)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> =
                    if i == 2 { Box::new(|| panic!("cell blew up")) } else { Box::new(move || i) };
                (format!("t/p{i}"), f)
            })
            .collect();
        let out = run_cells("t", cells);
        set_jobs_override(None);
        assert_eq!(out.len(), 6);
        for (i, o) in out.iter().enumerate() {
            if i == 2 {
                assert_eq!(o.result.as_ref().unwrap_err(), "cell blew up");
            } else {
                assert_eq!(*o.result.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn planned_jobs_clamps() {
        let _g = jobs_lock();
        set_jobs_override(Some(8));
        assert_eq!(planned_jobs(3), 3, "jobs never exceed cells");
        assert_eq!(planned_jobs(1), 1, "single cell is always serial");
        assert_eq!(planned_jobs(100), 8);
        set_jobs_override(None);
        assert!(planned_jobs(100) >= 1);
    }

    #[test]
    fn nested_sweeps_run_serial() {
        let _g = jobs_lock();
        set_jobs_override(Some(4));
        let outer: Vec<(String, _)> = vec![("t/outer".to_string(), || {
            let inner = run_cells("t-inner", label_cells(3));
            inner.iter().map(|o| *o.result.as_ref().unwrap()).sum::<usize>()
        })];
        let out = run_cells("t-outer", outer);
        set_jobs_override(None);
        assert_eq!(*out[0].result.as_ref().unwrap(), 30);
    }

    #[test]
    fn manifest_names_are_filesystem_safe() {
        assert_eq!(manifest_name("fig1/METR-LA/Graph-WaveNet"), "fig1-METR-LA-Graph-WaveNet");
        assert_eq!(manifest_name("a b@c"), "a-b-c");
    }
}
