//! Telemetry demo: trains one model with the console sink showing live
//! per-epoch loss lines, writes a JSONL manifest under `reports/runs/`
//! with op-level profiling, per-layer training-health sampling, and the
//! background system sampler all enabled, then parses the manifest back
//! and prints where the time went — span summary, op-level flame table,
//! and a Chrome trace for `ui.perfetto.dev` — and finally exports the
//! offline HTML dashboard to `reports/insight/telemetry-demo.html`.
//!
//! ```sh
//! cargo run --release --example telemetry -- --scale smoke
//! ```

use traffic_suite::core::{
    eval_split, prepare_experiment, render_span_summary, timed_predict, train_model,
};
use traffic_suite::obs;

fn main() {
    let scale = traffic_suite::scale_from_args();
    let marker = obs::span_marker();

    // Training-health sampling every 2 optimizer steps (a smoke run has
    // only a handful of steps; real runs use the default cadence via
    // TRAFFIC_INSIGHT=1). Set before any training threads exist.
    if std::env::var_os("TRAFFIC_INSIGHT").is_none() {
        std::env::set_var("TRAFFIC_INSIGHT", "2");
    }

    let run = obs::Run::named("telemetry-demo")
        .console(true)
        .jsonl("reports/runs")
        .profiled("reports/profiles")
        .system_sampler(std::time::Duration::from_millis(250))
        .start()
        .expect("reports/runs must be writable");
    let manifest = run.manifest_path().expect("jsonl sink requested").to_path_buf();

    let exp = prepare_experiment("METR-LA", &scale, 42);
    let (model, report) = train_model("Graph-WaveNet", &exp, &scale, 7);
    let test = eval_split(&exp.data.test, &scale);
    let (_pred, inference) =
        timed_predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    run.finish(); // summary metrics + run_end, sinks detached

    println!("\n== where the time went ==\n{}", render_span_summary(marker));
    // `Run::finish` stopped the profiler but kept its records, so the
    // flame table is still available in-process.
    println!(
        "== op-level flame table ==\n{}",
        obs::profile::render_flame_table(&obs::profile::flame_table())
    );

    // The Chrome trace written next to the manifest must itself be valid
    // JSON — load it with the bundled parser as a self-check.
    let trace_path = "reports/profiles/telemetry-demo.trace.json";
    let trace_text = std::fs::read_to_string(trace_path).expect("trace file written");
    let trace = obs::json::parse(&trace_text).expect("trace must be valid JSON");
    let n_events = match trace.get("traceEvents") {
        Some(obs::json::Json::Arr(evs)) => evs.len(),
        _ => panic!("trace must contain a traceEvents array"),
    };
    assert!(n_events > 0, "trace must record at least one op");
    println!("chrome trace: {trace_path} ({n_events} events) — load in ui.perfetto.dev");
    println!(
        "trained {} epochs (mean {:.2?}/epoch), inference over {} windows took {:.2?}",
        report.epoch_losses.len(),
        report.mean_epoch_time,
        test.len(),
        inference
    );

    // The manifest is plain JSONL: one event per line, parseable with
    // the bundled zero-dependency parser.
    let content = std::fs::read_to_string(&manifest).expect("manifest readable");
    let mut kinds = std::collections::BTreeMap::new();
    for line in content.lines() {
        let ev = obs::json::parse(line).expect("valid JSON line");
        let kind = ev.get("type").and_then(|v| v.as_str()).unwrap_or("?").to_string();
        *kinds.entry(kind).or_insert(0usize) += 1;
    }
    println!("\n== manifest {} ==", manifest.display());
    for (kind, n) in &kinds {
        println!("  {kind:<18} × {n}");
    }
    let last = content.lines().last().expect("non-empty manifest");
    println!(
        "\nfinal event, pretty-printed:\n{}",
        obs::json::pretty(&obs::json::parse(last).unwrap())
    );

    // Index the manifest through the run store and export the offline
    // dashboard — the same path the `insight` CLI uses.
    let store = obs::RunStore::index("reports/runs").expect("store indexes");
    let summary = store.get("telemetry-demo").expect("run indexed").clone();
    assert_eq!(summary.malformed, 0, "every manifest line must parse");
    assert!(!summary.insight.is_empty(), "insight sampling was enabled");
    assert!(!summary.sys.is_empty(), "system sampler was running");
    println!(
        "\ninsight: {} layer samples across {} groups, {} system samples",
        summary.insight.len(),
        summary.insight_groups().len(),
        summary.sys.len()
    );
    let page = obs::html::export(&summary, None, "reports/insight").expect("dashboard written");
    println!("dashboard: {} (self-contained, open in any browser)", page.display());
}
