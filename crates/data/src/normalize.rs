//! Normalisation: z-score for traffic values, min-max for timestamps
//! (paper §V).

use traffic_tensor::Tensor;

/// Z-score scaler fitted on training data only.
#[derive(Debug, Clone, Copy)]
pub struct ZScore {
    /// Fitted mean.
    pub mean: f32,
    /// Fitted standard deviation (clamped away from zero).
    pub std: f32,
}

impl ZScore {
    /// Fits on the non-missing (non-zero) entries of `data`, matching how
    /// the reference implementations fit on valid observations.
    pub fn fit(data: &Tensor) -> Self {
        let valid: Vec<f32> = data.as_slice().iter().copied().filter(|&v| v != 0.0).collect();
        if valid.is_empty() {
            return ZScore { mean: 0.0, std: 1.0 };
        }
        let mean = valid.iter().sum::<f32>() / valid.len() as f32;
        let var = valid.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / valid.len() as f32;
        ZScore { mean, std: var.sqrt().max(1e-6) }
    }

    /// `(x - mean) / std`.
    pub fn transform(&self, data: &Tensor) -> Tensor {
        data.map(|v| (v - self.mean) / self.std)
    }

    /// `x * std + mean`.
    pub fn inverse(&self, data: &Tensor) -> Tensor {
        data.map(|v| v * self.std + self.mean)
    }

    /// In-place `(x - mean) / std` on an owned tensor (same arithmetic
    /// as [`ZScore::transform`], no fresh allocation when unshared).
    pub fn transform_owned(&self, data: &mut Tensor) {
        let (mean, std) = (self.mean, self.std);
        data.map_inplace(move |v| (v - mean) / std);
    }

    /// In-place `x * std + mean` on an owned tensor.
    pub fn inverse_owned(&self, data: &mut Tensor) {
        let (mean, std) = (self.mean, self.std);
        data.map_inplace(move |v| v * std + mean);
    }
}

/// Min-max scaler to `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    /// Fitted minimum.
    pub min: f32,
    /// Fitted maximum.
    pub max: f32,
}

impl MinMax {
    /// Fits on all entries.
    pub fn fit(data: &Tensor) -> Self {
        MinMax { min: data.min_all(), max: data.max_all() }
    }

    /// Scales into `[0, 1]` (constant data maps to 0).
    pub fn transform(&self, data: &Tensor) -> Tensor {
        let range = (self.max - self.min).max(1e-9);
        let min = self.min;
        data.map(|v| (v - min) / range)
    }

    /// Inverse transform.
    pub fn inverse(&self, data: &Tensor) -> Tensor {
        let range = (self.max - self.min).max(1e-9);
        let min = self.min;
        data.map(|v| v * range + min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_roundtrip() {
        let x = Tensor::from_vec(vec![50.0, 60.0, 70.0, 65.0], &[4]);
        let s = ZScore::fit(&x);
        let z = s.transform(&x);
        assert!(z.mean_all().abs() < 1e-5);
        let back = s.inverse(&z);
        for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn zscore_owned_matches_allocating() {
        let x = Tensor::from_vec(vec![50.0, 60.0, 70.0, 65.0], &[4]);
        let s = ZScore::fit(&x);
        let mut z_owned = x.clone();
        s.transform_owned(&mut z_owned);
        assert_eq!(z_owned.as_slice(), s.transform(&x).as_slice());
        let mut back = z_owned.clone();
        s.inverse_owned(&mut back);
        assert_eq!(back.as_slice(), s.inverse(&z_owned).as_slice());
        // the source tensor is untouched (copy-on-write)
        assert_eq!(x.as_slice(), &[50.0, 60.0, 70.0, 65.0]);
    }

    #[test]
    fn zscore_ignores_missing_zeros() {
        let with_missing = Tensor::from_vec(vec![60.0, 0.0, 70.0, 0.0], &[4]);
        let clean = Tensor::from_vec(vec![60.0, 70.0], &[2]);
        let a = ZScore::fit(&with_missing);
        let b = ZScore::fit(&clean);
        assert!((a.mean - b.mean).abs() < 1e-5);
        assert!((a.std - b.std).abs() < 1e-5);
    }

    #[test]
    fn zscore_degenerate_data() {
        let s = ZScore::fit(&Tensor::zeros(&[5]));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 1.0);
        let c = ZScore::fit(&Tensor::full(&[5], 3.0));
        assert!(c.std >= 1e-6); // no division blowup
    }

    #[test]
    fn minmax_unit_interval() {
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0], &[3]);
        let s = MinMax::fit(&x);
        let y = s.transform(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.5, 1.0]);
        let back = s.inverse(&y);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn minmax_constant_data() {
        let x = Tensor::full(&[3], 5.0);
        let s = MinMax::fit(&x);
        let y = s.transform(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }
}
