//! Embedding lookup layer (learned row table with scatter-add backward).

use rand::Rng;
use traffic_tensor::{init, Tape, Var};

use crate::param::{Param, ParamStore};

/// A learned `[vocab, dim]` table indexed by integer ids.
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// New table with `N(0, 0.1)` initialisation.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table =
            store.add(format!("{prefix}.table"), init::normal(&[vocab, dim], 0.0, 0.1, rng));
        Embedding { table, vocab, dim }
    }

    /// Number of rows.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up `ids`, returning `[len(ids), dim]`. Ids may repeat;
    /// gradients scatter-add into the table.
    pub fn forward<'t>(&self, tape: &'t Tape, ids: &[usize]) -> Var<'t> {
        for &i in ids {
            assert!(i < self.vocab, "embedding id {i} out of range (vocab {})", self.vocab);
        }
        self.table.var(tape).index_select0(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_tensor::Tensor;

    #[test]
    fn lookup_shapes_and_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        emb.table.set_value(Tensor::arange(15).reshape(&[5, 3]));
        let tape = Tape::new();
        let out = emb.forward(&tape, &[4, 0, 4]).value();
        assert_eq!(out.shape(), &[3, 3]);
        assert_eq!(out.at(&[0, 0]), 12.0);
        assert_eq!(out.at(&[1, 2]), 2.0);
        assert_eq!(out.at(&[2, 1]), 13.0);
    }

    #[test]
    fn repeated_ids_accumulate_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 3, 2, &mut rng);
        let tape = Tape::new();
        let out = emb.forward(&tape, &[1, 1, 2]);
        let grads = tape.backward(out.sum_all());
        store.capture_grads(&tape, &grads);
        let g = store.params()[0].grad().unwrap();
        assert_eq!(g.at(&[0, 0]), 0.0); // unused row
        assert_eq!(g.at(&[1, 0]), 2.0); // used twice
        assert_eq!(g.at(&[2, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 3, 2, &mut rng);
        let tape = Tape::new();
        emb.forward(&tape, &[3]);
    }
}
