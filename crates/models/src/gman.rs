//! GMAN (Zheng et al., AAAI 2020): graph multi-attention network.
//! Encoder–decoder of ST-attention blocks (spatial attention ∥ temporal
//! attention → gated fusion), conditioned on a spatio-temporal embedding
//! (graph node embedding + time encoding), bridged by a transform-attention
//! layer that converts the historical time axis directly into the future
//! one — giving GMAN its long-horizon advantage (paper §V-A).
//!
//! The node2vec spatial embedding of the original is replaced by the
//! deterministic spectral embedding (DESIGN.md §2).

use rand::rngs::StdRng;
use traffic_nn::{Linear, MultiHeadAttention, ParamStore};
use traffic_tensor::{Tape, Tensor, Var};

use crate::common::{advance_time_of_day, GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// Frequencies (cycles per day) of the sinusoidal time encoding. Multiple
/// octaves give the decoder enough phase resolution to tell adjacent
/// 5-minute horizons apart — the one-hot time encoding of the original
/// provides the same discriminability.
const TE_FREQUENCIES: [f32; 1] = [1.0];

/// GMAN hyper-parameters.
#[derive(Debug, Clone)]
pub struct GmanConfig {
    /// Model width `D`.
    pub d: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder ST-attention blocks.
    pub enc_blocks: usize,
    /// Decoder ST-attention blocks.
    pub dec_blocks: usize,
    /// Dropout on the encoder output during training.
    pub dropout: f32,
    /// Horizons / features.
    pub t_in: usize,
    pub t_out: usize,
    pub in_features: usize,
}

impl Default for GmanConfig {
    fn default() -> Self {
        GmanConfig {
            d: 24,
            heads: 3,
            enc_blocks: 1,
            dec_blocks: 1,
            dropout: 0.1,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

/// Spatial + temporal attention with gated fusion.
struct StAttBlock {
    spatial: MultiHeadAttention,
    temporal: MultiHeadAttention,
    gate_s: Linear,
    gate_t: Linear,
}

impl StAttBlock {
    fn new(store: &mut ParamStore, prefix: &str, d: usize, heads: usize, rng: &mut StdRng) -> Self {
        StAttBlock {
            spatial: MultiHeadAttention::new(store, &format!("{prefix}.spatial"), d, heads, rng),
            temporal: MultiHeadAttention::new(store, &format!("{prefix}.temporal"), d, heads, rng),
            gate_s: Linear::new(store, &format!("{prefix}.gate_s"), d, d, true, rng),
            gate_t: Linear::new(store, &format!("{prefix}.gate_t"), d, d, false, rng),
        }
    }

    /// `h, ste: [B, T, N, D] -> [B, T, N, D]`.
    fn forward<'t>(&self, tape: &'t Tape, h: Var<'t>, ste: &Var<'t>) -> Var<'t> {
        let shape = h.shape();
        let (b, t, n, d) = (shape[0], shape[1], shape[2], shape[3]);
        let hs_in = h.add(ste);
        // Spatial attention: nodes attend over nodes, per time step.
        let sp_in = hs_in.reshape(&[b * t, n, d]);
        let hs = self.spatial.forward(tape, sp_in, sp_in).reshape(&[b, t, n, d]);
        // Temporal attention: time attends over time, per node.
        let tp_in = hs_in.permute(&[0, 2, 1, 3]).reshape(&[b * n, t, d]);
        let ht =
            self.temporal.forward(tape, tp_in, tp_in).reshape(&[b, n, t, d]).permute(&[0, 2, 1, 3]);
        // Gated fusion.
        let g = self.gate_s.forward(tape, hs).add(&self.gate_t.forward(tape, ht)).sigmoid();
        let fused = g.mul(&hs).add(&g.neg().add_scalar(1.0).mul(&ht));
        fused.add(&h)
    }
}

/// The GMAN model.
pub struct Gman {
    store: ParamStore,
    se_raw: Tensor,
    se_proj1: Linear,
    se_proj2: Linear,
    te_proj1: Linear,
    te_proj2: Linear,
    input_proj: Linear,
    encoder: Vec<StAttBlock>,
    transform: MultiHeadAttention,
    /// Learned per-horizon embedding `[T_out, D]` added to the future STE —
    /// standing in for the fine resolution of the original's one-hot TE.
    horizon_emb: traffic_nn::Param,
    decoder: Vec<StAttBlock>,
    out1: Linear,
    out2: Linear,
    cfg: GmanConfig,
}

impl Gman {
    /// Builds GMAN for a graph context.
    pub fn new(ctx: &GraphContext, cfg: GmanConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let d_se = ctx.node_embedding.shape()[1];
        let se_proj1 = Linear::new(&mut store, "se.l1", d_se, cfg.d, true, rng);
        let se_proj2 = Linear::new(&mut store, "se.l2", cfg.d, cfg.d, true, rng);
        let te_proj1 = Linear::new(&mut store, "te.l1", 2 * TE_FREQUENCIES.len(), cfg.d, true, rng);
        let te_proj2 = Linear::new(&mut store, "te.l2", cfg.d, cfg.d, true, rng);
        let input_proj = Linear::new(&mut store, "input", 1, cfg.d, true, rng);
        let encoder = (0..cfg.enc_blocks)
            .map(|i| StAttBlock::new(&mut store, &format!("enc{i}"), cfg.d, cfg.heads, rng))
            .collect();
        let transform = MultiHeadAttention::new(&mut store, "transform", cfg.d, cfg.heads, rng);
        let horizon_emb = store
            .add("horizon_emb", traffic_tensor::init::normal(&[cfg.t_out, cfg.d], 0.0, 0.1, rng));
        let decoder = (0..cfg.dec_blocks)
            .map(|i| StAttBlock::new(&mut store, &format!("dec{i}"), cfg.d, cfg.heads, rng))
            .collect();
        let out1 = Linear::new(&mut store, "out.l1", cfg.d, cfg.d, true, rng);
        let out2 = Linear::new(&mut store, "out.l2", cfg.d, 1, true, rng);
        Gman {
            store,
            se_raw: ctx.node_embedding.clone(),
            se_proj1,
            se_proj2,
            te_proj1,
            te_proj2,
            input_proj,
            encoder,
            transform,
            horizon_emb,
            decoder,
            out1,
            out2,
            cfg,
        }
    }

    /// Spatial embedding `[1, 1, N, D]`.
    fn spatial_embedding<'t>(&self, tape: &'t Tape) -> Var<'t> {
        let n = self.se_raw.shape()[0];
        let se = tape.constant(self.se_raw.clone());
        let h = self.se_proj1.forward(tape, se).relu();
        self.se_proj2.forward(tape, h).reshape(&[1, 1, n, self.cfg.d])
    }

    /// Temporal embedding `[B, T, 1, D]` from per-step time-of-day values
    /// `[B, T]` encoded as multi-frequency `(sin, cos)` phases.
    fn temporal_embedding<'t>(&self, tape: &'t Tape, tod: &Tensor) -> Var<'t> {
        let (b, t) = (tod.shape()[0], tod.shape()[1]);
        let k = TE_FREQUENCIES.len();
        let mut enc = Vec::with_capacity(b * t * 2 * k);
        for &v in tod.as_slice() {
            for &f in &TE_FREQUENCIES {
                let phase = v * f * std::f32::consts::TAU;
                enc.push(phase.sin());
                enc.push(phase.cos());
            }
        }
        let enc = tape.constant(Tensor::from_vec(enc, &[b, t, 2 * k]));
        let h = self.te_proj1.forward(tape, enc).relu();
        self.te_proj2.forward(tape, h).reshape(&[b, t, 1, self.cfg.d])
    }

    /// Extracts the (constant) time-of-day track `[B, T_in]` from the input
    /// and extends it `t_out` steps into the future `[B, T_out]`.
    fn tod_tracks(&self, x: &Tensor) -> (Tensor, Tensor) {
        let (b, t_in) = (x.shape()[0], x.shape()[1]);
        let n = x.shape()[2];
        let c = x.shape()[3];
        let mut hist = Vec::with_capacity(b * t_in);
        for bi in 0..b {
            for t in 0..t_in {
                hist.push(x.as_slice()[((bi * t_in + t) * n) * c + 1]);
            }
        }
        let mut fut = Vec::with_capacity(b * self.cfg.t_out);
        for bi in 0..b {
            let mut cur = hist[bi * t_in + t_in - 1];
            for _ in 0..self.cfg.t_out {
                cur = advance_time_of_day(cur);
                fut.push(cur);
            }
        }
        (Tensor::from_vec(hist, &[b, t_in]), Tensor::from_vec(fut, &[b, self.cfg.t_out]))
    }
}

impl TrafficModel for Gman {
    fn name(&self) -> &'static str {
        "GMAN"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("GMAN").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>, train: Option<&mut TrainCtx<'_>>) -> Var<'t> {
        let shape = x.shape();
        let (b, t_in, n, _c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(t_in, self.cfg.t_in);
        let d = self.cfg.d;
        let xv = x.value();
        let (tod_hist, tod_fut) = self.tod_tracks(&xv);
        let se = self.spatial_embedding(tape);
        let ste_hist = self.temporal_embedding(tape, &tod_hist).add(&se); // [B, T_in, N, D]
        let hzn = self.horizon_emb.var(tape).reshape(&[1, self.cfg.t_out, 1, d]);
        let ste_fut = self.temporal_embedding(tape, &tod_fut).add(&se).add(&hzn); // [B, T_out, N, D]
                                                                                  // Input projection of the value feature.
        let vals = x.narrow(3, 0, 1); // [B, T, N, 1]
        let mut h = self.input_proj.forward(tape, vals); // [B, T, N, D]
        for block in &self.encoder {
            h = block.forward(tape, h, &ste_hist);
        }
        if let Some(ctx) = train {
            if self.cfg.dropout > 0.0 {
                use rand::Rng;
                let rng = &mut *ctx.rng;
                h = h.dropout(self.cfg.dropout, true, || rng.gen::<f32>());
            }
        }
        // Transform attention: future time steps query historical ones.
        let q = ste_fut.permute(&[0, 2, 1, 3]).reshape(&[b * n, self.cfg.t_out, d]);
        let kv = h.add(&ste_hist).permute(&[0, 2, 1, 3]).reshape(&[b * n, t_in, d]);
        let mut hd = self
            .transform
            .forward(tape, q, kv)
            .reshape(&[b, n, self.cfg.t_out, d])
            .permute(&[0, 2, 1, 3]); // [B, T_out, N, D]
        for block in &self.decoder {
            hd = block.forward(tape, hd, &ste_fut);
        }
        let y = self.out2.forward(tape, self.out1.forward(tape, hd).relu());
        y.reshape(&[b, self.cfg.t_out, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(12);
        let net = freeway_corridor(6, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    /// Input whose time-of-day feature advances one step per position.
    fn timed_input(b: usize, t: usize, n: usize) -> Tensor {
        let mut v = Vec::with_capacity(b * t * n * 2);
        for _ in 0..b {
            for ti in 0..t {
                for _ in 0..n {
                    v.push(0.5); // value feature
                    v.push(ti as f32 / 288.0); // tod feature
                }
            }
        }
        Tensor::from_vec(v, &[b, t, n, 2])
    }

    #[test]
    fn forward_shape() {
        let (ctx, mut rng) = setup();
        let model = Gman::new(&ctx, GmanConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(timed_input(2, 12, 6));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 6]);
    }

    #[test]
    fn tod_tracks_advance_continuously() {
        let (ctx, mut rng) = setup();
        let model = Gman::new(&ctx, GmanConfig::default(), &mut rng);
        let x = timed_input(1, 12, 6);
        let (hist, fut) = model.tod_tracks(&x);
        assert_eq!(hist.shape(), &[1, 12]);
        assert_eq!(fut.shape(), &[1, 12]);
        // future continues where history ends
        let expect = 12.0 / 288.0;
        assert!((fut.at(&[0, 0]) - expect).abs() < 1e-5);
        assert!(fut.at(&[0, 11]) > fut.at(&[0, 0]));
    }

    #[test]
    fn spatial_embedding_differs_across_nodes() {
        let (ctx, mut rng) = setup();
        let model = Gman::new(&ctx, GmanConfig::default(), &mut rng);
        let tape = Tape::new();
        let se = model.spatial_embedding(&tape).value();
        let row = |i: usize| -> Vec<f32> { (0..16).map(|d| se.at(&[0, 0, i, d])).collect() };
        assert_ne!(row(0), row(5));
    }

    #[test]
    fn grads_reach_all_params() {
        let (ctx, mut rng) = setup();
        let model = Gman::new(&ctx, GmanConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(timed_input(1, 12, 6));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
