//! Training and prediction loops shared by every experiment.
//!
//! Mirrors the paper's setup (§V): Adam, masked MAE loss on z-scored
//! values, gradient clipping, mini-batches; scheduled sampling for the
//! seq2seq models with an inverse-sigmoid decay of the teacher-forcing
//! probability.
//!
//! ## Resilience
//!
//! The trainer is crash- and divergence-tolerant:
//!
//! - **Checkpoints** — with [`TrainConfig::checkpoint_every`] /
//!   [`TrainConfig::checkpoint_path`] set, a full [`TrainState`]
//!   (weights, Adam moments, RNG, counters) is written atomically at
//!   epoch boundaries; [`TrainConfig::resume_from`] continues a killed
//!   run **bit-identically** (same epoch losses as an uninterrupted
//!   run, verified by integration test).
//! - **Divergence supervision** — with [`TrainConfig::divergence`] set,
//!   a rolling-median [`LossMonitor`] watches batch losses; on NaN or
//!   explosion the epoch is rolled back to its starting snapshot with
//!   the learning rate scaled by `lr_backoff`, giving up cleanly after
//!   `max_retries` consecutive failures ([`TrainReport::diverged`]).
//! - **Step skipping** — a non-finite gradient norm skips the optimizer
//!   step (counted in [`TrainReport::skipped_steps`] and the
//!   `train/skipped_steps` counter) instead of poisoning the weights.
//!
//! Fault sites `abort`, `nan_grad`, and `nan_val` (see
//! [`traffic_obs::faults`]) let tests inject crashes, NaN gradients,
//! and NaN validation losses at deterministic batch counts.

use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_data::{batches, PreparedData, WindowedData, ZScore};
use traffic_models::{train_horizon, TrafficModel, TrainCtx};
use traffic_nn::loss::{masked_mae, null_mask};
use traffic_nn::{Adam, AdamState};
use traffic_obs::faults::{self, FaultMode};
use traffic_obs::{counter, emit_with, gauge, histogram, span, Event};
use traffic_tensor::{Tape, Tensor};

use crate::divergence::{DivergencePolicy, LossMonitor, Verdict};
use crate::insight::{self, BlameReport, HealthMonitor};
use crate::resume::{config_fingerprint, BestSnapshot, TrainState};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64; smaller fits CPU budgets).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// RNG seed for shuffling / dropout / scheduled sampling.
    pub seed: u64,
    /// Optional cap on batches per epoch (CPU budget knob). `None` = all.
    pub max_batches_per_epoch: Option<usize>,
    /// Scheduled-sampling decay constant (larger = slower decay).
    pub teacher_decay: f32,
    /// Early stopping: abort after this many epochs without validation
    /// improvement and restore the best weights. `None` disables it (and
    /// skips validation entirely).
    pub early_stop_patience: Option<usize>,
    /// Cap on validation batches per epoch when early stopping is on.
    pub max_val_batches: Option<usize>,
    /// Optional step-decay LR schedule `(gamma, every_epochs)` — the
    /// original DCRNN/Graph-WaveNet training recipes decay the lr.
    pub lr_decay: Option<(f32, usize)>,
    /// Write a full [`TrainState`] checkpoint every N completed epochs
    /// (requires [`TrainConfig::checkpoint_path`]). `None` disables.
    pub checkpoint_every: Option<usize>,
    /// Where epoch checkpoints are written (atomically, `TNN2` format).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from this checkpoint if it exists. A missing file means a
    /// fresh start; a corrupt file or config-fingerprint mismatch is
    /// reported (counter `train/resume_failures`) and also starts fresh.
    pub resume_from: Option<PathBuf>,
    /// Enable the divergence supervisor (rollback + LR backoff).
    /// `None` disables monitoring entirely.
    pub divergence: Option<DivergencePolicy>,
    /// Training-health sampling cadence ([`crate::insight`]): `Some(k)`
    /// samples per-layer statistics every `k` optimizer steps,
    /// `Some(0)` forces it off, `None` (default) defers to the
    /// `TRAFFIC_INSIGHT` environment knob. Telemetry-only — never part
    /// of the resume fingerprint, and the loss sequence is
    /// bit-identical whether sampling is on or off.
    pub insight_every: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 16,
            lr: 3e-3,
            grad_clip: 5.0,
            seed: 7,
            max_batches_per_epoch: None,
            teacher_decay: 60.0,
            early_stop_patience: None,
            max_val_batches: Some(8),
            lr_decay: None,
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
            divergence: None,
            insight_every: None,
        }
    }
}

/// What the trainer measured.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean masked-MAE training loss per epoch (normalised scale).
    pub epoch_losses: Vec<f32>,
    /// Validation losses per epoch (empty unless early stopping is on).
    pub val_losses: Vec<f32>,
    /// Wall-clock time per epoch.
    pub epoch_times: Vec<Duration>,
    /// Mean time per epoch.
    pub mean_epoch_time: Duration,
    /// Epoch whose weights were kept (last epoch without early stopping).
    pub best_epoch: usize,
    /// Optimizer steps skipped because the gradient norm was non-finite.
    pub skipped_steps: usize,
    /// Epoch rollbacks performed by the divergence supervisor.
    pub rollbacks: usize,
    /// True when the divergence supervisor exhausted its retries and
    /// gave up (the report then covers the completed epochs only).
    pub diverged: bool,
    /// Epoch index training resumed at, if a checkpoint was loaded.
    pub resumed_at: Option<usize>,
    /// First blame report captured by the health monitor (skipped step
    /// or divergence rollback); `None` when insight was off or the run
    /// stayed healthy.
    pub blame: Option<BlameReport>,
}

/// Mean masked-MAE loss of a model over a split (normalised scale),
/// without touching gradients.
pub fn validation_loss(
    model: &dyn TrafficModel,
    data: &WindowedData,
    horizon: usize,
    batch_size: usize,
    max_batches: Option<usize>,
) -> f32 {
    // Fault site: a poisoned validation pass (tests the trainer's
    // NaN-val-loss handling without touching the model).
    if faults::fire("nan_val").is_some() {
        return f32::NAN;
    }
    // No backward pass ever runs on these forwards: let models take
    // their inference shortcuts (e.g. GWN's cached adjacency).
    let _inf = traffic_tensor::inference::InferenceGuard::enter();
    let _phase = traffic_obs::live::phase(traffic_obs::live::Phase::Validate);
    let mut sum = 0.0f64;
    let mut count = 0usize;
    // One tape for the whole split: `reset` keeps the node list's
    // capacity and recycles node buffers into the traffic-mem pool.
    let mut tape = Tape::new();
    for batch in batches(data, batch_size, None::<&mut StdRng>) {
        if let Some(cap) = max_batches {
            if count >= cap {
                break;
            }
        }
        tape.reset();
        let x = tape.constant(batch.x.clone());
        let pred = model.forward(&tape, x, None);
        let pred = pred.narrow(1, 0, horizon);
        let y_norm = batch.y_norm.narrow(1, 0, horizon);
        let y_raw = batch.y_raw.narrow(1, 0, horizon);
        let mask = null_mask(&y_raw, 1e-3);
        let loss = masked_mae(&tape, pred, &y_norm, &mask).value().item();
        if loss.is_finite() {
            sum += loss as f64;
            count += 1;
        }
    }
    if count == 0 {
        f32::NAN
    } else {
        (sum / count as f64) as f32
    }
}

/// Inverse-sigmoid scheduled-sampling probability after `step` batches.
pub fn teacher_probability(step: usize, decay: f32) -> f32 {
    decay / (decay + (step as f32 / decay).exp())
}

/// In-memory state captured at the start of an epoch attempt so the
/// divergence supervisor can rewind a blown-up epoch exactly.
struct EpochSnapshot {
    weights: Vec<Tensor>,
    adam: AdamState,
    rng: [u64; 4],
    global_step: usize,
}

/// Trains `model` on the prepared dataset.
pub fn train(model: &dyn TrafficModel, data: &PreparedData, cfg: &TrainConfig) -> TrainReport {
    // Live-telemetry phase marker (`/health` reports "train"); restored
    // on every exit path by the guard.
    let _phase = traffic_obs::live::phase(traffic_obs::live::Phase::Train);
    let fingerprint = config_fingerprint(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let horizon = train_horizon(model.name(), data.t_out);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut val_losses = Vec::with_capacity(cfg.epochs);
    let mut epoch_times: Vec<Duration> = Vec::with_capacity(cfg.epochs);
    let mut global_step = 0usize;
    let mut best: Option<(f32, usize, Vec<Tensor>)> = None;
    let mut stale = 0usize;
    let mut epoch = 0usize;
    let mut lr_scale = 1.0f32;
    let mut retries = 0usize;
    let mut rollbacks = 0usize;
    let mut skipped_steps = 0usize;
    let mut diverged = false;
    let mut resumed_at = None;

    // ---- resume -------------------------------------------------------
    if let Some(path) = &cfg.resume_from {
        if path.exists() {
            match TrainState::load_with_retry(
                path,
                crate::resume::CKPT_IO_ATTEMPTS,
                crate::resume::CKPT_IO_BACKOFF,
            ) {
                Ok(st) if st.fingerprint != fingerprint => {
                    counter("train/resume_failures").inc();
                    eprintln!(
                        "traffic-resilience: checkpoint {} was written under a different \
                         training config (fingerprint mismatch); starting fresh",
                        path.display()
                    );
                }
                Ok(st) => match st.apply_weights(model.store()) {
                    Ok(()) => {
                        rng = StdRng::from_state(st.rng);
                        opt.load_state(st.adam);
                        epoch = st.epochs_done;
                        global_step = st.global_step;
                        lr_scale = st.lr_scale;
                        rollbacks = st.rollbacks;
                        skipped_steps = st.skipped_steps;
                        stale = st.stale;
                        epoch_losses = st.epoch_losses;
                        val_losses = st.val_losses;
                        epoch_times =
                            st.epoch_times.iter().map(|&s| Duration::from_secs_f64(s)).collect();
                        best = st.best.map(|b| (b.val, b.epoch, b.weights));
                        resumed_at = Some(epoch);
                        counter("train/resumes").inc();
                        emit_with(|| {
                            Event::new("resume")
                                .with("model", model.name())
                                .with("epoch", epoch as u64)
                                .with("global_step", global_step as u64)
                        });
                    }
                    Err(e) => {
                        counter("train/resume_failures").inc();
                        eprintln!(
                            "traffic-resilience: checkpoint {} does not match the model ({e}); \
                             starting fresh",
                            path.display()
                        );
                    }
                },
                Err(e) => {
                    counter("train/resume_failures").inc();
                    eprintln!(
                        "traffic-resilience: cannot resume from {} ({e}); starting fresh",
                        path.display()
                    );
                }
            }
        }
    }

    let mut monitor = cfg.divergence.as_ref().map(LossMonitor::from_policy);
    // Health telemetry: `None` (the default) keeps the hot loop at one
    // Option check per step — see the overhead policy in [`insight`].
    let mut health = insight::resolve_every(cfg.insight_every).map(HealthMonitor::new);
    let mut blame: Option<BlameReport> = None;
    // Metric handles are 'static interned slots; resolving them once here
    // keeps the per-step path free of registry lookups (which allocate
    // their key) — see the zero-alloc gate in tests/insight_alloc.rs.
    let grad_norm_gauge = gauge("train.grad_norm");
    let grad_norm_hist = histogram("train.grad_norm");
    // One tape for the whole run; `reset` per batch retains capacity and
    // returns the previous batch's node buffers to the traffic-mem pool.
    let mut tape = Tape::new();
    while epoch < cfg.epochs {
        // Epoch-start snapshot for divergence rollback (tensor clones are
        // cheap copy-on-write buffer handles).
        let rollback_snap = cfg.divergence.as_ref().map(|_| EpochSnapshot {
            weights: model.store().snapshot(),
            adam: opt.state(),
            rng: rng.state(),
            global_step,
        });
        // The effective lr is fully derived (schedule × backoff), so a
        // resumed run reconstructs it exactly.
        let base_lr = match cfg.lr_decay {
            Some((gamma, every)) => traffic_nn::StepDecay::new(cfg.lr, gamma, every).lr_at(epoch),
            None => cfg.lr,
        };
        opt.set_lr(base_lr * lr_scale);
        let epoch_span = span!("train/epoch", model = model.name(), epoch = epoch as u64);
        let mut loss_sum = 0.0f64;
        let mut batches_run = 0usize;
        let mut samples_seen = 0usize;
        let mut rollback_verdict: Option<Verdict> = None;
        let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ (epoch as u64).wrapping_mul(0x9e37));
        for batch in batches(&data.train, cfg.batch_size, Some(&mut shuffle_rng)) {
            if let Some(cap) = cfg.max_batches_per_epoch {
                if batches_run >= cap {
                    break;
                }
            }
            // Fault site: a mid-epoch crash. Hard = the process dies on
            // the spot (SIGKILL-grade, for kill-and-resume tests); Soft =
            // a panic that `catch_unwind` harnesses can contain.
            if let Some(mode) = faults::fire("abort") {
                match mode {
                    FaultMode::Hard => {
                        eprintln!("traffic-resilience: injected hard abort (fault site `abort`)");
                        std::process::abort();
                    }
                    FaultMode::Soft => panic!("injected mid-epoch abort (fault site `abort`)"),
                }
            }
            let batch_span = span!("train/batch");
            let batch_samples = batch.x.shape()[0];
            tape.reset();
            let x = tape.constant(batch.x.clone());
            let y_norm = batch.y_norm.narrow(1, 0, horizon);
            let y_raw = batch.y_raw.narrow(1, 0, horizon);
            let teacher_prob = teacher_probability(global_step, cfg.teacher_decay);
            let mut tctx = TrainCtx { rng: &mut rng, teacher: Some(&batch.y_norm), teacher_prob };
            // Phase-level profile ops: the per-kernel ops recorded inside
            // (gemm/…, bwd/…) nest under these in the Chrome trace.
            let pred = {
                let _prof = traffic_obs::profile::op("train", "forward");
                model.forward(&tape, x, Some(&mut tctx))
            };
            let mask = null_mask(&y_raw, 1e-3);
            let loss = masked_mae(&tape, pred, &y_norm, &mask);
            let loss_val = loss.value().item();
            if loss_val.is_finite() {
                let grads = {
                    let _prof = traffic_obs::profile::op("train", "backward");
                    tape.backward(loss)
                };
                let _prof = traffic_obs::profile::op("train", "optim");
                model.store().zero_grads();
                model.store().capture_grads(&tape, &grads);
                // Fault site: a numerically blown-up backward pass.
                if faults::fire("nan_grad").is_some() {
                    model.store().poison_grads();
                }
                let grad_norm = model.store().clip_grad_norm(cfg.grad_clip);
                if grad_norm.is_finite() {
                    grad_norm_gauge.set(grad_norm as f64);
                    grad_norm_hist.record(grad_norm as f64);
                    // On sampled steps keep pre-step weight handles
                    // (cheap COW clones) so the monitor can compute
                    // update/weight ratios after the optimizer runs.
                    let prev = health
                        .as_ref()
                        .filter(|h| h.due(global_step))
                        .map(|_| model.store().snapshot());
                    opt.step(model.store());
                    if let (Some(prev), Some(h)) = (prev, health.as_mut()) {
                        h.sample(model.name(), epoch, global_step, model.store(), &tape, &prev);
                    }
                    loss_sum += loss_val as f64;
                } else {
                    // Stepping on NaN/∞ gradients would poison every
                    // weight; skip the update and count it.
                    skipped_steps += 1;
                    counter("train/skipped_steps").inc();
                    if let Some(h) = health.as_ref() {
                        let report = h.blame(model.store(), "non_finite_grad", epoch, global_step);
                        report.emit(model.name());
                        blame.get_or_insert(report);
                    }
                    emit_with(|| {
                        Event::new("skipped_step")
                            .with("model", model.name())
                            .with("epoch", epoch as u64)
                            .with("step", global_step as u64)
                            .with("grad_norm", grad_norm)
                    });
                }
                drop(_prof);
            } else {
                counter("train.nonfinite_batches").inc();
            }
            counter("train.batches").inc();
            histogram("train.batch_s").record_duration(batch_span.finish());
            // One relaxed atomic load when nothing live is attached.
            traffic_obs::live::heartbeat(epoch, global_step);
            batches_run += 1;
            samples_seen += batch_samples;
            global_step += 1;
            if let Some(mon) = monitor.as_mut() {
                match mon.observe(loss_val) {
                    Verdict::Healthy => {}
                    verdict => {
                        rollback_verdict = Some(verdict);
                        break;
                    }
                }
            }
        }
        // ---- divergence rollback -------------------------------------
        if let Some(verdict) = rollback_verdict {
            let policy = cfg.divergence.as_ref().expect("verdict implies policy");
            let snap = rollback_snap.as_ref().expect("verdict implies snapshot");
            // Blame before the restore wipes the diverged state; the
            // rewound history no longer describes the live weights.
            if let Some(h) = health.as_mut() {
                let report = h.blame(model.store(), "divergence_rollback", epoch, global_step);
                report.emit(model.name());
                blame.get_or_insert(report);
                h.clear_history();
            }
            model.store().restore(&snap.weights);
            opt.load_state(snap.adam.clone());
            rng = StdRng::from_state(snap.rng);
            global_step = snap.global_step;
            if let Some(mon) = monitor.as_mut() {
                mon.reset();
            }
            rollbacks += 1;
            counter("train/rollbacks").inc();
            let give_up = retries >= policy.max_retries;
            if !give_up {
                retries += 1;
                lr_scale *= policy.lr_backoff;
            }
            emit_with(|| {
                let (kind, loss, median) = match verdict {
                    Verdict::NonFinite => ("non_finite", f32::NAN, f32::NAN),
                    Verdict::Exploding { loss, median } => ("exploding", loss, median),
                    Verdict::Healthy => unreachable!(),
                };
                Event::new(if give_up { "divergence_giveup" } else { "divergence_rollback" })
                    .with("model", model.name())
                    .with("epoch", epoch as u64)
                    .with("kind", kind)
                    .with("loss", loss)
                    .with("median", median)
                    .with("lr_scale", lr_scale)
                    .with("retries", retries as u64)
            });
            if give_up {
                diverged = true;
                break;
            }
            continue; // retry the same epoch from its snapshot
        }
        retries = 0;
        let epoch_loss = (loss_sum / batches_run.max(1) as f64) as f32;
        epoch_losses.push(epoch_loss);
        let epoch_dur = epoch_span.finish();
        epoch_times.push(epoch_dur);
        histogram("train.epoch_s").record_duration(epoch_dur);
        // Histogram (not just a console-event field) so the manifest's
        // metrics summary carries throughput alongside predict.window_s.
        if epoch_dur.as_secs_f64() > 0.0 {
            histogram("train.samples_per_sec")
                .record(samples_seen as f64 / epoch_dur.as_secs_f64());
        }
        // Publish mem/pool_hit_rate & friends once per epoch.
        traffic_tensor::mem::refresh_gauges();
        let mut stop = false;
        if let Some(patience) = cfg.early_stop_patience {
            let vl = if data.val.is_empty() {
                *epoch_losses.last().expect("at least one epoch")
            } else {
                let val_span = span!("train/validate", model = model.name(), epoch = epoch as u64);
                let vl =
                    validation_loss(model, &data.val, horizon, cfg.batch_size, cfg.max_val_batches);
                val_span.finish();
                vl
            };
            val_losses.push(vl);
            // A NaN val loss must never become the "best" (NaN < x is
            // false, so it would silently freeze best at the first NaN);
            // it is "no improvement" and counts toward patience.
            let improved = vl.is_finite() && best.as_ref().is_none_or(|(b, _, _)| vl < *b);
            if improved {
                best = Some((vl, epoch, model.store().snapshot()));
                stale = 0;
            } else {
                if !vl.is_finite() {
                    counter("train/nonfinite_val").inc();
                }
                stale += 1;
                if stale >= patience {
                    stop = true;
                }
            }
        }
        // One structured event per epoch; the closure means no Event is
        // built when no sink is installed.
        emit_with(|| {
            let secs = epoch_dur.as_secs_f64();
            let mut ev = Event::new("epoch")
                .with("model", model.name())
                .with("epoch", epoch as u64)
                .with("loss", epoch_loss)
                .with("epoch_s", secs)
                .with("teacher_prob", teacher_probability(global_step, cfg.teacher_decay))
                .with("batches", batches_run as u64);
            if secs > 0.0 {
                ev = ev.with("samples_per_sec", samples_seen as f64 / secs);
            }
            if let Some(vl) = val_losses.last() {
                ev = ev.with("val_loss", *vl);
            }
            ev
        });
        // ---- checkpoint ----------------------------------------------
        if let (Some(every), Some(path)) = (cfg.checkpoint_every, cfg.checkpoint_path.as_ref()) {
            if every > 0 && (epoch + 1).is_multiple_of(every) {
                let state = TrainState {
                    fingerprint,
                    epochs_done: epoch + 1,
                    global_step,
                    rng: rng.state(),
                    lr_scale,
                    rollbacks,
                    skipped_steps,
                    stale,
                    epoch_losses: epoch_losses.clone(),
                    val_losses: val_losses.clone(),
                    epoch_times: epoch_times.iter().map(Duration::as_secs_f64).collect(),
                    weights: TrainState::capture_weights(model.store()),
                    adam: opt.state(),
                    best: best.as_ref().map(|(v, e, w)| BestSnapshot {
                        val: *v,
                        epoch: *e,
                        weights: w.clone(),
                    }),
                };
                match state.save_with_retry(
                    path,
                    crate::resume::CKPT_IO_ATTEMPTS,
                    crate::resume::CKPT_IO_BACKOFF,
                ) {
                    Ok(()) => {
                        counter("train/checkpoints").inc();
                        emit_with(|| {
                            Event::new("checkpoint")
                                .with("model", model.name())
                                .with("epoch", (epoch + 1) as u64)
                                .with("path", path.display().to_string())
                        });
                    }
                    Err(e) => {
                        // A failed save must not kill the run: keep
                        // training, the previous checkpoint stays valid.
                        counter("train/ckpt_failures").inc();
                        emit_with(|| {
                            Event::new("checkpoint_failed")
                                .with("model", model.name())
                                .with("epoch", (epoch + 1) as u64)
                                .with("error", e.to_string())
                        });
                        eprintln!(
                            "traffic-resilience: checkpoint save failed ({e}); training continues"
                        );
                    }
                }
            }
        }
        if stop {
            break;
        }
        epoch += 1;
    }
    let best_epoch = match best {
        Some((_, epoch, snapshot)) => {
            model.store().restore(&snapshot);
            epoch
        }
        None => epoch_losses.len().saturating_sub(1),
    };
    let mean_epoch_time = if epoch_times.is_empty() {
        Duration::ZERO
    } else {
        epoch_times.iter().sum::<Duration>() / epoch_times.len() as u32
    };
    TrainReport {
        epoch_losses,
        val_losses,
        epoch_times,
        mean_epoch_time,
        best_epoch,
        skipped_steps,
        rollbacks,
        diverged,
        resumed_at,
        blame,
    }
}

/// Runs the model over a windowed split and returns predictions on the
/// **original** scale, `[S, T_out, N]`.
pub fn predict(
    model: &dyn TrafficModel,
    data: &WindowedData,
    scaler: &ZScore,
    batch_size: usize,
) -> Tensor {
    // Pure no-grad evaluation: models may shortcut (GWN serves its
    // cached adaptive adjacency) without changing any value.
    let _inf = traffic_tensor::inference::InferenceGuard::enter();
    let _phase = traffic_obs::live::phase(traffic_obs::live::Phase::Predict);
    let mut parts: Vec<Tensor> = Vec::new();
    let mut tape = Tape::new();
    for batch in batches(data, batch_size, None::<&mut StdRng>) {
        tape.reset();
        let x = tape.constant(batch.x.clone());
        let pred = model.forward(&tape, x, None);
        let mut denorm = pred.value();
        scaler.inverse_owned(&mut denorm);
        parts.push(denorm);
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat(&refs, 0)
}

/// Convenience: predict + wall-clock (Table III inference time). The
/// measurement is a `predict` span, so it also lands in the span
/// registry and any installed sink.
pub fn timed_predict(
    model: &dyn TrafficModel,
    data: &WindowedData,
    scaler: &ZScore,
    batch_size: usize,
) -> (Tensor, Duration) {
    let guard = span!("predict", model = model.name(), windows = data.len() as u64);
    let pred = predict(model, data, scaler, batch_size);
    let dur = guard.finish();
    histogram("predict.window_s").record(dur.as_secs_f64() / data.len().max(1) as f64);
    (pred, dur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_data::{prepare, simulate, SimConfig, Task};
    use traffic_models::{build_model, GraphContext};

    fn tiny_setup() -> (PreparedData, GraphContext) {
        let ds = simulate(&SimConfig::new("t", Task::Speed, 6, 4));
        let prepared = prepare(&ds, 12, 12);
        let ctx = GraphContext::from_network(&ds.network, 4);
        (prepared, ctx)
    }

    #[test]
    fn teacher_probability_decays() {
        assert!(teacher_probability(0, 60.0) > 0.95);
        assert!(teacher_probability(500, 60.0) < teacher_probability(10, 60.0));
    }

    #[test]
    fn training_reduces_loss_graph_wavenet() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(1);
        let model = build_model("Graph-WaveNet", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            max_batches_per_epoch: Some(10),
            ..Default::default()
        };
        let report = train(model.as_ref(), &data, &cfg);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "loss should drop: {:?}",
            report.epoch_losses
        );
        assert!(!model.store().has_non_finite());
    }

    #[test]
    fn predict_shapes_and_scale() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let model = build_model("STSGCN", &ctx, &mut rng);
        let pred = predict(model.as_ref(), &data.test, &data.scaler, 8);
        assert_eq!(pred.shape()[0], data.test.len());
        assert_eq!(pred.shape()[1], 12);
        assert_eq!(pred.shape()[2], 6);
        // predictions should land near the physical speed range after
        // denormalisation (untrained, so roughly near the mean)
        assert!(pred.mean_all() > 0.0 && pred.mean_all() < 100.0);
    }

    #[test]
    fn timed_predict_nonzero() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let model = build_model("STG2Seq", &ctx, &mut rng);
        let (_pred, dur) = timed_predict(model.as_ref(), &data.test, &data.scaler, 8);
        assert!(dur > Duration::ZERO);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(5);
        let model = build_model("STG2Seq", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 8,
            max_batches_per_epoch: Some(4),
            early_stop_patience: Some(1),
            max_val_batches: Some(2),
            lr: 0.1, // aggressive lr to force val-loss oscillation
            ..Default::default()
        };
        let report = train(model.as_ref(), &data, &cfg);
        assert_eq!(report.val_losses.len(), report.epoch_losses.len());
        // best epoch must be a minimiser of the recorded val losses
        let best = report.val_losses[report.best_epoch];
        assert!(report.val_losses.iter().all(|&v| best <= v + 1e-6));
        // with patience 1, training stops one epoch after the best
        assert!(report.epoch_losses.len() <= report.best_epoch + 2);
    }

    #[test]
    fn lr_decay_schedule_is_applied() {
        // With an aggressive decay the later epochs barely move the loss,
        // so total improvement is smaller than without decay.
        let (data, ctx) = tiny_setup();
        let run = |decay: Option<(f32, usize)>| {
            let mut rng = StdRng::seed_from_u64(8);
            let model = build_model("STG2Seq", &ctx, &mut rng);
            let cfg = TrainConfig {
                epochs: 4,
                batch_size: 8,
                max_batches_per_epoch: Some(6),
                lr_decay: decay,
                ..Default::default()
            };
            let report = train(model.as_ref(), &data, &cfg);
            *report.epoch_losses.last().unwrap()
        };
        let frozen = run(Some((1e-6, 1))); // lr collapses after epoch 0
        let normal = run(None);
        assert!(normal < frozen, "decayed-lr run should improve less: {normal} vs {frozen}");
    }

    #[test]
    fn validation_loss_finite() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(6);
        let model = build_model("GMAN", &ctx, &mut rng);
        let vl = validation_loss(model.as_ref(), &data.val, 12, 8, Some(2));
        assert!(vl.is_finite() && vl > 0.0);
    }

    #[test]
    fn stgcn_trains_on_single_step() {
        let (data, ctx) = tiny_setup();
        let mut rng = StdRng::seed_from_u64(4);
        let model = build_model("STGCN", &ctx, &mut rng);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            max_batches_per_epoch: Some(6),
            ..Default::default()
        };
        let report = train(model.as_ref(), &data, &cfg);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }
}
