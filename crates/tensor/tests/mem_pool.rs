//! Property tests for the traffic-mem buffer pool: recycling must never
//! alias a live tensor, recycled buffers must be fully overwritten
//! before they are read (no stale data leaking into results), and every
//! computation must be bit-identical with the pool on vs off.

use proptest::prelude::*;
use std::sync::Mutex;
use traffic_tensor::{mem, Tape, Tensor};

/// The pool and its cap are process-global; tests in this binary flip
/// the cap, so they serialise on one lock.
fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A random walk of tensor creations, handle clones, mutations, and
/// drops used by the no-aliasing property.
#[derive(Debug, Clone)]
enum PoolOp {
    /// Create a tensor of `64 << size_class` elements filled with a marker.
    Create(u8),
    /// Clone the handle of live tensor `idx` (shares the buffer).
    CloneHandle(usize),
    /// Overwrite live tensor `idx` in place with a new marker.
    Mutate(usize),
    /// Drop live tensor `idx` (recycles its buffer when last handle).
    Drop(usize),
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    // (kind, index, size_class) → PoolOp (the vendored proptest has no
    // prop_oneof; a mapped tuple covers the same space).
    (0u8..4, 0usize..64, 0u8..4).prop_map(|(kind, idx, size_class)| match kind {
        0 => PoolOp::Create(size_class),
        1 => PoolOp::CloneHandle(idx),
        2 => PoolOp::Mutate(idx),
        _ => PoolOp::Drop(idx),
    })
}

/// Forward + backward over a mixed-op expression; returns the bit
/// patterns of the loss and both leaf gradients.
fn forward_backward(a: &Tensor, b: &Tensor) -> (u32, Vec<u32>, Vec<u32>) {
    let tape = Tape::new();
    let av = tape.leaf(a.clone(), true);
    let bv = tape.leaf(b.clone(), true);
    // Exercise elementwise, matmul, reduction, and diamond paths.
    let prod = av.matmul(&bv.t()); // [m, m]
    let mixed = av.mul(&bv).add(&av).relu().sum_axes(&[1], true);
    let loss = prod.sum_all().add(&mixed.sum_all()).mul_scalar(0.5);
    let grads = tape.backward(loss);
    let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    (loss.value().item().to_bits(), bits(grads.get(av).unwrap()), bits(grads.get(bv).unwrap()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recycling never aliases a live buffer: under any interleaving of
    /// creates/clones/mutations/drops, every live tensor still holds
    /// exactly the marker value last written to it.
    #[test]
    fn no_aliasing_of_live_buffers(ops in prop::collection::vec(pool_op(), 1..40)) {
        let _guard = pool_lock();
        mem::set_mem_cap(usize::MAX);
        mem::trim();
        let mut live: Vec<(Tensor, f32)> = Vec::new();
        let mut next_marker = 1.0f32;
        for op in ops {
            match op {
                PoolOp::Create(size_class) => {
                    let n = 64usize << size_class;
                    live.push((Tensor::full(&[n], next_marker), next_marker));
                    next_marker += 1.0;
                }
                PoolOp::CloneHandle(idx) if !live.is_empty() => {
                    let (t, m) = &live[idx % live.len()];
                    let cloned = (t.clone(), *m);
                    live.push(cloned);
                }
                PoolOp::Mutate(idx) if !live.is_empty() => {
                    let idx = idx % live.len();
                    let m = next_marker;
                    next_marker += 1.0;
                    // Copy-on-write: only this handle may observe the write.
                    live[idx].0.map_inplace(move |_| m);
                    live[idx].1 = m;
                }
                PoolOp::Drop(idx) if !live.is_empty() => {
                    live.swap_remove(idx % live.len());
                }
                _ => {}
            }
            for (t, marker) in &live {
                prop_assert!(
                    t.as_slice().iter().all(|v| v == marker),
                    "live tensor corrupted: expected {marker}"
                );
            }
        }
        drop(live);
        mem::trim();
        mem::set_mem_cap(usize::MAX);
    }

    /// Kernels taking recycled buffers overwrite every element: after
    /// seeding the pool with sentinel-filled buffers of matching sizes,
    /// constructor/op outputs match the pool-off results bit for bit.
    #[test]
    fn recycled_buffers_fully_overwritten(
        data in prop::collection::vec(-2.0f32..2.0, 24..=24),
        sentinel in 100.0f32..1000.0,
    ) {
        let _guard = pool_lock();
        let src = Tensor::from_vec(data, &[4, 6]);
        // Pool off: reference results from fresh allocations.
        mem::set_mem_cap(0);
        mem::trim();
        let reference: Vec<Tensor> = vec![
            Tensor::zeros(&[4, 6]),
            Tensor::full(&[4, 6], 3.5),
            src.map(|v| v * 2.0 + 1.0),
            src.zip_map(&src, |a, b| a * b + a),
            src.sum_axes(&[0], false),
            src.narrow(1, 1, 3),
            src.broadcast_to(&[2, 4, 6]),
            src.matmul(&src.t()),
        ];
        // Pool on, seeded with sentinel-filled garbage of every size the
        // ops above will request.
        mem::set_mem_cap(usize::MAX);
        for _ in 0..3 {
            for n in [6usize, 18, 24, 16, 48] {
                drop(Tensor::full(&[n], sentinel));
            }
        }
        let pooled: Vec<Tensor> = vec![
            Tensor::zeros(&[4, 6]),
            Tensor::full(&[4, 6], 3.5),
            src.map(|v| v * 2.0 + 1.0),
            src.zip_map(&src, |a, b| a * b + a),
            src.sum_axes(&[0], false),
            src.narrow(1, 1, 3),
            src.broadcast_to(&[2, 4, 6]),
            src.matmul(&src.t()),
        ];
        for (i, (r, p)) in reference.iter().zip(&pooled).enumerate() {
            prop_assert_eq!(r.shape(), p.shape(), "op {} shape", i);
            let rb: Vec<u32> = r.as_slice().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = p.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(rb, pb, "op {} leaked stale pool data", i);
        }
        mem::trim();
        mem::set_mem_cap(usize::MAX);
    }

    /// Forward + backward are bit-identical with the pool disabled vs
    /// enabled (warm, so the enabled run actually reuses buffers).
    #[test]
    fn pool_on_off_bit_identical(
        a_data in prop::collection::vec(-2.0f32..2.0, 12..=12),
        b_data in prop::collection::vec(-2.0f32..2.0, 12..=12),
    ) {
        let _guard = pool_lock();
        let a = Tensor::from_vec(a_data, &[3, 4]);
        let b = Tensor::from_vec(b_data, &[3, 4]);
        mem::set_mem_cap(0);
        mem::trim();
        let unpooled = forward_backward(&a, &b);
        mem::set_mem_cap(usize::MAX);
        let _warmup = forward_backward(&a, &b); // populate the free lists
        let pooled = forward_backward(&a, &b);  // now served from the pool
        prop_assert_eq!(unpooled, pooled, "pool on/off must not change any bit");
        mem::trim();
        mem::set_mem_cap(usize::MAX);
    }
}
