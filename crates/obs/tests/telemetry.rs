//! Integration tests exercising the public telemetry surface the way
//! the pipeline uses it: spans + metrics + a Run writing a JSONL
//! manifest, then the manifest parsed back with the bundled JSON
//! parser.
//!
//! Sinks and the metrics registry are process-global, so tests that
//! install sinks or reset metrics serialize on `GLOBAL`.

use std::sync::Mutex;
use std::time::Duration;

use traffic_obs as obs;
use traffic_obs::span;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test must not wedge the others.
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn jsonl_manifest_round_trip() {
    let _g = lock();
    let dir = std::env::temp_dir().join("traffic_obs_itest_manifest");
    let manifest = {
        let run = obs::Run::named("itest").jsonl(&dir).start().expect("start run");
        obs::counter("itest.batches").add(12);
        obs::histogram("itest.epoch_s").record(0.25);
        for epoch in 0..3u64 {
            let guard = span!("train/epoch", model = "STGCN", epoch = epoch);
            obs::emit(
                &obs::Event::new("epoch")
                    .with("model", "STGCN")
                    .with("epoch", epoch)
                    .with("loss", 1.0 / (epoch + 1) as f64)
                    .with("epoch_s", guard.finish()),
            );
        }
        run.manifest_path().expect("jsonl sink requested").to_path_buf()
    }; // <- run drops: summary + run_end + flush

    let content = std::fs::read_to_string(&manifest).expect("manifest readable");
    let lines: Vec<obs::json::Json> =
        content.lines().map(|l| obs::json::parse(l).expect("valid JSON line")).collect();

    let kind = |j: &obs::json::Json| j.get("type").and_then(|v| v.as_str()).unwrap().to_string();
    assert_eq!(kind(&lines[0]), "run_start");
    assert_eq!(kind(lines.last().unwrap()), "run_end");
    assert!(lines.last().unwrap().get("wall_s").and_then(|v| v.as_f64()).unwrap() >= 0.0);

    // one event per epoch, in order, with the loss fields intact
    let epochs: Vec<&obs::json::Json> = lines.iter().filter(|j| kind(j) == "epoch").collect();
    assert_eq!(epochs.len(), 3);
    for (i, e) in epochs.iter().enumerate() {
        assert_eq!(e.get("epoch").and_then(|v| v.as_f64()).unwrap() as usize, i);
        assert_eq!(e.get("model").and_then(|v| v.as_str()).unwrap(), "STGCN");
        assert!(e.get("loss").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    // spans are mirrored into the manifest while a sink is installed
    let spans: Vec<&obs::json::Json> = lines.iter().filter(|j| kind(j) == "span").collect();
    assert!(spans.iter().any(|s| {
        s.get("name").and_then(|v| v.as_str()) == Some("train/epoch")
            && s.get("dur_s").and_then(|v| v.as_f64()).is_some()
    }));

    // the run summary carries every registered metric
    let metrics: Vec<&obs::json::Json> = lines.iter().filter(|j| kind(j) == "metric").collect();
    let by_name = |n: &str| {
        metrics
            .iter()
            .find(|m| m.get("metric").and_then(|v| v.as_str()) == Some(n))
            .unwrap_or_else(|| panic!("metric {n} missing from summary"))
    };
    assert_eq!(by_name("itest.batches").get("value").and_then(|v| v.as_f64()).unwrap(), 12.0);
    let hist = by_name("itest.epoch_s");
    assert_eq!(hist.get("count").and_then(|v| v.as_f64()).unwrap(), 1.0);
    assert!(hist.get("p50").and_then(|v| v.as_f64()).is_some());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn histogram_quantiles_on_known_distribution() {
    let _g = lock();
    let h = obs::histogram("itest.quantiles");
    h.reset();
    // 1..=1000 ms, uniformly — exact quantiles are q * 1.0s
    for i in 1..=1000 {
        h.record(i as f64 * 1e-3);
    }
    assert_eq!(h.count(), 1000);
    for (q, expect) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
        let got = h.quantile(q);
        let rel = (got - expect).abs() / expect;
        assert!(rel < 0.10, "p{}: got {got}, expected {expect}", (q * 100.0) as u32);
    }
}

#[test]
fn concurrent_counter_updates() {
    let _g = lock();
    let c = obs::counter("itest.concurrent");
    c.reset();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(|| {
                let c = obs::counter("itest.concurrent");
                for _ in 0..10_000 {
                    c.inc();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(c.get(), 80_000);
}

#[test]
fn span_nesting_is_per_thread() {
    // No sink/metrics interaction: safe without the global lock.
    let marker = obs::span_marker();
    let outer = span!("itest_outer");
    let handle = std::thread::spawn(move || {
        // a fresh thread starts at depth 0 even while this test's outer
        // span is still open on the main test thread
        let g = span!("itest_thread");
        g.finish();
    });
    handle.join().unwrap();
    {
        let inner = span!("itest_inner");
        inner.finish();
    }
    outer.finish();

    let spans = obs::spans_since(marker);
    let find = |n: &str| spans.iter().find(|s| s.name == n).unwrap_or_else(|| panic!("{n}"));
    assert_eq!(find("itest_thread").depth, 0);
    assert_eq!(find("itest_thread").path, "itest_thread");
    assert_eq!(find("itest_inner").depth, 1);
    assert_eq!(find("itest_inner").path, "itest_outer/itest_inner");
    assert_ne!(find("itest_thread").thread, find("itest_inner").thread);
    // finish order: thread span and inner span both precede outer
    assert!(find("itest_inner").seq < find("itest_outer").seq);
}

#[test]
fn disabled_telemetry_is_cheap() {
    // With no sink installed, emit_with must not build the event.
    let mut built = false;
    {
        let _g = lock(); // sinks down while we probe
        if !obs::enabled() {
            obs::emit_with(|| {
                built = true;
                obs::Event::new("never")
            });
            assert!(!built, "emit_with built an Event with no sink installed");
        }
    }
    // Span timing still works when disabled (Table III depends on it).
    let marker = obs::span_marker();
    let g = span!("itest_disabled");
    std::thread::sleep(Duration::from_millis(2));
    let d = g.finish();
    assert!(d >= Duration::from_millis(2));
    assert_eq!(obs::span_stats("itest_disabled", marker).count, 1);
}
