//! Property-based tests over the public API: tensor algebra invariants,
//! normalisation round-trips, windowing invariants, metric identities, and
//! difficult-interval quantile coverage.

use proptest::prelude::*;
use traffic_suite::data::{moving_std, quantile, MinMax, ZScore};
use traffic_suite::metrics::{evaluate, mean_std};
use traffic_suite::tensor::Tensor;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tensor_add_commutes(a in finite_vec(1..64)) {
        let b: Vec<f32> = a.iter().map(|v| v * 0.5 + 1.0).collect();
        let n = a.len();
        let ta = Tensor::from_vec(a, &[n]);
        let tb = Tensor::from_vec(b, &[n]);
        prop_assert_eq!(ta.add(&tb), tb.add(&ta));
    }

    #[test]
    fn tensor_matmul_identity(a in finite_vec(4..36)) {
        let n = (a.len() as f64).sqrt().floor() as usize;
        let a = &a[..n * n];
        let t = Tensor::from_vec(a.to_vec(), &[n, n]);
        let prod = t.matmul(&Tensor::eye(n));
        for (x, y) in prod.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_involution(a in finite_vec(6..48)) {
        let rows = 2;
        let cols = a.len() / rows;
        let t = Tensor::from_vec(a[..rows * cols].to_vec(), &[rows, cols]);
        prop_assert_eq!(t.t().t(), t);
    }

    #[test]
    fn broadcast_then_unbroadcast_sums(v in finite_vec(2..8), reps in 2usize..5) {
        let n = v.len();
        let t = Tensor::from_vec(v, &[1, n]);
        let big = t.broadcast_to(&[reps, n]);
        let back = big.unbroadcast(&[1, n]);
        for i in 0..n {
            let expect = t.as_slice()[i] * reps as f32;
            prop_assert!((back.as_slice()[i] - expect).abs() < 1e-3 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn zscore_roundtrip(v in finite_vec(4..128)) {
        prop_assume!(v.iter().any(|&x| x != 0.0));
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]);
        let s = ZScore::fit(&t);
        let back = s.inverse(&s.transform(&t));
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() < 1e-2 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn minmax_bounds(v in finite_vec(2..128)) {
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]);
        let s = MinMax::fit(&t);
        let y = s.transform(&t);
        for &x in y.as_slice() {
            prop_assert!((-1e-4..=1.0001).contains(&x));
        }
    }

    #[test]
    fn quantile_monotone(v in finite_vec(2..64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&v, lo) <= quantile(&v, hi) + 1e-6);
    }

    #[test]
    fn moving_std_nonnegative_and_bounded(v in finite_vec(8..128), w in 1usize..10) {
        let n = v.len();
        let overall_range = {
            let lo = v.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            hi - lo
        };
        let ms = moving_std(&Tensor::from_vec(v, &[n]), w);
        for &x in ms.as_slice() {
            prop_assert!(x >= 0.0);
            prop_assert!(x <= overall_range + 1e-3);
        }
    }

    #[test]
    fn mae_bounded_by_rmse(p in finite_vec(4..64)) {
        let n = p.len();
        let target: Vec<f32> = p.iter().map(|v| v + 1.0).collect();
        prop_assume!(target.iter().all(|&t| t != 0.0));
        let m = evaluate(
            &Tensor::from_vec(p, &[n]),
            &Tensor::from_vec(target, &[n]),
            None,
        );
        prop_assert!(m.mae <= m.rmse + 1e-4);
    }

    #[test]
    fn metric_scale_invariance(v in finite_vec(4..64), shift in 1.0f32..50.0) {
        // MAE of (pred+c, target+c) with nonzero targets equals MAE of
        // (pred, target) — translation invariance.
        let n = v.len();
        let pred: Vec<f32> = v.iter().map(|x| x + shift).collect();
        let target: Vec<f32> = v.iter().map(|x| x + shift + 2.0).collect();
        prop_assume!(target.iter().all(|&t| t.abs() > 1e-3));
        let m = evaluate(
            &Tensor::from_vec(pred, &[n]),
            &Tensor::from_vec(target, &[n]),
            None,
        );
        prop_assert!((m.mae - 2.0).abs() < 1e-3);
    }

    #[test]
    fn mean_std_consistent(v in finite_vec(1..64)) {
        let (mean, std) = mean_std(&v);
        prop_assert!(std >= 0.0);
        let lo = v.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(mean >= lo - 1e-3 && mean <= hi + 1e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn windowing_sample_count_invariant(nodes in 3usize..8, days in 4usize..7) {
        use traffic_suite::data::{prepare, simulate, SimConfig, Task};
        let ds = simulate(&SimConfig::new("prop", Task::Speed, nodes, days));
        let p = prepare(&ds, 12, 12);
        let total = ds.num_steps();
        let span = 23usize;
        // each split contributes len - span windows (when long enough);
        // boundaries use round() like `chronological_split`
        let train_len = (total as f64 * 0.7).round() as usize;
        let val_end = (total as f64 * 0.8).round() as usize;
        let expect = |len: usize| len.saturating_sub(span);
        prop_assert_eq!(p.train.len(), expect(train_len));
        prop_assert_eq!(p.test.len(), expect(total - val_end));
        // x shape invariants
        prop_assert_eq!(&p.train.x.shape()[1..], &[12, nodes, 2][..]);
    }
}
