//! Hierarchical wall-clock spans with a thread-safe global registry.
//!
//! A span measures one region of work. Guards nest per thread: a span
//! opened while another is active records a `parent/child` path, so
//! `train/epoch` opened inside `table3/STGCN` registers as
//! `table3/STGCN/train/epoch`. Finished spans land in a bounded global
//! ring buffer that experiment code queries with [`span_marker`] /
//! [`spans_since`] (e.g. Table III reads its per-epoch timings back
//! out of the registry instead of keeping its own `Instant` pairs).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::event::{Event, Value};

/// Upper bound on retained finished spans (oldest evicted first).
const REGISTRY_CAP: usize = 16_384;

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Monotone sequence number (global, assigned at finish time).
    pub seq: u64,
    /// Span name as written at the call site, e.g. `train/epoch`.
    pub name: String,
    /// Full nesting path, e.g. `table3/train/epoch`.
    pub path: String,
    /// Nesting depth on the opening thread (0 = top level).
    pub depth: usize,
    /// Wall-clock duration.
    pub dur: Duration,
    /// Id of the thread that opened the span (see [`current_thread_id`]).
    pub thread: u64,
    /// Structured fields attached at the call site.
    pub fields: Vec<(String, Value)>,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Small dense id of the calling thread, unique for the process
/// lifetime. Used to read back only this thread's spans (e.g. Table III
/// timing must not absorb spans from concurrently running experiments).
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

struct SpanStore {
    records: VecDeque<SpanRecord>,
    next_seq: u64,
}

static STORE: Mutex<SpanStore> = Mutex::new(SpanStore { records: VecDeque::new(), next_seq: 0 });

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span; prefer the [`span!`](crate::span!) macro.
pub fn enter(name: &str) -> SpanGuard {
    let (path, depth) = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", stack.join("/"), name)
        };
        let depth = stack.len();
        stack.push(name.to_string());
        (path, depth)
    });
    SpanGuard {
        name: name.to_string(),
        path,
        depth,
        start: Instant::now(),
        fields: Vec::new(),
        done: false,
    }
}

/// RAII guard for an open span. Records on drop; [`SpanGuard::finish`]
/// records early and hands back the measured duration.
///
/// Guards are intentionally `!Send`-in-spirit: moving one to another
/// thread breaks path nesting for both threads, so keep a guard on the
/// thread that opened it.
pub struct SpanGuard {
    name: String,
    path: String,
    depth: usize,
    start: Instant,
    fields: Vec<(String, Value)>,
    done: bool,
}

impl SpanGuard {
    /// Attaches a structured field.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Closes the span and returns its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let dur = self.start.elapsed();
        if self.done {
            return dur;
        }
        self.done = true;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // pop our own frame (guards may close out of order under
            // mem::forget abuse; search from the top to stay robust)
            if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                stack.truncate(pos);
            }
        });
        let record = {
            let mut store = STORE.lock().expect("span registry poisoned");
            let seq = store.next_seq;
            store.next_seq += 1;
            let record = SpanRecord {
                seq,
                name: std::mem::take(&mut self.name),
                path: std::mem::take(&mut self.path),
                depth: self.depth,
                dur,
                thread: current_thread_id(),
                fields: std::mem::take(&mut self.fields),
            };
            store.records.push_back(record.clone());
            if store.records.len() > REGISTRY_CAP {
                store.records.pop_front();
            }
            record
        };
        if crate::enabled() {
            let mut ev = Event::new("span")
                .with("name", record.name.as_str())
                .with("path", record.path.as_str())
                .with("depth", record.depth as u64)
                .with("dur_s", record.dur.as_secs_f64());
            for (k, v) in &record.fields {
                ev = ev.with(k, v.clone());
            }
            crate::sink::dispatch(&ev);
        }
        dur
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens a span with optional `key = value` fields:
/// `span!("train/epoch", model = name, epoch = i)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::enter($name)$(.field(stringify!($key), $value))+
    };
}

/// Current registry high-water mark; pass to [`spans_since`] to read
/// back only spans finished after this point.
pub fn span_marker() -> u64 {
    STORE.lock().expect("span registry poisoned").next_seq
}

/// All retained spans with `seq >= marker`, in finish order.
pub fn spans_since(marker: u64) -> Vec<SpanRecord> {
    let store = STORE.lock().expect("span registry poisoned");
    store.records.iter().filter(|r| r.seq >= marker).cloned().collect()
}

/// Aggregate timing stats for one span name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStats {
    /// Number of finished spans matched.
    pub count: usize,
    /// Sum of durations.
    pub total: Duration,
    /// Mean duration (zero when `count == 0`).
    pub mean: Duration,
    /// Shortest matched span.
    pub min: Duration,
    /// Longest matched span.
    pub max: Duration,
}

/// Stats over retained spans whose **name** equals `name`, restricted
/// to spans finished at or after `marker`.
pub fn span_stats(name: &str, marker: u64) -> SpanStats {
    stats_where(|r| r.seq >= marker && r.name == name)
}

/// Like [`span_stats`] but restricted to spans the **calling thread**
/// opened — timing readouts stay correct when experiments run
/// concurrently in one process.
pub fn span_stats_local(name: &str, marker: u64) -> SpanStats {
    let thread = current_thread_id();
    stats_where(|r| r.seq >= marker && r.thread == thread && r.name == name)
}

fn stats_where(keep: impl Fn(&SpanRecord) -> bool) -> SpanStats {
    let store = STORE.lock().expect("span registry poisoned");
    let mut count = 0usize;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    for r in store.records.iter().filter(|r| keep(r)) {
        count += 1;
        total += r.dur;
        min = min.min(r.dur);
        max = max.max(r.dur);
    }
    let mean = if count == 0 { Duration::ZERO } else { total / count as u32 };
    if count == 0 {
        min = Duration::ZERO;
    }
    SpanStats { count, total, mean, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths_and_orders_by_finish() {
        let marker = span_marker();
        {
            let outer = crate::span!("outer_test");
            {
                let _inner = crate::span!("inner_test", idx = 3u64);
            }
            outer.finish();
        }
        let spans: Vec<SpanRecord> =
            spans_since(marker).into_iter().filter(|s| s.path.contains("_test")).collect();
        assert_eq!(spans.len(), 2);
        // inner finishes first
        assert_eq!(spans[0].name, "inner_test");
        assert_eq!(spans[0].path, "outer_test/inner_test");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].fields, vec![("idx".to_string(), Value::U64(3))]);
        assert_eq!(spans[1].name, "outer_test");
        assert_eq!(spans[1].path, "outer_test");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[1].dur >= spans[0].dur);
    }

    #[test]
    fn finish_returns_duration_and_registers_once() {
        let marker = span_marker();
        let g = crate::span!("finish_once_test");
        let d = g.finish();
        assert!(d > Duration::ZERO);
        let spans: Vec<_> =
            spans_since(marker).into_iter().filter(|s| s.name == "finish_once_test").collect();
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn stats_aggregate() {
        let marker = span_marker();
        for _ in 0..3 {
            let _g = crate::span!("stats_test");
        }
        let s = span_stats("stats_test", marker);
        assert_eq!(s.count, 3);
        assert!(s.total >= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert_eq!(span_stats("no_such_span_test", marker).count, 0);
    }
}
