//! Property tests for the `TNN2` train-state checkpoint: arbitrary
//! states must round-trip **bit-exactly** (including NaN/∞ payloads),
//! and any single-byte corruption or truncation of the file must be
//! rejected as [`CheckpointError::Corrupt`] rather than silently loaded.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use traffic_core::{BestSnapshot, TrainState};
use traffic_nn::{AdamState, CheckpointError};
use traffic_tensor::Tensor;

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("traffic_state_prop_{tag}_{}_{n}.tnn2", std::process::id()))
}

/// Any f32 bit pattern: normals, subnormals, ±∞, NaNs.
fn any_bits_f32() -> impl Strategy<Value = f32> {
    (0u32..=u32::MAX).prop_map(f32::from_bits)
}

/// Small tensor of arbitrary rank 1–3 and arbitrary f32 bit patterns.
fn small_tensor() -> impl Strategy<Value = Tensor> {
    prop::collection::vec(1usize..4, 1..4).prop_flat_map(|shape| {
        let numel: usize = shape.iter().product();
        prop::collection::vec(any_bits_f32(), numel..=numel)
            .prop_map(move |data| Tensor::from_vec(data, &shape))
    })
}

fn arb_state() -> impl Strategy<Value = TrainState> {
    let header = (
        0u64..=u64::MAX,                               // fingerprint
        0usize..500,                                   // epochs_done
        0usize..100_000,                               // global_step
        prop::collection::vec(0u64..=u64::MAX, 4..=4), // rng words
        any_bits_f32(),                                // lr_scale
    );
    let counters = (0usize..50, 0usize..50, 0usize..50); // rollbacks, skipped, stale
    let progress = (
        prop::collection::vec(any_bits_f32(), 0..6), // epoch losses
        prop::collection::vec(any_bits_f32(), 0..6), // val losses
        prop::collection::vec(0.0f64..1e4, 0..6),    // epoch times
    );
    let params = (
        prop::collection::vec(small_tensor(), 1..4), // weights
        0u8..2,                                      // moments present?
        0u8..2,                                      // best present?
    );
    (header, counters, progress, params).prop_map(
        |(
            (fingerprint, epochs_done, global_step, rng, lr_scale),
            (rollbacks, skipped_steps, stale),
            (epoch_losses, val_losses, epoch_times),
            (tensors, with_moments, with_best),
        )| {
            let weights: Vec<(String, Tensor)> = tensors
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("layer{i}.w"), t.clone()))
                .collect();
            let (m, v) = if with_moments == 1 {
                // First moment deliberately None: Adam lazily allocates.
                let mut m: Vec<Option<Tensor>> = tensors.iter().map(|t| Some(t.clone())).collect();
                m[0] = None;
                (m.clone(), m)
            } else {
                (vec![None; tensors.len()], vec![None; tensors.len()])
            };
            let best = (with_best == 1).then(|| BestSnapshot {
                val: 0.5,
                epoch: epochs_done.saturating_sub(1),
                weights: tensors.clone(),
            });
            TrainState {
                fingerprint,
                epochs_done,
                global_step,
                rng: [rng[0], rng[1], rng[2], rng[3]],
                lr_scale,
                rollbacks,
                skipped_steps,
                stale,
                epoch_losses,
                val_losses,
                epoch_times,
                weights,
                adam: AdamState { t: global_step as i32, lr: 1e-3, m, v },
                best,
            }
        },
    )
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn bits_vec(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_roundtrip_is_bit_exact(st in arb_state()) {
        let path = tmp("roundtrip");
        st.save(&path).unwrap();
        let back = TrainState::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(back.fingerprint, st.fingerprint);
        prop_assert_eq!(back.epochs_done, st.epochs_done);
        prop_assert_eq!(back.global_step, st.global_step);
        prop_assert_eq!(back.rng, st.rng);
        prop_assert_eq!(back.lr_scale.to_bits(), st.lr_scale.to_bits());
        prop_assert_eq!(back.rollbacks, st.rollbacks);
        prop_assert_eq!(back.skipped_steps, st.skipped_steps);
        prop_assert_eq!(back.stale, st.stale);
        prop_assert_eq!(bits_vec(&back.epoch_losses), bits_vec(&st.epoch_losses));
        prop_assert_eq!(bits_vec(&back.val_losses), bits_vec(&st.val_losses));
        prop_assert_eq!(&back.epoch_times, &st.epoch_times);

        prop_assert_eq!(back.weights.len(), st.weights.len());
        for ((bn, bt), (sn, stt)) in back.weights.iter().zip(&st.weights) {
            prop_assert_eq!(bn, sn);
            prop_assert_eq!(bt.shape(), stt.shape());
            prop_assert_eq!(bits(bt), bits(stt));
        }

        prop_assert_eq!(back.adam.t, st.adam.t);
        prop_assert_eq!(back.adam.m.len(), st.adam.m.len());
        for (bm, sm) in back.adam.m.iter().zip(&st.adam.m) {
            match (bm, sm) {
                (None, None) => {}
                (Some(b), Some(s)) => prop_assert_eq!(bits(b), bits(s)),
                _ => prop_assert!(false, "moment presence changed across round-trip"),
            }
        }

        match (&back.best, &st.best) {
            (None, None) => {}
            (Some(b), Some(s)) => {
                prop_assert_eq!(b.epoch, s.epoch);
                prop_assert_eq!(b.weights.len(), s.weights.len());
                for (bt, stt) in b.weights.iter().zip(&s.weights) {
                    prop_assert_eq!(bits(bt), bits(stt));
                }
            }
            _ => prop_assert!(false, "best presence changed across round-trip"),
        }
    }

    #[test]
    fn any_flipped_byte_is_rejected(st in arb_state(), pos in 0usize..1_000_000, xor in 1u8..=255) {
        let path = tmp("flip");
        st.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= xor;
        std::fs::write(&path, &bytes).unwrap();
        let res = TrainState::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(res, Err(CheckpointError::Corrupt(_))),
            "flip at byte {idx} was not rejected: {res:?}"
        );
    }

    #[test]
    fn any_truncation_is_rejected(st in arb_state(), cut in 0usize..1_000_000) {
        let path = tmp("trunc");
        st.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = cut % bytes.len(); // strictly shorter than the full file
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let res = TrainState::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            matches!(res, Err(CheckpointError::Corrupt(_))),
            "truncation to {keep} bytes was not rejected: {res:?}"
        );
    }
}
