//! `serve` — warm-model inference serving CLI ([`traffic_serve`]).
//!
//! ```text
//! serve export  --out <path> [--model STGCN] [--nodes 8] [--seed 7]
//! serve serve   --snapshot <path> [--addr 127.0.0.1:0] [--high-water 256]
//!               [--breaker-threshold 3] [--probe-every 4] [--hold-ms 0]
//! serve loadgen <host:port> [--clients 4] [--requests 50] [--interval-ms 2]
//!               [--deadline-ms <n>] [--nodes 8] [--t-in 12] [--seed 7]
//! serve bench   [--smoke] [--no-chaos] [--model STGCN] [--nodes 8]
//! ```
//!
//! `bench` is the self-contained SLO harness: it exports a fresh
//! snapshot, starts an engine + HTTP front-end in-process, measures a
//! sustained load phase (QPS, p50/p99/p999), then drives the chaos
//! ladder — reload corruption (server keeps last-good), injected NaN
//! forwards (breaker trips to `DEGRADED`, probe recovers), queue
//! overload (`SHED`), zero deadlines (`TIMEOUT`) — asserting the server
//! ends `HEALTHY`, and writes `BENCH_serve.json` for
//! `scripts/check_bench.sh`.

use std::io::Write as IoWrite;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use traffic_suite::obs::{faults, json, json::Json};
use traffic_suite::serve::{
    engine::EngineConfig, export_fresh, loadgen, Engine, HttpServer, ServeSnapshot,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut opts = Opts::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--out" | "--snapshot" => match take(&mut i) {
                Some(v) => opts.path = Some(PathBuf::from(v)),
                None => return usage("--out/--snapshot needs a path"),
            },
            "--model" => match take(&mut i) {
                Some(v) => opts.model = v,
                None => return usage("--model needs a name"),
            },
            "--addr" => match take(&mut i) {
                Some(v) => opts.addr = v,
                None => return usage("--addr needs host:port"),
            },
            "--nodes" => match parse_num(take(&mut i)) {
                Some(v) => opts.nodes = v,
                None => return usage("--nodes needs a number"),
            },
            "--seed" => match parse_num(take(&mut i)) {
                Some(v) => opts.seed = v as u64,
                None => return usage("--seed needs a number"),
            },
            "--high-water" => match parse_num(take(&mut i)) {
                Some(v) => opts.high_water = v,
                None => return usage("--high-water needs a number"),
            },
            "--breaker-threshold" => match parse_num(take(&mut i)) {
                Some(v) => opts.breaker_threshold = v as u32,
                None => return usage("--breaker-threshold needs a number"),
            },
            "--probe-every" => match parse_num(take(&mut i)) {
                Some(v) => opts.probe_every = v as u64,
                None => return usage("--probe-every needs a number"),
            },
            "--hold-ms" => match parse_num(take(&mut i)) {
                Some(v) => opts.hold_ms = Some(v as u64),
                None => return usage("--hold-ms needs a number"),
            },
            "--clients" => match parse_num(take(&mut i)) {
                Some(v) => opts.clients = v,
                None => return usage("--clients needs a number"),
            },
            "--requests" => match parse_num(take(&mut i)) {
                Some(v) => opts.requests = v,
                None => return usage("--requests needs a number"),
            },
            "--interval-ms" => match parse_num(take(&mut i)) {
                Some(v) => opts.interval_ms = v as u64,
                None => return usage("--interval-ms needs a number"),
            },
            "--deadline-ms" => match parse_num(take(&mut i)) {
                Some(v) => opts.deadline_ms = Some(v as u64),
                None => return usage("--deadline-ms needs a number"),
            },
            "--t-in" => match parse_num(take(&mut i)) {
                Some(v) => opts.t_in = v,
                None => return usage("--t-in needs a number"),
            },
            "--smoke" => opts.smoke = true,
            "--no-chaos" => opts.no_chaos = true,
            "-h" | "--help" => return usage(""),
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let Some((&cmd, rest)) = positional.split_first() else {
        return usage("missing subcommand");
    };
    match cmd {
        "export" => cmd_export(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => match rest {
            [addr] => cmd_loadgen(addr, &opts),
            _ => usage("loadgen takes exactly one <host:port>"),
        },
        "bench" => cmd_bench(&opts),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

struct Opts {
    path: Option<PathBuf>,
    model: String,
    addr: String,
    nodes: usize,
    seed: u64,
    high_water: usize,
    breaker_threshold: u32,
    probe_every: u64,
    hold_ms: Option<u64>,
    clients: usize,
    requests: usize,
    interval_ms: u64,
    deadline_ms: Option<u64>,
    t_in: usize,
    smoke: bool,
    no_chaos: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            path: None,
            model: "STGCN".into(),
            addr: "127.0.0.1:0".into(),
            nodes: 8,
            seed: 7,
            high_water: 256,
            breaker_threshold: 3,
            probe_every: 4,
            hold_ms: None,
            clients: 4,
            requests: 50,
            interval_ms: 2,
            deadline_ms: None,
            t_in: 12,
            smoke: false,
            no_chaos: false,
        }
    }
}

fn parse_num(v: Option<String>) -> Option<usize> {
    v.and_then(|s| s.parse().ok())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("serve: {err}\n");
    }
    eprintln!(
        "usage:\n  serve export  --out <path> [--model STGCN] [--nodes 8] [--seed 7]\n  \
         serve serve   --snapshot <path> [--addr 127.0.0.1:0] [--high-water 256]\n                \
         [--breaker-threshold 3] [--probe-every 4] [--hold-ms <n>]\n  \
         serve loadgen <host:port> [--clients 4] [--requests 50] [--interval-ms 2]\n                \
         [--deadline-ms <n>] [--nodes 8] [--t-in 12] [--seed 7]\n  \
         serve bench   [--smoke] [--no-chaos] [--model STGCN] [--nodes 8]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn engine_config(opts: &Opts) -> EngineConfig {
    EngineConfig {
        high_water: opts.high_water,
        breaker_threshold: opts.breaker_threshold,
        probe_every: opts.probe_every,
        ..Default::default()
    }
}

fn cmd_export(opts: &Opts) -> ExitCode {
    let Some(path) = &opts.path else {
        return usage("export needs --out <path>");
    };
    let snap = export_fresh(&opts.model, opts.nodes, opts.seed);
    match snap.save(path) {
        Ok(()) => {
            println!(
                "exported {} snapshot: {} nodes, {} params -> {}",
                snap.model,
                snap.n,
                snap.weights.iter().map(|(_, t)| t.len()).sum::<usize>(),
                path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: export failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(opts: &Opts) -> ExitCode {
    let Some(path) = &opts.path else {
        return usage("serve needs --snapshot <path>");
    };
    let engine = match Engine::start_from_path(path, engine_config(opts)) {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("serve: cannot start from {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let http = match HttpServer::start(&opts.addr, Arc::clone(&engine)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let status = engine.status();
    println!(
        "serving http://{} ({} | {} nodes | {} params | predict/reload/status)",
        http.addr(),
        status.model,
        status.n,
        status.params
    );
    let _ = std::io::stdout().flush();
    match opts.hold_ms {
        // Smoke-testable: stay up a bounded time, then exit cleanly.
        Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    drop(http);
    ExitCode::SUCCESS
}

fn cmd_loadgen(addr: &str, opts: &Opts) -> ExitCode {
    let cfg = loadgen::LoadgenConfig {
        addr: addr.to_string(),
        clients: opts.clients,
        requests_per_client: opts.requests,
        interval: Duration::from_millis(opts.interval_ms),
        deadline_ms: opts.deadline_ms,
        n: opts.nodes,
        t_in: opts.t_in,
        seed: opts.seed,
    };
    let stats = loadgen::run(&cfg);
    println!(
        "sent={} ok={} degraded={} shed={} timeout={} errors={}",
        stats.sent, stats.ok, stats.degraded, stats.shed, stats.timeout, stats.errors
    );
    println!(
        "qps={:.1} p50={:.6}s p99={:.6}s p999={:.6}s",
        stats.sustained_qps(),
        stats.percentile_secs(50.0),
        stats.percentile_secs(99.0),
        stats.percentile_secs(99.9)
    );
    if stats.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------
// bench: sustained-load measurement + chaos ladder + BENCH_serve.json
// ---------------------------------------------------------------------

struct ChaosOutcome {
    ran: bool,
    reload_rejections: u64,
    reloads_ok: u64,
    breaker_trips: u64,
    degraded_seen: u64,
    shed_seen: u64,
    timeout_seen: u64,
    recovered: bool,
}

fn cmd_bench(opts: &Opts) -> ExitCode {
    let smoke = opts.smoke || std::env::var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let (nodes, clients, requests) = if smoke { (6, 4, 40) } else { (opts.nodes.max(8), 8, 200) };
    let snap_path =
        std::env::temp_dir().join(format!("traffic_serve_bench_{}.tnn2", std::process::id()));
    let snap = export_fresh(&opts.model, nodes, opts.seed);
    if let Err(e) = snap.save(&snap_path) {
        eprintln!("serve: bench export failed: {e}");
        return ExitCode::FAILURE;
    }

    let cfg =
        EngineConfig { high_water: 64, breaker_threshold: 3, probe_every: 2, ..Default::default() };
    let engine = match Engine::start_from_path(&snap_path, cfg) {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("serve: bench engine failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let http = match HttpServer::start("127.0.0.1:0", Arc::clone(&engine)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bench cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = http.addr().to_string();
    eprintln!("bench: serving {} on {addr} ({} nodes)", opts.model, nodes);

    // Phase 1 — sustained load, the measured SLO numbers.
    let load = loadgen::LoadgenConfig {
        addr: addr.clone(),
        clients,
        requests_per_client: requests,
        interval: Duration::from_millis(opts.interval_ms),
        deadline_ms: Some(2_000),
        n: nodes,
        t_in: 12,
        seed: opts.seed,
    };
    let stats = loadgen::run(&load);
    eprintln!(
        "bench: sustained {:.1} qps, p50 {:.4}s p99 {:.4}s ({} ok / {} sent)",
        stats.sustained_qps(),
        stats.percentile_secs(50.0),
        stats.percentile_secs(99.0),
        stats.ok,
        stats.sent
    );
    if stats.ok == 0 {
        eprintln!("serve: bench measured zero OK responses");
        return ExitCode::FAILURE;
    }

    // Phase 2 — chaos ladder.
    let chaos = if opts.no_chaos {
        ChaosOutcome {
            ran: false,
            reload_rejections: 0,
            reloads_ok: 0,
            breaker_trips: 0,
            degraded_seen: 0,
            shed_seen: 0,
            timeout_seen: 0,
            recovered: true,
        }
    } else {
        match run_chaos(&engine, &addr, &snap, &snap_path, nodes) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("serve: chaos phase failed: {msg}");
                return ExitCode::FAILURE;
            }
        }
    };

    let json = bench_json(opts, smoke, nodes, &stats, &load, &chaos);
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("serve: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("{json}");
    std::fs::remove_file(&snap_path).ok();
    ExitCode::SUCCESS
}

/// Drives the degradation ladder end to end over live HTTP and asserts
/// each rung: corrupt reload rejected (last-good kept), good reload
/// accepted, breaker trips to DEGRADED under injected NaN forwards and
/// probe-recovers, overload sheds, zero deadlines time out, and the
/// final state is HEALTHY.
fn run_chaos(
    engine: &Arc<Engine>,
    addr: &str,
    snap: &ServeSnapshot,
    snap_path: &Path,
    nodes: usize,
) -> Result<ChaosOutcome, String> {
    let mut out = ChaosOutcome {
        ran: true,
        reload_rejections: 0,
        reloads_ok: 0,
        breaker_trips: 0,
        degraded_seen: 0,
        shed_seen: 0,
        timeout_seen: 0,
        recovered: false,
    };
    let predict = |tag: &str| -> Result<String, String> {
        let (window, tod) = loadgen::synth_window(nodes, 12, 7, 0, 0);
        loadgen::predict_once(addr, &window, tod, None)
            .map(|(_, status)| status)
            .map_err(|e| format!("{tag}: transport error: {e}"))
    };

    // Rung 1 — torn snapshot on disk: reload must be rejected with the
    // old model still serving.
    let good = snap.encode();
    let mut torn = good.clone();
    let flip = torn.len() / 2;
    torn[flip] ^= 0x40;
    std::fs::write(snap_path, &torn).map_err(|e| format!("write torn: {e}"))?;
    let (code, _) =
        loadgen::http_post(addr, "/reload", "{}").map_err(|e| format!("reload request: {e}"))?;
    if code != 409 {
        return Err(format!("torn reload answered {code}, want 409"));
    }
    out.reload_rejections += 1;
    std::fs::write(snap_path, &good[..good.len() / 3]).map_err(|e| format!("truncate: {e}"))?;
    let (code, _) =
        loadgen::http_post(addr, "/reload", "{}").map_err(|e| format!("reload request: {e}"))?;
    if code != 409 {
        return Err(format!("truncated reload answered {code}, want 409"));
    }
    out.reload_rejections += 1;
    if predict("post-corrupt predict")? != "OK" {
        return Err("server did not keep serving last-good weights".into());
    }

    // Rung 2 — restored snapshot: reload must go through.
    std::fs::write(snap_path, &good).map_err(|e| format!("restore: {e}"))?;
    let (code, _) =
        loadgen::http_post(addr, "/reload", "{}").map_err(|e| format!("reload request: {e}"))?;
    if code != 200 {
        return Err(format!("good reload answered {code}, want 200"));
    }
    out.reloads_ok += 1;

    // Rung 3 — injected NaN forwards trip the breaker to DEGRADED...
    for k in 0..3 {
        faults::arm("serve_nan", 1, faults::FaultMode::Soft);
        let status = predict("nan predict")?;
        if status != "DEGRADED" {
            return Err(format!("poisoned forward {k} answered {status}, want DEGRADED"));
        }
        out.degraded_seen += 1;
    }
    // ...and the periodic probe recovers it.
    for _ in 0..32 {
        let status = predict("probe predict")?;
        if status == "DEGRADED" {
            out.degraded_seen += 1;
        } else if status == "OK" {
            out.recovered = true;
            break;
        }
    }
    if !out.recovered {
        return Err("breaker never probe-recovered after NaN injection".into());
    }

    // Rung 4 — stalled worker + burst: the queue must shed, not grow.
    engine.stall(Duration::from_millis(300));
    // The worker polls its control channel on a <=5ms cadence; give it
    // a beat to actually enter the stall before bursting.
    std::thread::sleep(Duration::from_millis(50));
    let burst: Vec<_> = (0..engine.status().high_water + 24)
        .map(|_| {
            let (window, tod) = loadgen::synth_window(nodes, 12, 7, 1, 1);
            engine.submit(traffic_suite::serve::ServeRequest { window, tod, deadline_ns: u64::MAX })
        })
        .collect();
    for rx in burst {
        match rx.recv() {
            Ok(resp) if resp.status() == "SHED" => out.shed_seen += 1,
            Ok(_) => {}
            Err(_) => return Err("burst request dropped without a response".into()),
        }
    }
    if out.shed_seen == 0 {
        return Err("overload burst produced no SHED responses".into());
    }

    // Rung 5 — a zero deadline is answered TIMEOUT without compute.
    let (window, tod) = loadgen::synth_window(nodes, 12, 7, 2, 2);
    let (code, body) = {
        let mut body = String::from("{\"window\":[");
        for (i, v) in window.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("{v}"));
        }
        body.push_str(&format!("],\"tod\":{tod},\"deadline_ms\":0}}"));
        loadgen::http_post(addr, "/predict", &body).map_err(|e| format!("timeout rung: {e}"))?
    };
    let status = json::parse(&body)
        .ok()
        .and_then(|j| j.get("status").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default();
    if code != 504 || status != "TIMEOUT" {
        return Err(format!("zero deadline answered {code}/{status}, want 504/TIMEOUT"));
    }
    out.timeout_seen += 1;

    // Final — the ladder ends back at HEALTHY.
    let final_status = engine.status();
    if final_status.state != "HEALTHY" {
        return Err(format!("final state {} after chaos, want HEALTHY", final_status.state));
    }
    if predict("final predict")? != "OK" {
        return Err("final predict after chaos was not OK".into());
    }
    out.breaker_trips = final_status.breaker_trips;
    if out.breaker_trips == 0 {
        return Err("NaN injection never tripped the breaker".into());
    }
    eprintln!(
        "bench: chaos ok — {} reload rejections, {} trips, {} degraded, {} shed, recovered",
        out.reload_rejections, out.breaker_trips, out.degraded_seen, out.shed_seen
    );
    Ok(out)
}

fn bench_json(
    opts: &Opts,
    smoke: bool,
    nodes: usize,
    stats: &loadgen::LoadStats,
    load: &loadgen::LoadgenConfig,
    chaos: &ChaosOutcome,
) -> String {
    let offered_qps = load.clients as f64 / load.interval.as_secs_f64().max(1e-9);
    format!(
        "{{\n  \"smoke\": {smoke},\n  \"model\": \"{}\",\n  \"nodes\": {nodes},\n  \
         \"threads\": {},\n  \"clients\": {},\n  \"offered_qps\": {offered_qps:.1},\n  \
         \"sustained_qps\": {:.2},\n  \"requests\": {{\n    \"sent\": {},\n    \"ok\": {},\n    \
         \"degraded\": {},\n    \"shed\": {},\n    \"timeout\": {},\n    \"errors\": {}\n  }},\n  \
         \"latency\": {{\n    \"p50_secs\": {:.6},\n    \"p99_secs\": {:.6},\n    \
         \"p999_secs\": {:.6},\n    \"mean_secs\": {:.6}\n  }},\n  \"chaos\": {{\n    \
         \"ran\": {},\n    \"reload_rejections\": {},\n    \"reloads_ok\": {},\n    \
         \"breaker_trips\": {},\n    \"degraded\": {},\n    \"shed\": {},\n    \
         \"timeout\": {},\n    \"recovered\": {}\n  }}\n}}\n",
        opts.model,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        load.clients,
        stats.sustained_qps(),
        stats.sent,
        stats.ok,
        stats.degraded,
        stats.shed,
        stats.timeout,
        stats.errors,
        stats.percentile_secs(50.0),
        stats.percentile_secs(99.0),
        stats.percentile_secs(99.9),
        stats.mean_secs(),
        chaos.ran,
        chaos.reload_rejections,
        chaos.reloads_ok,
        chaos.breaker_trips,
        chaos.degraded_seen,
        chaos.shed_seen,
        chaos.timeout_seen,
        chaos.recovered
    )
}
