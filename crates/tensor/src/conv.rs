//! 2-D convolution via im2col/col2im (stride 1, arbitrary dilation).
//!
//! Traffic models convolve over `[batch, channels, nodes, time]` tensors with
//! `(1, k)` kernels (temporal convs) or square kernels; padding (e.g. causal
//! padding for dilated TCNs) is applied by the caller with [`Tensor::pad`].

use crate::pool;
use crate::tensor::{Tensor, ELEMENTWISE_PAR_THRESHOLD};

/// Output spatial size of a stride-1 dilated convolution (no padding).
pub fn conv_out_len(input: usize, kernel: usize, dilation: usize) -> usize {
    let span = (kernel - 1) * dilation + 1;
    assert!(span <= input, "kernel span {span} exceeds input length {input}");
    input - span + 1
}

/// Unfolds `[B, C, H, W]` into columns `[B, C*KH*KW, OH*OW]`.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, dh: usize, dw: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "im2col expects [B, C, H, W]");
    let (b, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let oh = conv_out_len(h, kh, dh);
    let ow = conv_out_len(w, kw, dw);
    let batch_block = c * kh * kw * oh * ow;
    // Every output slot is covered by exactly one contiguous copy below.
    let mut out = crate::mem::take_uninit(b * batch_block);
    let data = input.as_slice();
    let mut prof = traffic_obs::profile::op("conv", "im2col");
    prof.set_bytes((data.len() + out.len()) * 4);
    let in_hw = h * w;
    let out_cols = oh * ow;
    // Each batch element owns one disjoint `batch_block` of the output,
    // so batches fan out across the pool; the per-batch copy loop is
    // unchanged and the small-tensor path runs inline as a single chunk.
    let chunk =
        if b > 1 && out.len() >= ELEMENTWISE_PAR_THRESHOLD { batch_block } else { out.len() };
    pool::parallel_chunks_mut(&mut out, chunk, |chunk_idx, dst| {
        let batches = chunk / batch_block;
        for local in 0..batches {
            let bi = chunk_idx * batches + local;
            let dst = &mut dst[local * batch_block..(local + 1) * batch_block];
            for ci in 0..c {
                let in_base = (bi * c + ci) * in_hw;
                for ki in 0..kh {
                    for kj in 0..kw {
                        let row = ((ci * kh + ki) * kw + kj) * out_cols;
                        for oi in 0..oh {
                            let src = in_base + (oi + ki * dh) * w + kj * dw;
                            let at = row + oi * ow;
                            // The source walks the W axis with unit stride
                            // (only the kernel taps are dilated), so this is
                            // always a contiguous copy.
                            dst[at..at + ow].copy_from_slice(&data[src..src + ow]);
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[b, c * kh * kw, oh * ow])
}

/// Folds columns `[B, C*KH*KW, OH*OW]` back to `[B, C, H, W]`, accumulating
/// overlapping positions (the adjoint of [`im2col`]).
#[allow(clippy::too_many_arguments)] // mirrors the im2col geometry parameters one-to-one
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dh: usize,
    dw: usize,
) -> Tensor {
    assert_eq!(cols.rank(), 3, "col2im expects [B, C*KH*KW, OH*OW]");
    let b = cols.shape()[0];
    let oh = conv_out_len(h, kh, dh);
    let ow = conv_out_len(w, kw, dw);
    assert_eq!(cols.shape()[1], c * kh * kw);
    assert_eq!(cols.shape()[2], oh * ow);
    let batch_block = c * h * w;
    // The fold accumulates (`+=`), so the output must start zeroed.
    let mut out = crate::mem::take_zeroed(b * batch_block);
    let data = cols.as_slice();
    let mut prof = traffic_obs::profile::op("conv", "col2im");
    prof.set_bytes((data.len() + out.len()) * 4);
    let out_cols = oh * ow;
    // Overlapping kernel taps only collide within one batch element, so
    // batch-level chunks keep the scatter-accumulate race-free and the
    // per-batch accumulation order unchanged.
    let chunk =
        if b > 1 && out.len() >= ELEMENTWISE_PAR_THRESHOLD { batch_block } else { out.len() };
    pool::parallel_chunks_mut(&mut out, chunk, |chunk_idx, dst| {
        let batches = chunk / batch_block;
        for local in 0..batches {
            let bi = chunk_idx * batches + local;
            let dst = &mut dst[local * batch_block..(local + 1) * batch_block];
            for ci in 0..c {
                let out_base = ci * h * w;
                for ki in 0..kh {
                    for kj in 0..kw {
                        let row =
                            bi * c * kh * kw * out_cols + ((ci * kh + ki) * kw + kj) * out_cols;
                        for oi in 0..oh {
                            for oj in 0..ow {
                                dst[out_base + (oi + ki * dh) * w + oj + kj * dw] +=
                                    data[row + oi * ow + oj];
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[b, c, h, w])
}

impl Tensor {
    /// Stride-1 dilated 2-D convolution without padding.
    ///
    /// `self`: `[B, C, H, W]`, `weight`: `[O, C, KH, KW]` →
    /// `[B, O, OH, OW]`.
    pub fn conv2d(&self, weight: &Tensor, dh: usize, dw: usize) -> Tensor {
        assert_eq!(self.rank(), 4, "conv2d input must be [B, C, H, W]");
        assert_eq!(weight.rank(), 4, "conv2d weight must be [O, C, KH, KW]");
        let (b, c, h, w) = (self.shape()[0], self.shape()[1], self.shape()[2], self.shape()[3]);
        let (o, wc, kh, kw) =
            (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        assert_eq!(c, wc, "conv2d channel mismatch: input {c} vs weight {wc}");
        let oh = conv_out_len(h, kh, dh);
        let ow = conv_out_len(w, kw, dw);
        let cols = im2col(self, kh, kw, dh, dw); // [B, C*KH*KW, OH*OW]
        let wmat = weight.reshape(&[o, c * kh * kw]);
        // [O, CKK] · [B, CKK, L] -> [B, O, L]
        let out = wmat.matmul(&cols);
        out.reshape(&[b, o, oh, ow])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_len() {
        assert_eq!(conv_out_len(12, 3, 1), 10);
        assert_eq!(conv_out_len(12, 2, 2), 10);
        assert_eq!(conv_out_len(12, 2, 4), 8);
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        // 1x1 conv == per-position linear map over channels.
        let x = Tensor::arange(2 * 3 * 2 * 2).reshape(&[2, 3, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0], &[2, 3, 1, 1]);
        let y = x.conv2d(&w, 1, 1);
        assert_eq!(y.shape(), &[2, 2, 2, 2]);
        // out channel 0 = in channel 0; out channel 1 = ch1 + ch2
        assert_eq!(y.at(&[0, 0, 1, 1]), x.at(&[0, 0, 1, 1]));
        assert_eq!(y.at(&[1, 1, 0, 1]), x.at(&[1, 1, 0, 1]) + x.at(&[1, 2, 0, 1]));
    }

    #[test]
    fn conv_temporal_kernel() {
        // (1, 2) kernel over time = x[t] + x[t+1] when weights are ones.
        let x = Tensor::arange(2 * 4).reshape(&[1, 1, 2, 4]);
        let w = Tensor::ones(&[1, 1, 1, 2]);
        let y = x.conv2d(&w, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
        assert_eq!(y.as_slice(), &[1.0, 3.0, 5.0, 9.0, 11.0, 13.0]);
    }

    #[test]
    fn dilated_conv_skips() {
        let x = Tensor::arange(8).reshape(&[1, 1, 1, 8]);
        let w = Tensor::ones(&[1, 1, 1, 2]);
        let y = x.conv2d(&w, 1, 2); // pairs (t, t+2)
        assert_eq!(y.shape(), &[1, 1, 1, 6]);
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for random-ish tensors.
        let x = Tensor::arange(2 * 3 * 4).reshape(&[1, 2, 3, 4]);
        let (kh, kw, dh, dw) = (2, 2, 1, 1);
        let cols = im2col(&x, kh, kw, dh, dw);
        let c = Tensor::arange(cols.len()).reshape(cols.shape());
        let lhs: f32 = cols.as_slice().iter().zip(c.as_slice()).map(|(a, b)| a * b).sum();
        let folded = col2im(&c, 2, 3, 4, kh, kw, dh, dw);
        let rhs: f32 = x.as_slice().iter().zip(folded.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
