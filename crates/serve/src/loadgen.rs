//! Open-loop HTTP load generator for the serving benchmark and chaos
//! smoke.
//!
//! Deterministic where it matters: request payloads are synthesised
//! from `(seed, client, request)` alone — a diurnal sinusoid plus a
//! per-node offset, the same speed field the simulator produces — so
//! two loadgen runs against the same server issue byte-identical
//! request bodies. Pacing is open-loop (fixed send interval per
//! client): a slow server makes latencies grow and deadlines miss, it
//! does not silently lower the offered rate like closed-loop clients
//! do.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent open-loop clients.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Gap between sends per client (`clients / interval` = offered QPS).
    pub interval: Duration,
    /// Per-request deadline to declare, if any.
    pub deadline_ms: Option<u64>,
    /// Sensors (window width is `t_in * n`).
    pub n: usize,
    /// Window length.
    pub t_in: usize,
    /// Payload seed.
    pub seed: u64,
}

/// Tallies + latency reservoir from one loadgen run.
#[derive(Debug, Default, Clone)]
pub struct LoadStats {
    /// Requests sent.
    pub sent: u64,
    /// `OK` responses.
    pub ok: u64,
    /// `DEGRADED` responses (fallback served).
    pub degraded: u64,
    /// `SHED` responses.
    pub shed: u64,
    /// `TIMEOUT` responses.
    pub timeout: u64,
    /// Transport / malformed-response failures.
    pub errors: u64,
    /// Per-request wall latency, nanoseconds (unsorted).
    pub latencies_ns: Vec<u64>,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl LoadStats {
    fn absorb(&mut self, other: LoadStats) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.errors += other.errors;
        self.latencies_ns.extend(other.latencies_ns);
    }

    /// Latency percentile in seconds (`p` in `[0, 100]`); 0 when empty.
    pub fn percentile_secs(&self, p: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)] as f64 * 1e-9
    }

    /// Mean latency in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.iter().map(|&ns| ns as f64).sum::<f64>() / self.latencies_ns.len() as f64
            * 1e-9
    }

    /// Completed answers per wall second (all statuses — a `SHED` is a
    /// correct, fast answer, not a lost request).
    pub fn sustained_qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.sent - self.errors) as f64 / secs
    }
}

/// Deterministic synthetic window: diurnal speed sinusoid + per-node
/// offset + a small seed/client/request-dependent ripple.
pub fn synth_window(n: usize, t_in: usize, seed: u64, client: u64, req: u64) -> (Vec<f32>, f32) {
    let base_step = (seed.wrapping_mul(97).wrapping_add(client.wrapping_mul(13)).wrapping_add(req))
        % traffic_models::STEPS_PER_DAY as u64;
    let steps = traffic_models::STEPS_PER_DAY as f32;
    let mut window = Vec::with_capacity(t_in * n);
    for t in 0..t_in {
        let day_frac = ((base_step + t as u64) as f32 / steps).fract();
        let diurnal = 55.0 + 10.0 * (2.0 * std::f32::consts::PI * day_frac).sin();
        for i in 0..n {
            let node = 2.0 * (i as f32 % 5.0 - 2.0);
            let ripple = 0.3 * (((client + 3 * req) % 7) as f32 - 3.0);
            window.push(diurnal + node + ripple);
        }
    }
    (window, base_step as f32 / steps)
}

/// One HTTP predict round-trip. Returns `(http_status, serve_status)` —
/// e.g. `(200, "OK")`, `(503, "SHED")`.
pub fn predict_once(
    addr: &str,
    window: &[f32],
    tod: f32,
    deadline_ms: Option<u64>,
) -> std::io::Result<(u16, String)> {
    let mut body = String::with_capacity(16 + window.len() * 8);
    body.push_str("{\"window\":[");
    for (i, v) in window.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{v}"));
    }
    body.push_str(&format!("],\"tod\":{tod}"));
    if let Some(ms) = deadline_ms {
        body.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    body.push('}');
    let resp = http_post(addr, "/predict", &body)?;
    let status = parse_status_field(&resp.1)
        .ok_or_else(|| std::io::Error::other(format!("no status in body: {}", resp.1)))?;
    Ok((resp.0, status))
}

/// Plain POST; returns `(http_status, body)`.
pub fn http_post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    read_response(&mut stream)
}

/// Plain GET; returns `(http_status, body)`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let code: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))?;
    Ok((code, body.to_string()))
}

fn parse_status_field(body: &str) -> Option<String> {
    traffic_obs::json::parse(body)
        .ok()?
        .get("status")
        .and_then(traffic_obs::json::Json::as_str)
        .map(str::to_string)
}

/// Runs the configured load and tallies outcomes. Latency is measured
/// around the whole HTTP round-trip (connect + serve + read), the
/// number a client actually experiences.
pub fn run(cfg: &LoadgenConfig) -> LoadStats {
    let start = Instant::now();
    let workers: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut stats = LoadStats::default();
                for r in 0..cfg.requests_per_client {
                    let (window, tod) = synth_window(cfg.n, cfg.t_in, cfg.seed, c as u64, r as u64);
                    let t0 = Instant::now();
                    stats.sent += 1;
                    match predict_once(&cfg.addr, &window, tod, cfg.deadline_ms) {
                        Ok((_, status)) => {
                            stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                            match status.as_str() {
                                "OK" => stats.ok += 1,
                                "DEGRADED" => stats.degraded += 1,
                                "SHED" => stats.shed += 1,
                                "TIMEOUT" => stats.timeout += 1,
                                _ => stats.errors += 1,
                            }
                        }
                        Err(_) => stats.errors += 1,
                    }
                    // Open loop: sleep the remainder of the interval.
                    let spent = t0.elapsed();
                    if spent < cfg.interval {
                        std::thread::sleep(cfg.interval - spent);
                    }
                }
                stats
            })
        })
        .collect();
    let mut total = LoadStats::default();
    for w in workers {
        if let Ok(stats) = w.join() {
            total.absorb(stats);
        }
    }
    total.wall = start.elapsed();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_windows_are_deterministic_and_bounded() {
        let (a, tod_a) = synth_window(6, 12, 9, 2, 5);
        let (b, tod_b) = synth_window(6, 12, 9, 2, 5);
        assert_eq!(a, b);
        assert_eq!(tod_a, tod_b);
        assert!((0.0..1.0).contains(&tod_a));
        assert!(a.iter().all(|v| (30.0..90.0).contains(v)), "plausible speed range");
        let (c, _) = synth_window(6, 12, 9, 2, 6);
        assert_ne!(a, c, "different requests get different windows");
    }

    #[test]
    fn percentiles_order_correctly() {
        let stats = LoadStats {
            latencies_ns: (1..=100).map(|i| i * 1_000_000).collect(),
            sent: 100,
            ..Default::default()
        };
        assert!(stats.percentile_secs(50.0) <= stats.percentile_secs(99.0));
        assert!(stats.percentile_secs(99.0) <= stats.percentile_secs(99.9));
        assert!((stats.percentile_secs(100.0) - 0.1).abs() < 1e-9);
        assert!(stats.mean_secs() > 0.0);
    }
}
