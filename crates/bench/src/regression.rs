//! Perf-regression comparison between two bench-report JSON documents.
//!
//! The bench targets write flat-ish JSON reports (`BENCH_train.json`,
//! `BENCH_gemm.json`). This module diffs a *candidate* report against a
//! committed *baseline* and flags timing leaves that regressed past a
//! tolerance. Only leaves whose key ends in `secs` are gated — those are
//! the wall/CPU timings where **higher is worse**; derived ratios
//! (`speedup_*`, `gflops`, hit rates) follow from them and would double
//! count a regression.
//!
//! The comparison is structural, so new keys in the candidate are ignored
//! and keys missing from the candidate are reported (warn by default,
//! fatal under `--strict` in the `check_bench` binary) rather than
//! silently skipped.
//!
//! Leaves with a baseline below `min_secs` are skipped entirely: at
//! microsecond scale a relative tolerance measures scheduler noise and
//! host differences, not regressions.

use traffic_obs::json::Json;

/// One gated leaf that was present in both documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Dotted path from the document root, e.g. `models.STGCN.pooled.step_secs`.
    pub path: String,
    pub base: f64,
    pub cand: f64,
}

impl Delta {
    /// Relative change vs baseline; positive means the candidate is slower.
    pub fn ratio(&self) -> f64 {
        (self.cand - self.base) / self.base
    }
}

/// Result of comparing a candidate report against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Every gated leaf found in both documents.
    pub checked: Vec<Delta>,
    /// Gated leaves where the candidate exceeded `base * (1 + tol)`.
    pub regressions: Vec<Delta>,
    /// Gated leaves that got at least `tol` faster (informational).
    pub improvements: Vec<Delta>,
    /// Dotted paths of gated baseline leaves absent from the candidate.
    pub missing: Vec<String>,
}

/// True for keys this module gates: raw timings where higher is worse.
fn gated_key(key: &str) -> bool {
    key.ends_with("secs")
}

/// Walks `base`, pairing every gated numeric leaf with the candidate.
/// Baselines shorter than `min_secs` are ignored (too small to gate on
/// a relative tolerance).
pub fn compare(base: &Json, cand: &Json, tol: f64, min_secs: f64) -> Comparison {
    let mut out = Comparison::default();
    walk(base, Some(cand), "", tol, min_secs, &mut out);
    out
}

fn walk(
    base: &Json,
    cand: Option<&Json>,
    path: &str,
    tol: f64,
    min_secs: f64,
    out: &mut Comparison,
) {
    match base {
        Json::Obj(map) => {
            for (key, bval) in map {
                let sub = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                let cval = match cand {
                    Some(Json::Obj(cmap)) => cmap.get(key),
                    _ => None,
                };
                walk(bval, cval, &sub, tol, min_secs, out);
            }
        }
        Json::Num(b) => {
            let key = path.rsplit('.').next().unwrap_or(path);
            if !gated_key(key) || !b.is_finite() || *b < min_secs || *b <= 0.0 {
                return;
            }
            match cand {
                Some(Json::Num(c)) if c.is_finite() => {
                    let delta = Delta { path: path.to_string(), base: *b, cand: *c };
                    if *c > b * (1.0 + tol) {
                        out.regressions.push(delta.clone());
                    } else if *c < b * (1.0 - tol) {
                        out.improvements.push(delta.clone());
                    }
                    out.checked.push(delta);
                }
                _ => out.missing.push(path.to_string()),
            }
        }
        // Arrays and scalars other than objects/numbers carry no gated
        // timings in the bench reports; nothing to do.
        _ => {}
    }
}

/// Renders a human-readable report, one line per noteworthy leaf.
pub fn render(cmp: &Comparison, tol: f64) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "checked {} timing leaves (tolerance {:.0}%): {} regressed, {} improved, {} missing\n",
        cmp.checked.len(),
        tol * 100.0,
        cmp.regressions.len(),
        cmp.improvements.len(),
        cmp.missing.len(),
    ));
    for d in &cmp.regressions {
        s.push_str(&format!(
            "  REGRESSION {:<48} {:>12.6}s -> {:>12.6}s ({:+.1}%)\n",
            d.path,
            d.base,
            d.cand,
            d.ratio() * 100.0
        ));
    }
    for d in &cmp.improvements {
        s.push_str(&format!(
            "  improved   {:<48} {:>12.6}s -> {:>12.6}s ({:+.1}%)\n",
            d.path,
            d.base,
            d.cand,
            d.ratio() * 100.0
        ));
    }
    for path in &cmp.missing {
        s.push_str(&format!("  MISSING    {path} (present in baseline, absent in candidate)\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_obs::json::parse;

    fn doc(s: &str) -> Json {
        parse(s).expect("test JSON must parse")
    }

    #[test]
    fn flags_only_regressed_secs_leaves() {
        let base = doc(r#"{"a":{"step_secs":1.0,"gflops":10.0},"cpu_step_secs":2.0}"#);
        let cand = doc(r#"{"a":{"step_secs":1.3,"gflops":1.0},"cpu_step_secs":2.1}"#);
        let cmp = compare(&base, &cand, 0.15, 0.0);
        // gflops is not gated even though it collapsed; cpu_step_secs moved
        // 5%, inside tolerance.
        assert_eq!(cmp.checked.len(), 2);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].path, "a.step_secs");
        assert!(cmp.missing.is_empty());
    }

    #[test]
    fn improvements_and_missing_are_reported_separately() {
        let base = doc(r#"{"fast_secs":1.0,"gone_secs":1.0,"note":"x"}"#);
        let cand = doc(r#"{"fast_secs":0.5,"extra_secs":9.0}"#);
        let cmp = compare(&base, &cand, 0.15, 0.0);
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].path, "fast_secs");
        assert_eq!(cmp.missing, vec!["gone_secs".to_string()]);
        // extra_secs exists only in the candidate: new benches are not
        // regressions.
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn zero_and_non_numeric_baselines_are_skipped() {
        let base = doc(r#"{"zero_secs":0.0,"str_secs":"n/a","nested":{"warm_secs":0.1}}"#);
        let cand = doc(r#"{"zero_secs":99.0,"str_secs":"n/a","nested":{"warm_secs":0.1}}"#);
        let cmp = compare(&base, &cand, 0.15, 0.0);
        assert_eq!(cmp.checked.len(), 1);
        assert!(cmp.regressions.is_empty());
    }

    #[test]
    fn min_secs_floor_skips_noise_scale_leaves() {
        // A 30µs kernel doubling is scheduler noise, not a regression;
        // the same doubling at 30ms is gated.
        let base = doc(r#"{"tiny_secs":0.00003,"big_secs":0.03}"#);
        let cand = doc(r#"{"tiny_secs":0.00006,"big_secs":0.06}"#);
        let cmp = compare(&base, &cand, 0.15, 0.001);
        assert_eq!(cmp.checked.len(), 1);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].path, "big_secs");
    }

    #[test]
    fn render_mentions_each_bucket() {
        let base = doc(r#"{"slow_secs":1.0,"gone_secs":1.0}"#);
        let cand = doc(r#"{"slow_secs":2.0}"#);
        let cmp = compare(&base, &cand, 0.15, 0.0);
        let text = render(&cmp, 0.15);
        assert!(text.contains("REGRESSION slow_secs"));
        assert!(text.contains("MISSING    gone_secs"));
        assert!(text.contains("1 regressed"));
    }
}
