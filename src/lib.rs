//! # traffic-suite
//!
//! Facade crate for the pure-Rust reproduction of *"An Empirical
//! Experiment on Deep Learning Models for Predicting Traffic Data"*
//! (ICDE 2021). Re-exports every workspace crate under one roof:
//!
//! - [`tensor`]: from-scratch autograd tensor engine
//! - [`nn`]: layers, losses, optimizers
//! - [`graph`]: road networks, adjacencies, Laplacians, embeddings
//! - [`data`]: the 7 simulated PeMS datasets, windowing, difficult intervals
//! - [`metrics`]: masked MAE/RMSE/MAPE, horizons, degradation
//! - [`models`]: the 8 architectures (STGCN … GMAN)
//! - [`core`]: trainer + every table/figure regenerator
//! - [`obs`]: structured tracing + metrics (spans, counters/histograms,
//!   console + JSONL sinks writing per-run manifests)
//!
//! ```no_run
//! use traffic_suite::core::{model_comparison, ExperimentScale};
//!
//! let rows = model_comparison(&["METR-LA"], &["Graph-WaveNet", "GMAN"],
//!                             &ExperimentScale::quick());
//! for r in &rows {
//!     println!("{} {} {}: MAE {:.3}", r.dataset, r.model, r.horizon, r.mae.0);
//! }
//! ```

pub use traffic_core as core;
pub use traffic_data as data;
pub use traffic_graph as graph;
pub use traffic_metrics as metrics;
pub use traffic_models as models;
pub use traffic_nn as nn;
pub use traffic_obs as obs;
pub use traffic_serve as serve;
pub use traffic_tensor as tensor;

/// Parses the common `--scale` CLI argument used by the examples.
/// Accepts `smoke`, `quick`, `thorough`, `full`; defaults to `quick`.
pub fn scale_from_args() -> core::ExperimentScale {
    let arg = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .unwrap_or_else(|| "quick".to_string());
    match arg.as_str() {
        "smoke" => core::ExperimentScale::smoke(),
        "quick" => core::ExperimentScale::quick(),
        "thorough" => core::ExperimentScale::thorough(),
        "full" => core::ExperimentScale::full(),
        other => {
            eprintln!("unknown scale '{other}', using quick");
            core::ExperimentScale::quick()
        }
    }
}
