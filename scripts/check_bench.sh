#!/usr/bin/env bash
# Perf-regression gate: diffs fresh bench reports against the committed
# baselines and fails on timing leaves that regressed past a tolerance.
#
# Usage:
#   scripts/check_bench.sh                       # committed vs on-disk reports
#   scripts/check_bench.sh --run                 # regenerate reports first
#   scripts/check_bench.sh base.json cand.json   # explicit pair (acceptance tests)
#
#   BENCH_TOL=0.5 scripts/check_bench.sh         # widen tolerance (default 0.15)
#   BENCH_MIN_SECS=0.01 scripts/check_bench.sh   # ignore baselines under 10ms
#   CHECK_BENCH_STRICT=1 scripts/check_bench.sh  # missing keys are fatal
#
# With no explicit pair, the baseline for each report is the version
# committed at HEAD (`git show HEAD:BENCH_*.json`) and the candidate is
# the file currently on disk — so CI runs the smoke benches, then this
# script compares the fresh numbers against what the PR claims.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TOL="${BENCH_TOL:-0.15}"
STRICT_FLAG=()
[[ "${CHECK_BENCH_STRICT:-0}" == "1" ]] && STRICT_FLAG=(--strict)

check() {
  cargo run --release -q -p traffic-bench --bin check_bench -- \
    --tol "$BENCH_TOL" "${STRICT_FLAG[@]}" "$@"
}

# Explicit pair: compare exactly those two files and exit.
if [[ $# -eq 2 && "$1" != "--run" ]]; then
  check "$1" "$2"
  exit $?
fi

if [[ "${1:-}" == "--run" ]]; then
  scripts/bench_gemm.sh >/dev/null
  scripts/bench_elementwise.sh >/dev/null
  scripts/bench_train.sh >/dev/null
  scripts/bench_report.sh >/dev/null
  scripts/bench_serve.sh >/dev/null
fi

status=0
for report in BENCH_gemm.json BENCH_elementwise.json BENCH_train.json BENCH_report.json BENCH_serve.json; do
  if [[ ! -f "$report" ]]; then
    echo "check_bench.sh: $report not on disk (run scripts/bench_*.sh first); skipping"
    continue
  fi
  base="$(mktemp "/tmp/baseline.$report.XXXXXX")"
  trap 'rm -f "$base"' EXIT
  if ! git show "HEAD:$report" > "$base" 2>/dev/null; then
    # Report not committed yet: nothing to gate against.
    echo "check_bench.sh: $report has no committed baseline at HEAD; skipping"
    rm -f "$base"
    continue
  fi
  echo "== $report =="
  check "$base" "$report" || status=1
  rm -f "$base"
done
exit $status
