//! Small dense symmetric eigensolver (cyclic Jacobi rotations).
//!
//! Used for the rescaled Chebyshev Laplacian (λmax) and for the spectral
//! node embeddings that substitute GMAN's node2vec (see DESIGN.md §2).
//! O(N³) per sweep — fine for the few-hundred-node networks in this study.

use traffic_tensor::Tensor;

/// Eigen decomposition of a symmetric matrix.
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f32>,
    /// Eigenvectors as rows, aligned with `values` (`vectors[k]` is the
    /// eigenvector of `values[k]`).
    pub vectors: Vec<Vec<f32>>,
}

/// Jacobi eigenvalue iteration on a symmetric `[N, N]` tensor.
///
/// `sweeps` full cyclic sweeps (8 is plenty for graph Laplacians).
pub fn sym_eigen(a: &Tensor, sweeps: usize) -> SymEigen {
    let n = a.shape()[0];
    assert_eq!(a.shape(), &[n, n], "sym_eigen expects a square matrix");
    let mut m: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    // Accumulate rotations in v (row-major identity).
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    for _ in 0..sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[p * n + q].abs();
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors (columns of V).
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f32, Vec<f32>)> = (0..n)
        .map(|k| {
            let val = m[k * n + k] as f32;
            let vec: Vec<f32> = (0..n).map(|i| v[i * n + k] as f32).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    SymEigen {
        values: pairs.iter().map(|(v, _)| *v).collect(),
        vectors: pairs.into_iter().map(|(_, v)| v).collect(),
    }
}

/// Largest eigenvalue of a symmetric matrix (convenience wrapper).
pub fn max_eigenvalue(a: &Tensor, sweeps: usize) -> f32 {
    *sym_eigen(a, sweeps).values.last().expect("empty matrix")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, 1.0], &[2, 2]);
        let e = sym_eigen(&a, 8);
        assert!((e.values[0] - 1.0).abs() < 1e-5);
        assert!((e.values[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 2.0], &[2, 2]);
        let e = sym_eigen(&a, 8);
        assert!((e.values[0] - 1.0).abs() < 1e-5);
        assert!((e.values[1] - 3.0).abs() < 1e-5);
        // eigenvector of 3 is (1, 1)/√2 up to sign
        let v = &e.vectors[1];
        assert!((v[0].abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-4);
        assert!((v[0] - v[1]).abs() < 1e-4);
    }

    #[test]
    fn reconstruction() {
        // A = V Λ Vᵀ
        let a = Tensor::from_vec(vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.0], &[3, 3]);
        let e = sym_eigen(&a, 10);
        let n = 3;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0f32;
                for k in 0..n {
                    sum += e.values[k] * e.vectors[k][i] * e.vectors[k][j];
                }
                assert!((sum - a.at(&[i, j])).abs() < 1e-3, "({i},{j}): {sum}");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Tensor::from_vec(vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0], &[3, 3]);
        let e = sym_eigen(&a, 10);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f32 = e.vectors[i].iter().zip(&e.vectors[j]).map(|(a, b)| a * b).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-4, "({i},{j}): {dot}");
            }
        }
    }
}
