//! Run lifecycle: installs sinks, brackets the run with
//! `run_start`/`run_end` events, and appends a metrics summary to the
//! manifest when the run ends.
//!
//! Every `run_start` event carries a reproducibility header: the git
//! commit the process was built from (read from `.git` without
//! spawning a subprocess), the thread configuration (`TRAFFIC_THREADS`
//! or hardware parallelism), and the `TRAFFIC_MEM_CAP` setting.
//!
//! With [`RunBuilder::profiled`], the op profiler
//! ([`crate::profile`]) records for the lifetime of the run; at run
//! end the flame table is appended to the manifest as `op_stat` events
//! and both report files (`<run>.txt`, `<run>.trace.json`) are written
//! under the chosen directory.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::event::Event;
use crate::sink::{add_sink, remove_sink, ConsoleSink, JsonlSink, Sink};
use crate::sysmon::SysSampler;

/// Flame-table rows exported to the manifest as `op_stat` events.
const MANIFEST_OP_STATS: usize = 16;

/// Builder for [`Run`].
pub struct RunBuilder {
    name: String,
    console: bool,
    jsonl_dir: Option<PathBuf>,
    profile_dir: Option<PathBuf>,
    reset_metrics: bool,
    sys_sample: Option<Duration>,
    live_addr: Option<String>,
    watchdog: Option<Vec<crate::watch::Rule>>,
}

impl RunBuilder {
    /// Attaches a [`ConsoleSink`] (live epoch lines + sparkline).
    pub fn console(mut self, on: bool) -> Self {
        self.console = on;
        self
    }

    /// Attaches a [`JsonlSink`] writing `<dir>/<name>.jsonl`.
    pub fn jsonl(mut self, dir: impl Into<PathBuf>) -> Self {
        self.jsonl_dir = Some(dir.into());
        self
    }

    /// Enables op-level profiling for the run and writes the flame
    /// table (`<dir>/<name>.txt`) and Chrome trace
    /// (`<dir>/<name>.trace.json`) when the run ends.
    pub fn profiled(mut self, dir: impl Into<PathBuf>) -> Self {
        self.profile_dir = Some(dir.into());
        self
    }

    /// Whether global metrics reset when the run starts (default true,
    /// so each manifest's summary covers only its own run).
    pub fn reset_metrics(mut self, on: bool) -> Self {
        self.reset_metrics = on;
        self
    }

    /// Attaches the background system sampler ([`crate::sysmon`]) for
    /// the lifetime of the run, emitting `sys` events every `interval`.
    /// Without this call the sampler still starts when
    /// `TRAFFIC_SYS_SAMPLE_MS` is set in the environment.
    pub fn system_sampler(mut self, interval: Duration) -> Self {
        self.sys_sample = Some(interval);
        self
    }

    /// Serves live telemetry ([`crate::live::LiveServer`]) on `addr`
    /// (e.g. `127.0.0.1:9898`; port `0` picks a free port) for the
    /// lifetime of the run. Without this call the server still starts
    /// when `TRAFFIC_LIVE=<addr>` is set in the environment. A bind
    /// failure warns and continues — telemetry never kills a run.
    pub fn live_server(mut self, addr: &str) -> Self {
        self.live_addr = Some(addr.to_string());
        self
    }

    /// Arms the watchdog ([`crate::watch`]) with `rules` for the
    /// lifetime of the run. Without this call the standard rule set
    /// still arms when `TRAFFIC_WATCHDOG=1` is set in the environment.
    /// Rules are evaluated on the system-sampler cadence; arming the
    /// watchdog without a sampler configured starts one at 500 ms.
    pub fn watchdog(mut self, rules: Vec<crate::watch::Rule>) -> Self {
        self.watchdog = Some(rules);
        self
    }

    /// Installs the sinks and starts the run.
    pub fn start(self) -> std::io::Result<Run> {
        let keep = runs_keep_from_env();
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        let mut manifest_path = None;
        if self.console {
            sinks.push(Arc::new(ConsoleSink::new()));
        }
        // Retention first, so the new manifest never counts against
        // its own budget and the directories cannot grow past keep+1.
        let cell_dir = std::env::var("TRAFFIC_CELL_MANIFESTS")
            .ok()
            .map(|d| PathBuf::from(d.trim()))
            .filter(|d| !d.as_os_str().is_empty());
        apply_retention(
            keep,
            self.jsonl_dir.as_deref(),
            self.profile_dir.as_deref(),
            cell_dir.as_deref(),
        );
        if let Some(dir) = &self.jsonl_dir {
            let jsonl = JsonlSink::create(dir, &self.name)?;
            manifest_path = Some(jsonl.path().to_path_buf());
            sinks.push(Arc::new(jsonl));
        }
        if self.reset_metrics {
            crate::metrics::reset_metrics();
        }
        crate::live::reset_progress();
        for s in &sinks {
            add_sink(Arc::clone(s));
        }
        if self.profile_dir.is_some() {
            crate::profile::start();
        }
        let live = self
            .live_addr
            .or_else(|| std::env::var("TRAFFIC_LIVE").ok().filter(|a| !a.trim().is_empty()))
            .and_then(|addr| {
                let runs_dir = self.jsonl_dir.clone().unwrap_or_else(|| "reports/runs".into());
                match crate::live::LiveServer::start_with(
                    addr.trim(),
                    Some(&self.name),
                    Some(&runs_dir),
                ) {
                    Ok(server) => Some(server),
                    Err(e) => {
                        eprintln!("warning: live server could not bind {addr}: {e}");
                        None
                    }
                }
            });
        let watchdog_rules = self.watchdog.or_else(|| {
            std::env::var("TRAFFIC_WATCHDOG")
                .ok()
                .filter(|v| matches!(v.trim(), "1" | "true" | "on"))
                .map(|_| crate::watch::standard_rules())
        });
        let armed_watchdog = watchdog_rules.is_some();
        if let Some(rules) = watchdog_rules {
            crate::watch::arm(rules);
        }
        // The watchdog only ever ticks from the sampler loop: arming it
        // without a sampler configured gets the default cadence.
        let sample = self
            .sys_sample
            .or_else(crate::sysmon::interval_from_env)
            .or_else(|| armed_watchdog.then(|| Duration::from_millis(500)));
        let sampler = sample.map(SysSampler::start);
        let run = Run {
            name: self.name,
            sinks,
            manifest_path,
            profile_dir: self.profile_dir,
            sampler,
            live,
            armed_watchdog,
            started: Instant::now(),
            ended: false,
        };
        crate::emit(
            &Event::new("run_start")
                .with("run", run.name.as_str())
                .with("git", git_commit().unwrap_or_else(|| "unknown".to_string()))
                .with("threads", configured_threads() as u64)
                .with(
                    "mem_cap",
                    std::env::var("TRAFFIC_MEM_CAP").unwrap_or_else(|_| "default".to_string()),
                ),
        );
        Ok(run)
    }
}

/// One retention pass over every report directory a run writes to:
/// the main JSONL manifests, the profile reports, and the per-cell
/// manifests under `TRAFFIC_CELL_MANIFESTS` (same stem-group policy).
/// Explicit-dir seam so the unit test needs no env mutation.
fn apply_retention(
    keep: Option<usize>,
    jsonl_dir: Option<&Path>,
    profile_dir: Option<&Path>,
    cell_dir: Option<&Path>,
) -> usize {
    let Some(keep) = keep else {
        return 0;
    };
    let mut removed = 0;
    if let Some(dir) = jsonl_dir {
        removed += prune_dir(dir, keep, &[".jsonl"]);
    }
    if let Some(dir) = profile_dir {
        removed += prune_dir(dir, keep, &[".txt", ".trace.json"]);
    }
    if let Some(dir) = cell_dir {
        removed += prune_dir(dir, keep, &[".jsonl"]);
    }
    removed
}

/// Manifest retention budget from `TRAFFIC_RUNS_KEEP` (`None` = keep
/// everything; `0` also means keep everything, so the knob can be
/// force-disabled in CI).
fn runs_keep_from_env() -> Option<usize> {
    std::env::var("TRAFFIC_RUNS_KEEP")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Deletes report files beyond the `keep` newest run groups in `dir`.
///
/// Files are grouped by run stem — the filename with the first matching
/// suffix stripped — so a profile pair (`<run>.txt`,
/// `<run>.trace.json`) counts as one run and is deleted together.
/// Groups are ranked by their newest member's mtime (name as
/// tiebreaker); files matching none of the suffixes are never touched.
pub fn prune_dir(dir: impl AsRef<Path>, keep: usize, suffixes: &[&str]) -> usize {
    let dir = dir.as_ref();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    // stem -> (newest mtime, paths)
    let mut groups: Vec<(String, std::time::SystemTime, Vec<PathBuf>)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = suffixes.iter().find_map(|s| name.strip_suffix(s)) else {
            continue;
        };
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        match groups.iter_mut().find(|(g, ..)| g == stem) {
            Some((_, newest, paths)) => {
                *newest = (*newest).max(mtime);
                paths.push(path);
            }
            None => groups.push((stem.to_string(), mtime, vec![path])),
        }
    }
    if groups.len() <= keep {
        return 0;
    }
    // newest first; equal mtimes (coarse filesystems) fall back to name
    groups.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
    let mut removed = 0;
    for (_, _, paths) in groups.drain(keep..) {
        for p in paths {
            if std::fs::remove_file(&p).is_ok() {
                removed += 1;
            }
        }
    }
    removed
}

/// Thread count the compute pool will use: `TRAFFIC_THREADS` when set,
/// otherwise hardware parallelism. Mirrors the pool's own sizing logic
/// (duplicated here because `traffic-obs` sits below the tensor crate).
fn configured_threads() -> usize {
    std::env::var("TRAFFIC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Current git commit hash, read straight from `.git` (no subprocess):
/// walks up from the working directory to the repo root, follows
/// `HEAD`'s symbolic ref through loose refs and `packed-refs`.
pub fn git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return (head.len() >= 7).then(|| head.to_string()); // detached HEAD
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
        return Some(hash.trim().to_string());
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    packed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
        .find_map(|l| l.strip_suffix(refname).map(|hash| hash.trim().to_string()))
}

/// An active telemetry run (RAII: ending/shutdown happens on drop).
///
/// ```no_run
/// let run = traffic_obs::Run::named("demo")
///     .console(true)
///     .jsonl("reports/runs")
///     .start()?;
/// // ... train, emit events ...
/// drop(run); // writes summary + run_end, detaches sinks
/// # std::io::Result::Ok(())
/// ```
pub struct Run {
    name: String,
    sinks: Vec<Arc<dyn Sink>>,
    manifest_path: Option<PathBuf>,
    profile_dir: Option<PathBuf>,
    sampler: Option<SysSampler>,
    live: Option<crate::live::LiveServer>,
    armed_watchdog: bool,
    started: Instant,
    ended: bool,
}

impl Run {
    /// Starts building a run with the given manifest name.
    pub fn named(name: &str) -> RunBuilder {
        RunBuilder {
            name: name.to_string(),
            console: false,
            jsonl_dir: None,
            profile_dir: None,
            reset_metrics: true,
            sys_sample: None,
            live_addr: None,
            watchdog: None,
        }
    }

    /// Run name (manifest file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Path of the JSONL manifest, when one was requested.
    pub fn manifest_path(&self) -> Option<&std::path::Path> {
        self.manifest_path.as_deref()
    }

    /// Bound address of the live telemetry server, when one is up
    /// (resolves a requested port `0` to the actual port).
    pub fn live_addr(&self) -> Option<std::net::SocketAddr> {
        self.live.as_ref().map(|s| s.addr())
    }

    /// Ends the run explicitly (otherwise happens on drop).
    pub fn finish(mut self) {
        self.end();
    }

    fn end(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        // Disarm the watchdog before the sampler stops so no tick can
        // raise a fresh alert into a closing manifest.
        if self.armed_watchdog {
            crate::watch::disarm();
        }
        // Stop the system sampler first so its final gauges land in the
        // metrics summary and no `sys` event trails `run_end`.
        drop(self.sampler.take());
        if let Some(dir) = self.profile_dir.take() {
            crate::profile::stop();
            // Flame table into the manifest, then the report files.
            for s in crate::profile::flame_table().iter().take(MANIFEST_OP_STATS) {
                crate::emit(
                    &Event::new("op_stat")
                        .with("run", self.name.as_str())
                        .with("op", format!("{}/{}", s.cat, s.name))
                        .with("count", s.count)
                        .with("total_ms", s.total_ns as f64 * 1e-6)
                        .with("self_ms", s.self_ns as f64 * 1e-6)
                        .with("flops", s.flops)
                        .with("bytes", s.bytes),
                );
            }
            match crate::profile::write_reports(&dir, &self.name) {
                Ok((txt, trace)) => crate::emit(
                    &Event::new("profile")
                        .with("run", self.name.as_str())
                        .with("flame_table", txt.display().to_string())
                        .with("trace", trace.display().to_string()),
                ),
                Err(e) => eprintln!("warning: could not write profile reports to {dir:?}: {e}"),
            }
        }
        // summary: every registered metric, then the run_end banner
        for ev in crate::metrics::metrics_snapshot() {
            crate::emit(&ev.with("run", self.name.as_str()));
        }
        crate::emit(
            &Event::new("run_end")
                .with("run", self.name.as_str())
                .with("wall_s", self.started.elapsed().as_secs_f64()),
        );
        crate::sink::flush_all();
        // The live server goes down after the flush so `run_end` (and
        // the metrics summary) reach the broadcast ring for any open
        // `/events` stream, then its tap leaves the sink table.
        drop(self.live.take());
        for s in &self.sinks {
            remove_sink(s);
        }
        self.sinks.clear();
    }
}

impl Drop for Run {
    fn drop(&mut self) {
        self.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tested directly (not via TRAFFIC_RUNS_KEEP) so the test does not
    // mutate process-global env shared with concurrently running tests.
    #[test]
    fn prune_keeps_newest_run_groups() {
        let dir = std::env::temp_dir().join("traffic_obs_prune_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (i, run) in ["alpha", "beta", "gamma", "delta"].iter().enumerate() {
            std::fs::write(dir.join(format!("{run}.txt")), "flame").unwrap();
            std::fs::write(dir.join(format!("{run}.trace.json")), "{}").unwrap();
            // Distinct mtimes even on coarse-grained filesystems.
            let mtime = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 100);
            let f = std::fs::File::open(dir.join(format!("{run}.txt"))).unwrap();
            f.set_modified(mtime).unwrap();
            let f = std::fs::File::open(dir.join(format!("{run}.trace.json"))).unwrap();
            f.set_modified(mtime).unwrap();
        }
        std::fs::write(dir.join("unrelated.md"), "keep me").unwrap();

        let removed = prune_dir(&dir, 2, &[".txt", ".trace.json"]);
        assert_eq!(removed, 4, "two oldest groups × two files each");
        assert!(!dir.join("alpha.txt").exists());
        assert!(!dir.join("beta.trace.json").exists());
        assert!(dir.join("gamma.txt").exists());
        assert!(dir.join("delta.trace.json").exists());
        assert!(dir.join("unrelated.md").exists(), "non-matching files are never pruned");

        // Within budget: nothing to do.
        assert_eq!(prune_dir(&dir, 2, &[".txt", ".trace.json"]), 0);
        // Missing directory: quietly a no-op.
        assert_eq!(prune_dir(dir.join("nope"), 1, &[".jsonl"]), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    // The retention gap this covers: per-cell manifests (the
    // TRAFFIC_CELL_MANIFESTS directory) were never pruned, so a long
    // sweep series grew that directory without bound while the main
    // manifest directory stayed within TRAFFIC_RUNS_KEEP.
    #[test]
    fn retention_covers_cell_manifest_dir() {
        let root = std::env::temp_dir().join("traffic_obs_retention_test");
        let _ = std::fs::remove_dir_all(&root);
        let runs = root.join("runs");
        let cells = root.join("cells");
        std::fs::create_dir_all(&runs).unwrap();
        std::fs::create_dir_all(&cells).unwrap();
        // Cell manifests are named by sanitized cell label (the
        // scheduler truncates on rewrite, so stale entries are cells
        // that left the sweep grid — exactly what retention should
        // collect).
        let cell_names =
            ["fig1-METR-LA-STGCN.jsonl", "fig1-METR-LA-STSGCN.jsonl", "fig2-METR-LA-STGCN.jsonl"];
        for (i, run) in ["alpha", "beta", "gamma"].iter().enumerate() {
            let mtime = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 100);
            let path = runs.join(format!("{run}.jsonl"));
            std::fs::write(&path, "{}\n").unwrap();
            std::fs::File::open(&path).unwrap().set_modified(mtime).unwrap();
            let path = cells.join(cell_names[i]);
            std::fs::write(&path, "{}\n").unwrap();
            std::fs::File::open(&path).unwrap().set_modified(mtime).unwrap();
        }
        // keep=1: the two older groups go from every directory.
        let removed = apply_retention(Some(1), Some(&runs), None, Some(&cells));
        assert_eq!(removed, 4);
        assert!(runs.join("gamma.jsonl").exists());
        assert!(!runs.join("alpha.jsonl").exists());
        assert!(cells.join("fig2-METR-LA-STGCN.jsonl").exists(), "newest cell manifest stays");
        assert!(!cells.join("fig1-METR-LA-STGCN.jsonl").exists());
        assert!(!cells.join("fig1-METR-LA-STSGCN.jsonl").exists());
        // No budget set: everything stays.
        assert_eq!(apply_retention(None, Some(&runs), None, Some(&cells)), 0);
        std::fs::remove_dir_all(&root).ok();
    }
}
