//! Graph-WaveNet (Wu et al., IJCAI 2019): stacked dilated causal gated
//! temporal convolutions interleaved with diffusion graph convolutions,
//! plus a **self-adaptive adjacency matrix** `softmax(relu(E₁ E₂ᵀ))`
//! learned end-to-end. All 12 output steps are produced in a single pass —
//! the reason Table III shows it with the fastest inference.

use std::cell::RefCell;

use rand::rngs::StdRng;
use traffic_nn::{Conv2d, DiffusionConv, GatedTemporalConv, Param, ParamStore, TemporalPadding};
use traffic_tensor::{inference, init, Tape, Tensor, Var};

use crate::common::{to_conv_layout, GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// Graph-WaveNet hyper-parameters.
#[derive(Debug, Clone)]
pub struct GraphWavenetConfig {
    /// Residual channel width.
    pub residual: usize,
    /// Skip channel width.
    pub skip: usize,
    /// Dilation of each TCN layer.
    pub dilations: Vec<usize>,
    /// Diffusion steps per graph conv.
    pub diffusion_steps: usize,
    /// Node-embedding width of the adaptive adjacency.
    pub adaptive_dim: usize,
    /// Dropout probability applied to each layer's graph-conv output
    /// during training (the original uses 0.3).
    pub dropout: f32,
    /// Whether the adaptive adjacency is used at all (ablation knob).
    pub use_adaptive: bool,
    /// Input/output horizons and feature count.
    pub t_in: usize,
    pub t_out: usize,
    pub in_features: usize,
}

impl Default for GraphWavenetConfig {
    fn default() -> Self {
        GraphWavenetConfig {
            residual: 12,
            skip: 24,
            dilations: vec![1, 2, 4],
            diffusion_steps: 2,
            adaptive_dim: 6,
            dropout: 0.1,
            use_adaptive: true,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

struct GwnLayer {
    tcn: GatedTemporalConv,
    gconv: DiffusionConv,
    skip_conv: Conv2d,
}

/// The Graph-WaveNet model.
pub struct GraphWavenet {
    store: ParamStore,
    start: Conv2d,
    layers: Vec<GwnLayer>,
    end1: Conv2d,
    end2: Conv2d,
    e1: Option<Param>,
    e2: Option<Param>,
    /// Inference-mode cache of the materialized `[N, N]` adaptive
    /// adjacency, keyed by the embeddings' mutation counters. Rebuilding
    /// the `softmax(relu(E₁E₂ᵀ))` subgraph dominates small-batch no-grad
    /// forwards (Table III, `predict`), yet between optimizer steps its
    /// value never changes.
    adaptive_cache: RefCell<Option<(u64, u64, Tensor)>>,
    cfg: GraphWavenetConfig,
}

impl GraphWavenet {
    /// Builds Graph-WaveNet for a graph context.
    pub fn new(ctx: &GraphContext, cfg: GraphWavenetConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        let start = Conv2d::new(
            &mut store,
            "start",
            cfg.in_features,
            cfg.residual,
            (1, 1),
            (1, 1),
            TemporalPadding::Valid,
            true,
            rng,
        );
        let extra = usize::from(cfg.use_adaptive);
        let mut layers = Vec::new();
        for (i, &d) in cfg.dilations.iter().enumerate() {
            // Valid (shrinking) dilated convolution, as in the original:
            // each layer shortens the time axis by its dilation, so deeper
            // layers process fewer positions — the source of Graph-WaveNet's
            // fast single-pass inference.
            let tcn = GatedTemporalConv::new(
                &mut store,
                &format!("layer{i}.tcn"),
                cfg.residual,
                cfg.residual,
                2,
                d,
                TemporalPadding::Valid,
                rng,
            );
            let gconv = DiffusionConv::new(
                &mut store,
                &format!("layer{i}.gconv"),
                ctx.supports.clone(),
                extra,
                cfg.diffusion_steps,
                cfg.residual,
                cfg.residual,
                rng,
            );
            let skip_conv = Conv2d::new(
                &mut store,
                &format!("layer{i}.skip"),
                cfg.residual,
                cfg.skip,
                (1, 1),
                (1, 1),
                TemporalPadding::Valid,
                true,
                rng,
            );
            layers.push(GwnLayer { tcn, gconv, skip_conv });
        }
        let end1 = Conv2d::new(
            &mut store,
            "end1",
            cfg.skip,
            cfg.skip,
            (1, 1),
            (1, 1),
            TemporalPadding::Valid,
            true,
            rng,
        );
        let end2 = Conv2d::new(
            &mut store,
            "end2",
            cfg.skip,
            cfg.t_out,
            (1, 1),
            (1, 1),
            TemporalPadding::Valid,
            true,
            rng,
        );
        let (e1, e2) =
            if cfg.use_adaptive {
                (
                    Some(store.add(
                        "adaptive.e1",
                        init::normal(&[ctx.n, cfg.adaptive_dim], 0.0, 0.1, rng),
                    )),
                    Some(store.add(
                        "adaptive.e2",
                        init::normal(&[ctx.n, cfg.adaptive_dim], 0.0, 0.1, rng),
                    )),
                )
            } else {
                (None, None)
            };
        GraphWavenet {
            store,
            start,
            layers,
            end1,
            end2,
            e1,
            e2,
            adaptive_cache: RefCell::new(None),
            cfg,
        }
    }

    /// The learned adaptive adjacency `softmax(relu(E₁ E₂ᵀ))`, or `None`
    /// when disabled.
    pub fn adaptive_adjacency<'t>(&self, tape: &'t Tape) -> Option<Var<'t>> {
        let (e1, e2) = (self.e1.as_ref()?, self.e2.as_ref()?);
        let a = e1.var(tape).matmul(&e2.var(tape).t()).relu();
        Some(a.softmax(1))
    }

    /// The materialized adaptive adjacency, cached across no-grad
    /// forwards and invalidated whenever an optimizer step touches an
    /// embedding. The cached tensor is produced by the exact kernel
    /// chain the tape path runs, so serving it is bit-identical to
    /// recomputing — the eval-vs-train determinism tests pin this.
    fn cached_adaptive(&self) -> Option<Tensor> {
        let (e1, e2) = (self.e1.as_ref()?, self.e2.as_ref()?);
        let key = (e1.version(), e2.version());
        if let Some((v1, v2, a)) = self.adaptive_cache.borrow().as_ref() {
            if (*v1, *v2) == key {
                return Some(a.clone());
            }
        }
        // Constants on a scratch tape: same compute, no autograd bookkeeping
        // and no interference with the parameters' tape-binding cache.
        let t = Tape::new();
        let a = t.constant(e1.value()).matmul(&t.constant(e2.value()).t()).relu().softmax(1);
        let a = a.value();
        *self.adaptive_cache.borrow_mut() = Some((key.0, key.1, a.clone()));
        Some(a)
    }
}

impl TrafficModel for GraphWavenet {
    fn name(&self) -> &'static str {
        "Graph-WaveNet"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("Graph-WaveNet").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        mut train: Option<&mut TrainCtx<'_>>,
    ) -> Var<'t> {
        let shape = x.shape();
        let (b, t, n) = (shape[0], shape[1], shape[2]);
        assert_eq!(t, self.cfg.t_in);
        // In inference mode the gradient never flows, so the adjacency is a
        // constant: serve the cached materialization instead of re-recording
        // its subgraph on every forward. Training (or a no-grad forward that
        // still wants the graph, e.g. gradcheck outside the trainer) keeps
        // the tape path.
        let adaptive: Vec<Var<'t>> = if train.is_none() && inference::active() {
            self.cached_adaptive().map(|a| tape.constant(a)).into_iter().collect()
        } else {
            self.adaptive_adjacency(tape).into_iter().collect()
        };
        let mut h = self.start.forward(tape, to_conv_layout(x)); // [B, R, N, T]
        let mut skip_sum: Option<Var<'t>> = None;
        for layer in &self.layers {
            let residual = h;
            let z = layer.tcn.forward(tape, h); // valid: [B, R, N, T - d]
                                                // Graph conv per (remaining) time slice.
            let zs = z.shape();
            let (c, tt) = (zs[1], zs[3]);
            let flat = z.permute(&[0, 3, 2, 1]).reshape(&[b * tt, n, c]);
            let g = layer.gconv.forward_with(tape, flat, &adaptive);
            let mut g = g.reshape(&[b, tt, n, c]).permute(&[0, 3, 2, 1]);
            if let Some(ctx) = train.as_deref_mut() {
                if self.cfg.dropout > 0.0 {
                    use rand::Rng;
                    let rng = &mut *ctx.rng;
                    g = g.dropout(self.cfg.dropout, true, || rng.gen::<f32>());
                }
            }
            // Skip connection reads only the final position of this layer.
            let s = layer.skip_conv.forward(tape, g.narrow(3, tt - 1, 1)); // [B, S, N, 1]
            skip_sum = Some(match skip_sum {
                Some(acc) => acc.add(&s),
                None => s,
            });
            // Residual: crop the stored input to the shortened time axis.
            let rt = residual.shape()[3];
            h = g.add(&residual.narrow(3, rt - tt, tt));
        }
        let skip = skip_sum.expect("at least one layer").relu(); // [B, S, N, 1]
        let out = self.end2.forward(tape, self.end1.forward(tape, skip).relu()); // [B, T_out, N, 1]
        out.reshape(&[b, self.cfg.t_out, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;
    use traffic_tensor::Tensor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let net = freeway_corridor(6, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn forward_shape() {
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 6, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 6]);
    }

    #[test]
    fn adaptive_adjacency_rows_stochastic() {
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let tape = Tape::new();
        let a = model.adaptive_adjacency(&tape).unwrap().value();
        assert_eq!(a.shape(), &[6, 6]);
        for i in 0..6 {
            let s: f32 = (0..6).map(|j| a.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn ablation_without_adaptive() {
        let (ctx, mut rng) = setup();
        let cfg = GraphWavenetConfig { use_adaptive: false, ..Default::default() };
        let model = GraphWavenet::new(&ctx, cfg, &mut rng);
        let tape = Tape::new();
        assert!(model.adaptive_adjacency(&tape).is_none());
        let x = tape.constant(Tensor::zeros(&[1, 12, 6, 2]));
        assert_eq!(model.forward(&tape, x, None).shape(), vec![1, 12, 6]);
        // Fewer params than the adaptive variant.
        let mut rng2 = StdRng::seed_from_u64(7);
        let full = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng2);
        assert!(model.num_params() < full.num_params());
    }

    #[test]
    fn grads_reach_all_params_including_embeddings() {
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(init::uniform(&[1, 12, 6, 2], -1.0, 1.0, &mut rng));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn valid_convs_shrink_receptive_field_not_output() {
        // Dilations [1, 2, 4] consume 7 steps of the 12-step window; the
        // output must still cover all 12 horizons from the final position.
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 12, 6, 2]));
        assert_eq!(model.forward(&tape, x, None).shape(), vec![1, 12, 6]);
    }

    #[test]
    fn early_history_still_reaches_output() {
        // With dilations [1, 2, 4] the receptive field spans 8 steps, so
        // perturbing t = 5 must change the output, while t = 0 lies outside
        // the receptive field of the final position.
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let base = Tensor::zeros(&[1, 12, 6, 2]);
        let run = |input: Tensor| {
            let tape = Tape::new();
            model.forward(&tape, tape.constant(input), None).value()
        };
        let y0 = run(base.clone());
        let mut mid = base.clone();
        mid.make_mut()[5 * 6 * 2] = 3.0; // t = 5, node 0, value feature
        assert_ne!(run(mid), y0, "step inside the receptive field must matter");
    }

    #[test]
    fn cached_inference_is_bit_identical_and_invalidates() {
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let x = init::uniform(&[2, 12, 6, 2], -1.0, 1.0, &mut rng);
        let run = |m: &GraphWavenet| {
            let tape = Tape::new();
            m.forward(&tape, tape.constant(x.clone()), None).value()
        };
        let plain = run(&model);
        let cached = {
            let _inf = inference::InferenceGuard::enter();
            let first = run(&model);
            // second forward actually hits the cache
            assert!(model.adaptive_cache.borrow().is_some());
            let second = run(&model);
            assert_eq!(first, second);
            first
        };
        assert_eq!(plain, cached, "cached adjacency must not change the forward value");

        // An optimizer-style in-place update must invalidate the cache.
        model.e1.as_ref().unwrap().update_value(|t| t.map_inplace(|v| v + 0.5));
        let _inf = inference::InferenceGuard::enter();
        let after = run(&model);
        assert_ne!(plain, after, "stale adjacency served after embedding update");
    }

    #[test]
    fn output_depends_on_input() {
        let (ctx, mut rng) = setup();
        let model = GraphWavenet::new(&ctx, GraphWavenetConfig::default(), &mut rng);
        let tape = Tape::new();
        let x0 = tape.constant(Tensor::zeros(&[1, 12, 6, 2]));
        let x1 = tape.constant(Tensor::ones(&[1, 12, 6, 2]));
        let y0 = model.forward(&tape, x0, None).value();
        let y1 = model.forward(&tape, x1, None).value();
        assert_ne!(y0, y1);
    }
}
