//! Recurrent cells. Traffic seq2seq models (DCRNN, ST-MetaNet) run these
//! per time step over `[B·N, F]` flattened node-batches.

use rand::Rng;
use traffic_tensor::{Tape, Tensor, Var};

use crate::linear::Linear;
use crate::param::ParamStore;

/// Standard GRU cell: `[B, in] × [B, hidden] -> [B, hidden]`.
pub struct GruCell {
    /// Computes `[r | z]` gates from `[x | h]`.
    gates: Linear,
    /// Computes candidate state from `[x | r⊙h]`.
    candidate: Linear,
    hidden: usize,
}

impl GruCell {
    /// New cell with Xavier-initialised gate transforms.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let gates =
            Linear::new(store, &format!("{prefix}.gates"), input + hidden, 2 * hidden, true, rng);
        let candidate =
            Linear::new(store, &format!("{prefix}.candidate"), input + hidden, hidden, true, rng);
        GruCell { gates, candidate, hidden }
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Zero initial state for batch size `b`.
    pub fn zero_state<'t>(&self, tape: &'t Tape, b: usize) -> Var<'t> {
        tape.constant(Tensor::zeros(&[b, self.hidden]))
    }

    /// One step: returns the next hidden state.
    pub fn step<'t>(&self, tape: &'t Tape, x: Var<'t>, h: Var<'t>) -> Var<'t> {
        let xh = Var::concat(&[x, h], 1);
        let rz = self.gates.forward(tape, xh).sigmoid();
        let r = rz.narrow(1, 0, self.hidden);
        let z = rz.narrow(1, self.hidden, self.hidden);
        let xrh = Var::concat(&[x, r.mul(&h)], 1);
        let c = self.candidate.forward(tape, xrh).tanh();
        // h' = z ⊙ h + (1 - z) ⊙ c
        z.mul(&h).add(&z.neg().add_scalar(1.0).mul(&c))
    }
}

/// Standard LSTM cell: `[B, in] × ([B, h], [B, h]) -> ([B, h], [B, h])`.
pub struct LstmCell {
    /// Computes `[i | f | g | o]` pre-activations from `[x | h]`.
    gates: Linear,
    hidden: usize,
}

impl LstmCell {
    /// New cell.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        input: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let gates =
            Linear::new(store, &format!("{prefix}.gates"), input + hidden, 4 * hidden, true, rng);
        LstmCell { gates, hidden }
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Zero `(h, c)` state for batch size `b`.
    pub fn zero_state<'t>(&self, tape: &'t Tape, b: usize) -> (Var<'t>, Var<'t>) {
        let z = tape.constant(Tensor::zeros(&[b, self.hidden]));
        (z, z)
    }

    /// One step: returns `(h', c')`.
    pub fn step<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        h: Var<'t>,
        c: Var<'t>,
    ) -> (Var<'t>, Var<'t>) {
        let xh = Var::concat(&[x, h], 1);
        let pre = self.gates.forward(tape, xh);
        let i = pre.narrow(1, 0, self.hidden).sigmoid();
        let f = pre.narrow(1, self.hidden, self.hidden).sigmoid();
        let g = pre.narrow(1, 2 * self.hidden, self.hidden).tanh();
        let o = pre.narrow(1, 3 * self.hidden, self.hidden).sigmoid();
        let c2 = f.mul(&c).add(&i.mul(&g));
        let h2 = o.mul(&c2.tanh());
        (h2, c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gru_step_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 5, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[4, 3]));
        let h = cell.zero_state(&tape, 4);
        let h2 = cell.step(&tape, x, h);
        assert_eq!(h2.shape(), vec![4, 5]);
        // GRU state stays bounded
        assert!(h2.value().as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_zero_update_keeps_state_bounded_over_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 4, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 2]));
        let mut h = cell.zero_state(&tape, 2);
        for _ in 0..20 {
            h = cell.step(&tape, x, h);
        }
        assert!(h.value().as_slice().iter().all(|v| v.is_finite() && v.abs() <= 1.0));
    }

    #[test]
    fn lstm_step_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 6, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        let (h, c) = cell.zero_state(&tape, 2);
        let (h2, c2) = cell.step(&tape, x, h, c);
        assert_eq!(h2.shape(), vec![2, 6]);
        assert_eq!(c2.shape(), vec![2, 6]);
    }

    #[test]
    fn gru_grads_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 3, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 2]));
        let mut h = cell.zero_state(&tape, 1);
        for _ in 0..4 {
            h = cell.step(&tape, x, h);
        }
        let grads = tape.backward(h.powf(2.0).sum_all());
        store.capture_grads(&tape, &grads);
        for p in store.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
