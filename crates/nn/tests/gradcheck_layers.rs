//! Finite-difference gradient verification of every layer in the crate —
//! the composition-level complement to the per-op checks in
//! `traffic-tensor`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_nn::*;
use traffic_tensor::{init, Tape, Tensor};

/// Generic numeric-vs-analytic check for a closure over one parameter
/// store: perturbs every parameter scalar and compares the loss slope.
fn check_params(
    store: &ParamStore,
    tol: f32,
    eps: f32,
    loss_fn: impl Fn(&Tape) -> f32 + Copy,
    run: impl Fn() -> (f32, Vec<Option<Tensor>>),
) {
    let (_, grads) = run();
    for (pi, p) in store.params().iter().enumerate() {
        let g = grads[pi].as_ref().unwrap_or_else(|| panic!("no grad for {}", p.name()));
        let original = p.value();
        for j in 0..original.len().min(6) {
            // probe a handful of scalars per parameter
            let mut plus = original.clone();
            plus.make_mut()[j] += eps;
            p.set_value(plus);
            let tape = Tape::new();
            let lp = loss_fn(&tape);
            let mut minus = original.clone();
            minus.make_mut()[j] -= eps;
            p.set_value(minus);
            let tape = Tape::new();
            let lm = loss_fn(&tape);
            p.set_value(original.clone());
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = g.as_slice()[j];
            let denom = numeric.abs().max(analytic.abs()).max(1e-2);
            assert!(
                (numeric - analytic).abs() / denom < tol,
                "{} [{j}]: numeric {numeric} vs analytic {analytic}",
                p.name()
            );
            let _ = tape;
        }
    }
}

/// Boilerplate: runs `loss_fn` once with grads captured into the store.
fn run_once(store: &ParamStore, loss_fn: impl Fn(&Tape) -> traffic_tensor::Var<'_> + Copy) {
    let eval = |tape: &Tape| loss_fn(tape).value().item();
    let run = || {
        store.zero_grads();
        let tape = Tape::new();
        let loss = loss_fn(&tape);
        let v = loss.value().item();
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        let gs = store.params().iter().map(|p| p.grad()).collect();
        (v, gs)
    };
    check_params(store, 0.08, 5e-3, eval, run);
}

#[test]
fn linear_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, "l", 3, 2, true, &mut rng);
    let x = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| lin.forward(tape, tape.constant(x.clone())).powf(2.0).mean_all());
}

#[test]
fn gru_cell_gradcheck() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let cell = GruCell::new(&mut store, "g", 2, 3, &mut rng);
    let x = init::uniform(&[2, 2], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| {
        let xv = tape.constant(x.clone());
        let mut h = cell.zero_state(tape, 2);
        for _ in 0..3 {
            h = cell.step(tape, xv, h);
        }
        h.powf(2.0).sum_all()
    });
}

#[test]
fn lstm_cell_gradcheck() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "l", 2, 3, &mut rng);
    let x = init::uniform(&[2, 2], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| {
        let xv = tape.constant(x.clone());
        let (mut h, mut c) = cell.zero_state(tape, 2);
        for _ in 0..2 {
            let (h2, c2) = cell.step(tape, xv, h, c);
            h = h2;
            c = c2;
        }
        h.mul(&c).sum_all()
    });
}

#[test]
fn conv2d_gradcheck() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let conv =
        Conv2d::new(&mut store, "c", 2, 2, (1, 2), (1, 2), TemporalPadding::Causal, true, &mut rng);
    let x = init::uniform(&[1, 2, 3, 6], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| conv.forward(tape, tape.constant(x.clone())).powf(2.0).mean_all());
}

#[test]
fn layernorm_gradcheck() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let ln = LayerNorm::new(&mut store, "ln", 4);
    let x = init::uniform(&[3, 4], -2.0, 2.0, &mut rng);
    run_once(&store, |tape| ln.forward(tape, tape.constant(x.clone())).powf(2.0).sum_all());
}

#[test]
fn cheb_conv_gradcheck() {
    let mut rng = StdRng::seed_from_u64(5);
    let lap = Tensor::from_vec(vec![0.5, -0.5, 0.0, -0.5, 1.0, -0.5, 0.0, -0.5, 0.5], &[3, 3]);
    let mut store = ParamStore::new();
    let conv = ChebConv::new(&mut store, "c", lap, 3, 2, 2, &mut rng);
    let x = init::uniform(&[2, 3, 2], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| conv.forward(tape, tape.constant(x.clone())).powf(2.0).mean_all());
}

#[test]
fn diffusion_conv_gradcheck() {
    let mut rng = StdRng::seed_from_u64(6);
    let p = Tensor::from_vec(
        vec![0.5, 0.5, 0.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.0, 0.5, 0.5],
        &[3, 3],
    );
    let mut store = ParamStore::new();
    let conv = DiffusionConv::new(&mut store, "d", vec![p], 0, 2, 2, 2, &mut rng);
    let x = init::uniform(&[2, 3, 2], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| conv.forward(tape, tape.constant(x.clone())).powf(2.0).mean_all());
}

#[test]
fn gat_gradcheck() {
    let mut rng = StdRng::seed_from_u64(7);
    let adj = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0], &[3, 3]);
    let mut store = ParamStore::new();
    let gat = GraphAttention::new(&mut store, "g", &adj, 2, 2, 2, &mut rng);
    let x = init::uniform(&[1, 3, 2], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| gat.forward(tape, tape.constant(x.clone())).powf(2.0).sum_all());
}

#[test]
fn mha_gradcheck() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "m", 4, 2, &mut rng);
    let x = init::uniform(&[2, 3, 4], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| {
        let xv = tape.constant(x.clone());
        mha.forward(tape, xv, xv).powf(2.0).mean_all()
    });
}

#[test]
fn gated_temporal_conv_gradcheck() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let g = GatedTemporalConv::new(&mut store, "g", 2, 2, 2, 1, TemporalPadding::Causal, &mut rng);
    let x = init::uniform(&[1, 2, 2, 5], -1.0, 1.0, &mut rng);
    run_once(&store, |tape| g.forward(tape, tape.constant(x.clone())).powf(2.0).sum_all());
}
