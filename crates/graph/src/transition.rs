//! Random-walk transition matrices for diffusion convolutions (DCRNN,
//! Graph-WaveNet): forward `D_O⁻¹ W` and backward `D_I⁻¹ Wᵀ`.

use traffic_tensor::{Propagator, Tensor};

use crate::adjacency::row_normalize;

/// Forward random-walk transition `P_f = D_O⁻¹ W`.
pub fn forward_transition(adj: &Tensor) -> Tensor {
    row_normalize(adj)
}

/// Backward random-walk transition `P_b = D_I⁻¹ Wᵀ`.
pub fn backward_transition(adj: &Tensor) -> Tensor {
    row_normalize(&adj.t())
}

/// The `(forward, backward)` pair used as diffusion supports.
pub fn diffusion_supports(adj: &Tensor) -> Vec<Tensor> {
    vec![forward_transition(adj), backward_transition(adj)]
}

/// [`diffusion_supports`] packaged as [`Propagator`]s: row-normalising
/// preserves the adjacency's sparsity pattern, so thresholded road
/// graphs get the CSR spmm path in every diffusion step.
pub fn diffusion_support_propagators(adj: &Tensor) -> Vec<Propagator> {
    diffusion_supports(adj).into_iter().map(Propagator::from_matrix).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asym() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 0.0, 0.0, 1.0, 1.0, 4.0, 0.0, 1.0], &[3, 3])
    }

    #[test]
    fn forward_rows_stochastic() {
        let p = forward_transition(&asym());
        for i in 0..3 {
            let s: f32 = (0..3).map(|j| p.at(&[i, j])).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_is_forward_of_transpose() {
        let a = asym();
        assert_eq!(backward_transition(&a), forward_transition(&a.t()));
    }

    #[test]
    fn supports_pair() {
        let s = diffusion_supports(&asym());
        assert_eq!(s.len(), 2);
        assert_ne!(s[0], s[1]); // direction matters for asymmetric graphs
    }

    #[test]
    fn propagators_match_dense_supports() {
        // A thresholded corridor graph is band-sparse, so both supports
        // should take the CSR path — and still apply identically.
        let n = 24;
        let mut a = Tensor::zeros(&[n, n]);
        {
            let buf = a.make_mut();
            for i in 0..n {
                buf[i * n + i] = 1.0;
                if i + 1 < n {
                    buf[i * n + i + 1] = 0.6;
                    buf[(i + 1) * n + i] = 0.4;
                }
            }
        }
        let dense = diffusion_supports(&a);
        let props = diffusion_support_propagators(&a);
        assert_eq!(props.len(), dense.len());
        let x = Tensor::arange(n * 3).reshape(&[n, 3]).mul_scalar(0.05);
        for (p, d) in props.iter().zip(&dense) {
            assert!(p.is_sparse(), "band graph should pick CSR");
            let got = p.apply_tensor(&x);
            let want = d.matmul(&x);
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-5, "{g} vs {w}");
            }
        }
    }
}
