//! Table III regenerator: training time / epoch, inference time, and
//! parameter count per model on (simulated) METR-LA. Prints the measured
//! table once, then criterion-times the two kernels per model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use traffic_bench::{bench_scale, report_scale};
use traffic_core::{
    computation_time_on, eval_split, predict, prepare_experiment, render_table3, train,
    train_model, TrainConfig,
};
use traffic_models::ALL_MODELS;

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("table3_computation_time");
    // One-shot measured Table III.
    let report = report_scale();
    let exp = prepare_experiment("METR-LA", &report, 42);
    let rows = computation_time_on(&exp, &ALL_MODELS, &report);
    println!("\n== Table III (measured, reduced scale) ==\n{}", render_table3(&rows));

    // Criterion kernels at smoke scale.
    let scale = bench_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);

    let mut group = c.benchmark_group("table3/train_epoch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &name in &ALL_MODELS {
        let (model, _) = train_model(name, &exp, &scale, 1);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: scale.batch_size,
            max_batches_per_epoch: Some(2),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| train(model.as_ref(), &exp.data, &cfg));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table3/inference");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &name in &ALL_MODELS {
        let (model, _) = train_model(name, &exp, &scale, 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
