//! Zero-allocation gate for the live-telemetry hot path: with no
//! server and no watchdog attached (the default), the per-step
//! [`traffic_obs::live::heartbeat`] must be exactly one relaxed atomic
//! load — no allocations, no stores. With a tracker attached it may
//! store progress but must still never allocate. Same counting-
//! allocator idiom as `profile_alloc.rs`; one `#[test]` because the
//! counter is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static A: Counting = Counting;

use traffic_obs::live;

#[test]
fn heartbeat_is_allocation_free() {
    // Warm the telemetry clock (lazy OnceLock) outside the window.
    let _ = traffic_obs::elapsed_ns();

    // Server off, watchdog off: one relaxed load per call, nothing else
    // — verified indirectly here (no allocations, no progress stored)
    // and directly by the progress assertions below.
    let before = ALLOCS.load(Ordering::Relaxed);
    for step in 0..100_000usize {
        live::heartbeat(step / 1000, step);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "untracked heartbeat must not allocate");
    assert_eq!(live::progress(), (0, 0), "untracked heartbeat must not even store");
    assert_eq!(live::last_step_age(), None);

    // Tracker on (what a live server or armed watchdog does): progress
    // flows, still allocation-free.
    live::reset_progress();
    struct Tracked;
    impl Drop for Tracked {
        fn drop(&mut self) {
            traffic_obs::watch::disarm();
        }
    }
    traffic_obs::watch::arm(vec![]);
    let _t = Tracked;
    let before = ALLOCS.load(Ordering::Relaxed);
    for step in 0..100_000usize {
        live::heartbeat(step / 1000, step);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "tracked heartbeat must not allocate");
    assert_eq!(live::progress(), (99, 99_999));
    assert!(live::last_step_age().is_some());
    live::reset_progress();
}
