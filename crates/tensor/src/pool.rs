//! Persistent zero-dependency worker pool shared by every tensor kernel.
//!
//! The seed engine spawned fresh `std::thread::scope` threads on every
//! batched matmul, paying thread start-up (~10 µs each) per call and
//! leaving batch-1 graph-conv products — the dominant cost of the
//! DCRNN/STGCN/Graph-WaveNet forward passes — entirely serial. This
//! module replaces that with a lazy global pool:
//!
//! - sized from `TRAFFIC_THREADS` (env) or `available_parallelism`;
//! - scoped [`parallel_for`] / [`parallel_chunks_mut`] /
//!   [`parallel_ranges_mut`] APIs that block until every task finished,
//!   so closures may safely borrow caller-local data;
//! - deterministic by construction: tasks own disjoint output ranges
//!   and never split a reduction, so results are bit-identical at any
//!   thread count (see the STGCN determinism test in `tests/`);
//! - observable: `compute/pool_tasks` (counter) and
//!   `compute/pool_queue_depth` (gauge) in the `traffic-obs` registry.
//!
//! Nested calls (a parallel kernel invoked from inside a pool task) run
//! inline on the calling task's thread, so composite ops cannot
//! deadlock the pool.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Break work into at most this many tasks per participating thread;
/// a little oversubscription smooths uneven task costs.
const TASKS_PER_THREAD: usize = 2;

// ---------------------------------------------------------------------
// Latch: completion barrier shared by one dispatch
// ---------------------------------------------------------------------

struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(tasks: usize) -> Arc<Latch> {
        Arc::new(Latch {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    /// Marks one task finished. The counter lives inside the mutex so a
    /// waiter can never observe zero and free the latch while a
    /// completer still touches it.
    fn complete(&self) {
        let mut left = self.remaining.lock().expect("pool latch poisoned");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("pool latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("pool latch poisoned");
        }
    }
}

// ---------------------------------------------------------------------
// Jobs and the shared queue
// ---------------------------------------------------------------------

/// One index range of a dispatch. `body` points at the caller's closure;
/// the caller blocks on `latch` before returning, which keeps the
/// borrow alive for as long as any job can run (see SAFETY below).
struct Job {
    body: *const (dyn Fn(Range<usize>) + Sync),
    range: Range<usize>,
    latch: Arc<Latch>,
}

// SAFETY: the closure behind `body` is `Sync` (shared execution from
// many threads is fine) and outlives the job because `parallel_for`
// waits on `latch` — which every job completes, panic or not — before
// the borrow ends.
unsafe impl Send for Job {}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Worker threads plus the calling thread.
    threads: usize,
}

fn run_job(job: Job) {
    metrics().tasks.inc();
    // One trace-event per task: with per-thread lanes in the Chrome
    // trace, gaps between `pool/task` blocks are queue stalls.
    let _prof = traffic_obs::profile::op("pool", "task");
    let body = job.body;
    // Propagate panics to the dispatching thread instead of aborting a
    // detached worker; the latch must complete regardless.
    let result = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: see `Job` — the closure outlives the job.
        (unsafe { &*body })(job.range.clone())
    }));
    if result.is_err() {
        job.latch.panicked.store(true, Ordering::Release);
    }
    job.latch.complete();
}

fn worker_loop(shared: Arc<Shared>) {
    IN_TASK.with(|f| f.set(true)); // nested dispatch from a worker runs inline
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    metrics().queue_depth.set(q.len() as f64);
                    break job;
                }
                q = shared.work_ready.wait(q).expect("pool queue poisoned");
            }
        };
        run_job(job);
    }
}

// ---------------------------------------------------------------------
// Global pool state
// ---------------------------------------------------------------------

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// True while this thread is executing a pool task (worker threads
    /// permanently; dispatching threads while helping). Nested
    /// parallel ops then run inline instead of re-entering the queue.
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Per-thread cap on threads a dispatch from this thread may use
    /// (`usize::MAX` = uncapped). Scoped via [`ThreadCapGuard`]; being
    /// thread-local is what lets the experiment scheduler give each of
    /// its job threads a private core group without the old
    /// process-global `set_thread_cap` races.
    static LOCAL_CAP: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

struct PoolMetrics {
    tasks: &'static traffic_obs::Counter,
    queue_depth: &'static traffic_obs::Gauge,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        tasks: traffic_obs::counter("compute/pool_tasks"),
        queue_depth: traffic_obs::gauge("compute/pool_queue_depth"),
    })
}

fn configured_threads() -> usize {
    std::env::var("TRAFFIC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let shared =
            Arc::new(Shared { queue: Mutex::new(VecDeque::new()), work_ready: Condvar::new() });
        for i in 0..threads.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("traffic-compute-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, threads }
    })
}

/// Threads the pool was built with (`TRAFFIC_THREADS` or hardware).
pub fn num_threads() -> usize {
    pool().threads
}

/// Scoped, per-thread cap on the threads a dispatch may use. Replaces
/// the old process-global `set_thread_cap`, whose set/reset pairs raced
/// across concurrent callers and leaked caps on early return.
///
/// While the guard is alive, every [`parallel_for`] issued *from this
/// thread* fans out to at most `cap` threads (`1` forces inline serial
/// execution); drop restores the enclosing cap. Nesting only shrinks:
/// an inner guard is clamped to the enclosing cap, so a scheduler core
/// group created inside a user cap can never exceed the user cap. The
/// pool workers stay alive either way; this only limits task fan-out.
///
/// The guard is `!Send` — it must be dropped on the thread that
/// created it.
#[must_use = "the cap is restored when the guard drops"]
pub struct ThreadCapGuard {
    prev: usize,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ThreadCapGuard {
    /// Caps dispatch fan-out from the current thread at
    /// `min(cap.max(1), enclosing cap)` until drop.
    pub fn new(cap: usize) -> Self {
        let prev = LOCAL_CAP.with(|c| c.get());
        LOCAL_CAP.with(|c| c.set(cap.max(1).min(prev)));
        ThreadCapGuard { prev, _not_send: std::marker::PhantomData }
    }
}

impl Drop for ThreadCapGuard {
    fn drop(&mut self) {
        LOCAL_CAP.with(|c| c.set(self.prev));
    }
}

/// The cap in effect on the current thread (`usize::MAX` when
/// uncapped). The experiment scheduler reads this to clamp the core
/// groups it hands its job threads under a caller's enclosing cap.
pub fn current_cap() -> usize {
    LOCAL_CAP.with(|c| c.get())
}

/// Current effective parallelism: pool width limited by this thread's
/// scoped cap.
pub fn effective_threads() -> usize {
    num_threads().min(current_cap())
}

/// Spins the pool up (thread creation, first-touch of queue memory) so
/// the cost is not charged to the first span-timed kernel. Used by the
/// Table III harness before any measured region.
pub fn warmup() {
    let threads = num_threads();
    if threads > 1 {
        // Touch every worker with a trivial dispatch.
        parallel_for(threads * TASKS_PER_THREAD, 1, |r| {
            std::hint::black_box(r.len());
        });
    }
}

// ---------------------------------------------------------------------
// Dispatch APIs
// ---------------------------------------------------------------------

/// Runs `body` over `0..n`, split into disjoint sub-ranges executed
/// across the pool. Blocks until every range completed. `grain` is the
/// minimum range length worth a task; when `n <= grain`, the cap is 1,
/// or the caller is already inside a pool task, `body(0..n)` runs
/// inline.
///
/// Determinism: ranges are disjoint, so as long as `body` writes only
/// to locations indexed by its range the result is independent of
/// thread count and scheduling order.
pub fn parallel_for(n: usize, grain: usize, body: impl Fn(Range<usize>) + Sync) {
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let threads = effective_threads();
    let max_tasks = n.div_ceil(grain);
    if threads <= 1 || max_tasks <= 1 || IN_TASK.with(|f| f.get()) {
        body(0..n);
        return;
    }
    let tasks = max_tasks.min(threads * TASKS_PER_THREAD);
    let chunk = n.div_ceil(tasks);
    let tasks = n.div_ceil(chunk); // re-derive so the last chunk is non-empty
    let latch = Latch::new(tasks);
    let body_ref: &(dyn Fn(Range<usize>) + Sync) = &body;
    // SAFETY: we erase the borrow's lifetime to enqueue it; `latch.wait()`
    // below does not return until every job (each of which completes the
    // latch even on panic) has finished with the pointer.
    let body_ptr: *const (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(body_ref) };
    let shared = &pool().shared;
    {
        let mut q = shared.queue.lock().expect("pool queue poisoned");
        for t in 0..tasks {
            let lo = t * chunk;
            let hi = (lo + chunk).min(n);
            q.push_back(Job { body: body_ptr, range: lo..hi, latch: Arc::clone(&latch) });
        }
        metrics().queue_depth.set(q.len() as f64);
        shared.work_ready.notify_all();
    }
    // Help drain the queue instead of idling; mark the thread as inside
    // a task so anything `body` dispatches runs inline.
    IN_TASK.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            let job = q.pop_front();
            if job.is_some() {
                metrics().queue_depth.set(q.len() as f64);
            }
            job
        };
        match job {
            Some(job) => run_job(job),
            None => break,
        }
    }
    IN_TASK.with(|f| f.set(false));
    latch.wait();
    if latch.panicked.load(Ordering::Acquire) {
        panic!("a traffic-compute pool task panicked");
    }
}

/// Splits `data` into consecutive chunks of `chunk_len` elements and
/// runs `body(chunk_index, chunk)` for each across the pool. The final
/// chunk may be shorter. Chunks are disjoint `&mut` borrows, so this is
/// a safe fork-join over an output buffer.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk_len = chunk_len.max(1);
    let n_chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(n_chunks, 1, move |range| {
        let base = base; // capture the Sync wrapper, not the raw field
        for ci in range {
            let start = ci * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk indices are disjoint across all tasks and
            // `data` is exclusively borrowed for the whole dispatch.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            body(ci, chunk);
        }
    });
}

/// Like [`parallel_chunks_mut`] but over caller-supplied ranges, which
/// must be sorted and non-overlapping (checked). Used by the batched
/// matmul to hand each task a `(batch, row-block)` slice of the output.
pub fn parallel_ranges_mut<T: Send>(
    data: &mut [T],
    ranges: &[Range<usize>],
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    let mut prev_end = 0usize;
    for r in ranges {
        assert!(
            r.start >= prev_end && r.end <= len,
            "parallel_ranges_mut: overlapping or out-of-bounds range {r:?}"
        );
        prev_end = r.end;
    }
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(ranges.len(), 1, move |task_range| {
        let base = base; // capture the Sync wrapper, not the raw field
        for ri in task_range {
            let r = ranges[ri].clone();
            // SAFETY: ranges verified disjoint and in-bounds above;
            // `data` is exclusively borrowed for the whole dispatch.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.0.add(r.start), r.end - r.start) };
            body(ri, chunk);
        }
    });
}

/// Raw pointer wrapper so disjoint sub-slices can cross task
/// boundaries. Soundness is argued at each use site.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_007;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 16, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut data = vec![0u32; 1000];
        parallel_chunks_mut(&mut data, 64, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u32 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 64) as u32 + 1);
        }
    }

    #[test]
    fn ranges_mut_respects_bounds() {
        let mut data = vec![0u8; 100];
        let ranges = vec![0..10, 10..55, 60..100];
        parallel_ranges_mut(&mut data, &ranges, |ri, chunk| {
            for v in chunk.iter_mut() {
                *v = ri as u8 + 1;
            }
        });
        assert!(data[..10].iter().all(|&v| v == 1));
        assert!(data[10..55].iter().all(|&v| v == 2));
        assert!(data[55..60].iter().all(|&v| v == 0)); // gap untouched
        assert!(data[60..].iter().all(|&v| v == 3));
    }

    #[test]
    fn worker_panic_propagates() {
        if effective_threads() <= 1 {
            return; // degenerate 1-core host: nothing crosses a thread
        }
        let result = std::panic::catch_unwind(|| {
            parallel_for(1024, 1, |r| {
                if r.contains(&500) {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "panic inside a task must reach the dispatcher");
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let n = 256;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(4, 1, |outer| {
            for _ in outer {
                parallel_for(n, 1, |inner| {
                    for i in inner {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 4));
    }

    #[test]
    fn cap_one_is_serial_inline() {
        let _cap = ThreadCapGuard::new(1);
        let tid = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        parallel_for(100, 1, |r| {
            assert_eq!(std::thread::current().id(), tid);
            seen.lock().unwrap().push(r);
        });
        assert_eq!(seen.into_inner().unwrap(), vec![0..100]);
    }

    #[test]
    fn cap_guard_restores_on_drop() {
        let before = current_cap();
        {
            let _cap = ThreadCapGuard::new(3);
            assert_eq!(current_cap(), 3);
        }
        assert_eq!(current_cap(), before);
    }

    #[test]
    fn nested_caps_only_shrink() {
        let _outer = ThreadCapGuard::new(2);
        assert_eq!(current_cap(), 2);
        {
            // A wider inner cap is clamped to the enclosing one…
            let _inner = ThreadCapGuard::new(8);
            assert_eq!(current_cap(), 2);
        }
        {
            // …while a narrower one takes effect and restores on drop.
            let _inner = ThreadCapGuard::new(1);
            assert_eq!(current_cap(), 1);
        }
        assert_eq!(current_cap(), 2);
    }

    #[test]
    fn cap_is_thread_local() {
        let _cap = ThreadCapGuard::new(1);
        assert_eq!(current_cap(), 1);
        std::thread::spawn(|| {
            assert_eq!(current_cap(), usize::MAX, "caps must not leak across threads");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let _cap = ThreadCapGuard::new(0);
        assert_eq!(current_cap(), 1);
    }
}
