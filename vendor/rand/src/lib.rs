//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without network access to
//! crates.io, so the handful of `rand` features it relies on are
//! reimplemented here behind the same paths and signatures:
//!
//! - [`rngs::StdRng`] / [`rngs::SmallRng`]: xoshiro256++ seeded via
//!   SplitMix64 (`seed_from_u64`), deterministic across runs/platforms
//! - [`Rng`]: `gen`, `gen_range`, `gen_bool` for the numeric types the
//!   workspace samples
//! - [`seq::SliceRandom`]: Fisher–Yates `shuffle` and `choose`
//! - [`distributions`]: `Uniform`/`Distribution` for float/int ranges
//!
//! The streams differ from upstream `rand` (no compatibility with its
//! block cipher StdRng is attempted); all workspace seeds produce
//! self-consistent, reproducible streams, which is all the experiments
//! require.

pub mod distributions;
pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next full-entropy 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open / closed ranges.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range_single<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range_single<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range_single<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_single(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_single(lo, hi, true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the type's natural domain ([0, 1) for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Convenience re-export (upstream `rand::prelude`).
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // the zero fixed point is nudged, not frozen
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(1..=6usize);
            assert!((1..=6).contains(&j));
        }
    }

    #[test]
    fn unit_float_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
