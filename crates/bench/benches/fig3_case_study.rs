//! Fig 3 regenerator: the smooth-vs-volatile road case study, plus timing
//! of the per-road trace assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use traffic_bench::{bench_scale, report_scale};
use traffic_core::{case_study_on, render_fig3};

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("fig3_case_study");
    let cs = case_study_on("PeMS-BAY", "Graph-WaveNet", &report_scale());
    println!("\n== Fig 3 (reduced regeneration) ==\n{}", render_fig3(&cs));
    println!(
        "MAE ratio volatile/smooth: {:.2}× (paper example: 4.5×)\n",
        cs.volatile.mae / cs.smooth.mae
    );

    let scale = bench_scale();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("case_study_pipeline", |b| {
        b.iter(|| case_study_on("PeMS-BAY", "STG2Seq", &scale));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
