//! Extension experiment: classical baselines (persistence, historical
//! average) vs a deep model, making the Fig 1 error magnitudes
//! interpretable.
//!
//! ```text
//! cargo run --release --example baselines [-- --scale smoke|quick]
//! ```

use traffic_suite::core::{eval_split, predict, prepare_experiment, train_model};
use traffic_suite::data::STEPS_PER_DAY;
use traffic_suite::metrics::{evaluate_horizons, PAPER_HORIZONS, PAPER_HORIZON_LABELS};
use traffic_suite::models::{HistoricalAverage, LastValue, TrafficModel};
use traffic_suite::scale_from_args;

fn report(
    name: &str,
    model: &dyn TrafficModel,
    exp: &traffic_suite::core::PreparedExperiment,
    scale: &traffic_suite::core::ExperimentScale,
) {
    let test = eval_split(&exp.data.test, scale);
    let pred = predict(model, &test, &exp.data.scaler, scale.batch_size);
    let ms = evaluate_horizons(&pred, &test.y_raw, &PAPER_HORIZONS, None);
    println!("\n{name} ({} params)", model.num_params());
    for (label, m) in PAPER_HORIZON_LABELS.iter().zip(&ms) {
        println!("  {label}: {m}");
    }
}

fn main() {
    let scale = scale_from_args();
    println!("== Baselines vs deep models (METR-LA) ==");
    let exp = prepare_experiment("METR-LA", &scale, 42);

    let last = LastValue::new(12);
    report("LastValue (persistence)", &last, &exp, &scale);

    let split = traffic_suite::data::paper_split(exp.dataset.num_steps());
    let ha = HistoricalAverage::fit(
        &exp.dataset.values,
        split.train.end,
        exp.data.scaler.mean,
        exp.data.scaler.std,
        STEPS_PER_DAY,
        12,
    );
    report("HistoricalAverage", &ha, &exp, &scale);

    let (gwn, _) = train_model("Graph-WaveNet", &exp, &scale, 1);
    report("Graph-WaveNet (trained)", gwn.as_ref(), &exp, &scale);
    println!("\nA deep model should beat persistence at every horizon and the");
    println!("historical average especially at short horizons.");
}
