//! Structured telemetry events and their JSONL encoding.

use std::time::Duration;

/// A scalar field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Floating-point number (non-finite encodes as JSON `null`).
    F64(f64),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// Conversion into [`Value`] used by [`Event::with`] and span fields.
pub trait IntoValue {
    /// Converts self.
    fn into_value(self) -> Value;
}

macro_rules! impl_into_value {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl IntoValue for $t {
            fn into_value(self) -> Value { Value::$variant(self as $cast) }
        }
        impl From<$t> for Value {
            fn from(v: $t) -> Value { v.into_value() }
        }
    )*};
}
impl_into_value! {
    f32 => F64 as f64, f64 => F64 as f64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Str(self.to_string())
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::Str(self)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl IntoValue for Duration {
    fn into_value(self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}
impl From<Duration> for Value {
    fn from(v: Duration) -> Value {
        v.into_value()
    }
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

/// One telemetry event: a kind (`epoch`, `span`, `run_start`, …), a
/// process-relative timestamp, and ordered key/value fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind, the JSONL `type` field.
    pub kind: String,
    /// Milliseconds since the telemetry clock started.
    pub ts_ms: f64,
    /// Ordered fields.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// New event of the given kind, stamped with the current time.
    pub fn new(kind: &str) -> Self {
        Event { kind: kind.to_string(), ts_ms: crate::elapsed_ms(), fields: Vec::new() }
    }

    /// Attaches one field (builder style).
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Reads a field back by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Encodes as one JSON object (no trailing newline):
    /// `{"type":<kind>,"ts_ms":<ts>,<fields...>}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"type\":");
        push_json_str(&mut out, &self.kind);
        out.push_str(",\"ts_ms\":");
        push_json_num(&mut out, self.ts_ms);
        for (k, v) in &self.fields {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            match v {
                Value::F64(x) => push_json_num(&mut out, *x),
                Value::I64(x) => out.push_str(&x.to_string()),
                Value::U64(x) => out.push_str(&x.to_string()),
                Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
                Value::Str(s) => push_json_str(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

fn push_json_num(out: &mut String, x: f64) {
    if x.is_finite() {
        // Display for f64 is shortest-roundtrip and always valid JSON
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_all_value_kinds() {
        let e = Event::new("epoch")
            .with("model", "GMAN")
            .with("epoch", 3usize)
            .with("loss", 0.5f32)
            .with("improved", true)
            .with("delta", -2i64);
        let j = e.to_json();
        assert!(j.starts_with("{\"type\":\"epoch\",\"ts_ms\":"));
        assert!(j.contains("\"model\":\"GMAN\""));
        assert!(j.contains("\"epoch\":3"));
        assert!(j.contains("\"loss\":0.5"));
        assert!(j.contains("\"improved\":true"));
        assert!(j.contains("\"delta\":-2"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn escapes_strings_and_nan() {
        let e = Event::new("x").with("s", "a\"b\\c\nd").with("bad", f64::NAN);
        let j = e.to_json();
        assert!(j.contains(r#""s":"a\"b\\c\nd""#));
        assert!(j.contains("\"bad\":null"));
    }

    #[test]
    fn get_reads_back() {
        let e = Event::new("x").with("k", 7u64);
        assert_eq!(e.get("k"), Some(&Value::U64(7)));
        assert_eq!(e.get("missing"), None);
    }
}
