//! # traffic-nn
//!
//! Neural-network building blocks on top of [`traffic_tensor`]: parameter
//! management, layers (linear / conv / recurrent / attention / graph
//! convolutions), masked regression losses, and optimizers.
//!
//! Every layer follows the same conventions:
//! - construction registers parameters in a caller-supplied [`ParamStore`]
//!   under a dotted name prefix, with an explicit RNG for reproducibility;
//! - `forward` takes the active [`traffic_tensor::Tape`] plus input
//!   [`traffic_tensor::Var`]s and returns a `Var` on the same tape.

pub mod attention;
pub mod checkpoint;
pub mod conv;
pub mod embedding;
pub mod graphconv;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod param;
pub mod rnn;
pub mod tnn2;

pub use attention::{scaled_dot_attention, MultiHeadAttention};
pub use checkpoint::{load_weights, save_weights, CheckpointError};
pub use conv::{Conv2d, GatedTemporalConv, TemporalPadding};
pub use embedding::Embedding;
pub use graphconv::{ChebConv, DenseGraphConv, DiffusionConv, GraphAttention};
pub use linear::Linear;
pub use norm::{BatchNorm2d, LayerNorm};
pub use optim::{Adam, AdamState, Sgd, StepDecay};
pub use param::{GroupHealth, Param, ParamStore, Parameter};
pub use rnn::{GruCell, LstmCell};
