//! Synthetic PeMS-like traffic simulator.
//!
//! This is the substitution for the proprietary PeMS downloads (DESIGN.md
//! §2). The generative process explicitly contains every phenomenon the
//! paper's evaluation relies on:
//!
//! - **daily periodicity** — morning / evening commute demand bumps;
//! - **weekday/weekend structure** — weekends get one flat midday bump;
//! - **spatial correlation** — per-sensor congestion sensitivity is
//!   smoothed over the road graph, and congestion propagates to downstream
//!   neighbours with a one-step lag;
//! - **non-recurring incidents** — random abrupt speed collapses with
//!   exponential recovery (the source of "difficult intervals");
//! - **sensor noise and missing data** — Gaussian noise plus zero-runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traffic_graph::{freeway_corridor, metro_mix, RoadNetwork};
use traffic_tensor::Tensor;

use crate::catalog::{DatasetInfo, Task, Topology};
use crate::dataset::{TrafficDataset, STEPS_PER_DAY};

/// Everything needed to generate one dataset deterministically.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Dataset name carried into the output.
    pub name: String,
    /// Speed or flow.
    pub task: Task,
    /// Network topology.
    pub topology: Topology,
    /// Number of sensors.
    pub nodes: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Whether weekends are included.
    pub includes_weekends: bool,
    /// Expected incidents per sensor per day.
    pub incident_rate: f64,
    /// Probability per (step, sensor) of starting a missing-data run.
    pub missing_rate: f64,
    /// Observation noise, as a fraction of the signal scale.
    pub noise_level: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// Sensible defaults for a named custom dataset.
    pub fn new(name: impl Into<String>, task: Task, nodes: usize, days: usize) -> Self {
        SimConfig {
            name: name.into(),
            task,
            topology: Topology::Corridor,
            nodes,
            days,
            includes_weekends: true,
            incident_rate: 0.12,
            missing_rate: 0.0015,
            noise_level: 0.03,
            seed: 42,
        }
    }

    /// Builds the config for one of the paper's Table I datasets, scaled by
    /// `scale ∈ (0, 1]` in both node count and day count (CPU budgets;
    /// `scale = 1.0` reproduces the full Table I dimensions).
    pub fn for_dataset(info: &DatasetInfo, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let nodes = ((info.nodes as f64 * scale).round() as usize).max(12);
        let days = ((info.days as f64 * scale).round() as usize).max(4);
        SimConfig {
            name: info.name.to_string(),
            task: info.task,
            topology: info.topology,
            nodes,
            days,
            includes_weekends: info.includes_weekends,
            incident_rate: 0.12,
            missing_rate: 0.0015,
            noise_level: 0.03,
            seed: 42 ^ (info.nodes as u64).wrapping_mul(0x9e37_79b9),
        }
    }

    /// Overrides the seed (for repeat-run experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Commute demand in `[0, 1]` at a given step of the day.
fn demand_profile(step_of_day: usize, weekend: bool, rng_day_jitter: (f32, f32)) -> f32 {
    let hour = step_of_day as f32 * 24.0 / STEPS_PER_DAY as f32;
    let bump = |center: f32, width: f32, amp: f32| {
        amp * (-(hour - center) * (hour - center) / (2.0 * width * width)).exp()
    };
    let (jm, je) = rng_day_jitter;
    if weekend {
        0.08 + bump(13.0, 3.0, 0.45)
    } else {
        0.08 + bump(8.0 + 0.3 * jm, 1.4, 0.85 + 0.15 * jm)
            + bump(17.5 + 0.3 * je, 1.9, 0.95 + 0.15 * je)
    }
}

/// Smooths per-node values over the graph (`rounds` averaging passes with
/// neighbours), producing spatially correlated node attributes.
fn smooth_over_graph(net: &RoadNetwork, values: &mut [f32], rounds: usize) {
    let n = net.num_nodes();
    let mut neighbours = vec![Vec::new(); n];
    for e in net.edges() {
        neighbours[e.from].push(e.to);
        neighbours[e.to].push(e.from);
    }
    for _ in 0..rounds {
        let prev = values.to_vec();
        for i in 0..n {
            if neighbours[i].is_empty() {
                continue;
            }
            let nb: f32 =
                neighbours[i].iter().map(|&j| prev[j]).sum::<f32>() / neighbours[i].len() as f32;
            values[i] = 0.55 * prev[i] + 0.45 * nb;
        }
    }
}

struct Incident {
    node: usize,
    start: usize,
    peak_steps: usize,
    recovery_steps: usize,
    severity: f32,
}

/// Generates the dataset described by `config`.
///
/// ```
/// use traffic_data::{simulate, SimConfig, Task};
/// let ds = simulate(&SimConfig::new("demo", Task::Speed, 12, 4));
/// assert_eq!(ds.num_nodes(), 12);
/// assert_eq!(ds.num_days(), 4);
/// // speeds stay physical
/// assert!(ds.values.max_all() <= 75.0);
/// ```
pub fn simulate(config: &SimConfig) -> TrafficDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let network = match config.topology {
        Topology::Corridor => freeway_corridor(config.nodes, 1.2, &mut rng),
        Topology::MetroMix => metro_mix(config.nodes.max(8), &mut rng),
    };
    let n = network.num_nodes();
    let total_steps = config.days * STEPS_PER_DAY;

    // Per-node static attributes, spatially smoothed.
    let mut free_flow: Vec<f32> = (0..n).map(|_| rng.gen_range(58.0..70.0)).collect();
    let mut sensitivity: Vec<f32> = (0..n).map(|_| rng.gen_range(0.35..1.0)).collect();
    let mut capacity: Vec<f32> = (0..n).map(|_| rng.gen_range(250.0..420.0)).collect();
    smooth_over_graph(&network, &mut free_flow, 2);
    smooth_over_graph(&network, &mut sensitivity, 3);
    smooth_over_graph(&network, &mut capacity, 2);

    // Upstream neighbour lists (who feeds traffic into me).
    let mut upstream = vec![Vec::new(); n];
    for e in network.edges() {
        upstream[e.to].push(e.from);
    }

    // Incident schedule.
    let mut incidents: Vec<Incident> = Vec::new();
    for day in 0..config.days {
        for node in 0..n {
            if rng.gen_bool(config.incident_rate.min(1.0)) {
                let start = day * STEPS_PER_DAY + rng.gen_range(0..STEPS_PER_DAY);
                incidents.push(Incident {
                    node,
                    start,
                    peak_steps: rng.gen_range(2..7),
                    recovery_steps: rng.gen_range(6..18),
                    severity: rng.gen_range(0.6..1.0),
                });
            }
        }
    }
    // Incident intensity per (step, node), additive.
    let mut incident_level = vec![0.0f32; total_steps * n];
    for inc in &incidents {
        // Sharp onset over 1-2 steps, hold, exponential recovery.
        let onset = 2usize;
        let end = (inc.start + onset + inc.peak_steps + 4 * inc.recovery_steps).min(total_steps);
        for t in inc.start..end {
            let rel = t - inc.start;
            let level = if rel < onset {
                inc.severity * (rel as f32 + 1.0) / onset as f32
            } else if rel < onset + inc.peak_steps {
                inc.severity
            } else {
                let r = (rel - onset - inc.peak_steps) as f32;
                inc.severity * (-r / inc.recovery_steps as f32).exp()
            };
            incident_level[t * n + inc.node] += level;
        }
    }

    // Day-level demand jitter (shared across nodes — regional weather etc.).
    let day_jitter: Vec<(f32, f32)> =
        (0..config.days).map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();

    let mut congestion_prev = vec![0.0f32; n];
    let mut values = vec![0.0f32; total_steps * n];
    let weekend_of_day = |day: usize| config.includes_weekends && matches!(day % 7, 5 | 6);

    for t in 0..total_steps {
        let day = t / STEPS_PER_DAY;
        let sod = t % STEPS_PER_DAY;
        let demand = demand_profile(sod, weekend_of_day(day), day_jitter[day]);
        let mut congestion = vec![0.0f32; n];
        for i in 0..n {
            let up = if upstream[i].is_empty() {
                0.0
            } else {
                upstream[i].iter().map(|&j| congestion_prev[j]).sum::<f32>()
                    / upstream[i].len() as f32
            };
            let c =
                (sensitivity[i] * demand + 0.35 * up + incident_level[t * n + i]).clamp(0.0, 1.4);
            congestion[i] = c;
            let v = match config.task {
                Task::Speed => {
                    let drop = 0.72 * (c / 1.4);
                    let noise = config.noise_level
                        * free_flow[i]
                        * (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0))
                        / 2.0;
                    (free_flow[i] * (1.0 - drop) + noise).clamp(3.0, 75.0)
                }
                Task::Flow => {
                    // Fundamental-diagram flavour: flow rises with demand,
                    // collapses slightly past capacity (c > 1).
                    let util = if c <= 1.0 { c } else { 1.0 - 0.35 * (c - 1.0) };
                    let base = 0.06 * capacity[i];
                    let noise = config.noise_level
                        * capacity[i]
                        * (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0))
                        / 2.0;
                    (base + capacity[i] * util.max(0.0) * 0.9 + noise).max(1.0)
                }
            };
            values[t * n + i] = v;
        }
        congestion_prev = congestion;
    }

    // Missing data: zero-runs.
    let mut t = 0;
    while t < total_steps {
        for i in 0..n {
            if rng.gen_bool(config.missing_rate.min(1.0)) {
                let run = rng.gen_range(1..=6usize);
                for dt in 0..run.min(total_steps - t) {
                    values[(t + dt) * n + i] = 0.0;
                }
            }
        }
        t += 1;
    }

    TrafficDataset {
        name: config.name.clone(),
        task: config.task,
        network,
        values: Tensor::from_vec(values, &[total_steps, n]),
        includes_weekends: config.includes_weekends,
    }
}

/// Injects a controlled incident into an existing dataset: an abrupt
/// speed collapse (or flow breakdown) at `node` starting at step `start`,
/// holding for `peak_steps` and recovering exponentially. Used for
/// failure-injection tests and controlled difficult-interval case studies.
pub fn inject_incident(
    dataset: &mut TrafficDataset,
    node: usize,
    start: usize,
    peak_steps: usize,
    recovery_steps: usize,
    severity: f32,
) {
    assert!(node < dataset.num_nodes(), "node {node} out of range");
    assert!(start < dataset.num_steps(), "start {start} out of range");
    assert!((0.0..=1.0).contains(&severity), "severity must be in [0, 1]");
    let n = dataset.num_nodes();
    let total = dataset.num_steps();
    let onset = 2usize;
    let end = (start + onset + peak_steps + 4 * recovery_steps).min(total);
    let task = dataset.task;
    let buf = dataset.values.make_mut();
    for t in start..end {
        let rel = t - start;
        let level = if rel < onset {
            severity * (rel as f32 + 1.0) / onset as f32
        } else if rel < onset + peak_steps {
            severity
        } else {
            let r = (rel - onset - peak_steps) as f32;
            severity * (-r / recovery_steps as f32).exp()
        };
        let v = &mut buf[t * n + node];
        if *v == 0.0 {
            continue; // keep missing data missing
        }
        match task {
            Task::Speed => *v = (*v * (1.0 - 0.8 * level)).max(3.0),
            Task::Flow => *v = (*v * (1.0 - 0.6 * level)).max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::dataset_info;

    fn small_speed() -> TrafficDataset {
        simulate(&SimConfig::new("test-speed", Task::Speed, 16, 6))
    }

    fn small_flow() -> TrafficDataset {
        let mut c = SimConfig::new("test-flow", Task::Flow, 16, 6);
        c.topology = Topology::MetroMix;
        simulate(&c)
    }

    #[test]
    fn dimensions_match_config() {
        let d = small_speed();
        assert_eq!(d.num_nodes(), 16);
        assert_eq!(d.num_steps(), 6 * STEPS_PER_DAY);
    }

    #[test]
    fn speed_in_physical_range() {
        let d = small_speed();
        for &v in d.values.as_slice() {
            assert!(v == 0.0 || (3.0..=75.0).contains(&v), "speed {v} out of range");
        }
    }

    #[test]
    fn flow_positive() {
        let d = small_flow();
        assert!(d.values.as_slice().iter().all(|&v| v >= 0.0));
        assert!(d.values.max_all() > 100.0, "flow should reach triple digits");
    }

    #[test]
    fn rush_hour_slower_than_night() {
        let d = small_speed();
        // average speed at 3am vs 8am across weekdays
        let n = d.num_nodes();
        let mut night = 0.0f32;
        let mut rush = 0.0f32;
        let mut cnt = 0;
        for day in 0..d.num_days() {
            if matches!(day % 7, 5 | 6) {
                continue;
            }
            let t_night = day * STEPS_PER_DAY + 3 * 12;
            let t_rush = day * STEPS_PER_DAY + 8 * 12;
            for i in 0..n {
                night += d.values.at(&[t_night, i]);
                rush += d.values.at(&[t_rush, i]);
            }
            cnt += n;
        }
        let (night, rush) = (night / cnt as f32, rush / cnt as f32);
        assert!(rush < night * 0.85, "rush {rush} should be well below night {night}");
    }

    #[test]
    fn weekends_differ_from_weekdays() {
        let d = simulate(&SimConfig::new("wk", Task::Speed, 12, 14));
        let n = d.num_nodes();
        let morning = 8 * 12;
        let avg_at = |day: usize| -> f32 {
            (0..n).map(|i| d.values.at(&[day * STEPS_PER_DAY + morning, i])).sum::<f32>() / n as f32
        };
        // day 5 (Saturday) morning should be faster than day 0 (Monday)
        assert!(avg_at(5) > avg_at(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulate(&SimConfig::new("d", Task::Speed, 10, 4));
        let b = simulate(&SimConfig::new("d", Task::Speed, 10, 4));
        assert_eq!(a.values, b.values);
        let c = simulate(&SimConfig::new("d", Task::Speed, 10, 4).with_seed(7));
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn missing_rate_controls_zeros() {
        let mut cfg = SimConfig::new("m", Task::Speed, 10, 4);
        cfg.missing_rate = 0.0;
        let clean = simulate(&cfg);
        assert_eq!(clean.missing_fraction(), 0.0);
        cfg.missing_rate = 0.02;
        let dirty = simulate(&cfg);
        assert!(dirty.missing_fraction() > 0.01);
    }

    #[test]
    fn incidents_create_abrupt_drops() {
        let mut cfg = SimConfig::new("inc", Task::Speed, 10, 6);
        cfg.incident_rate = 1.0; // guarantee plenty
        cfg.missing_rate = 0.0;
        let with_inc = simulate(&cfg);
        cfg.incident_rate = 0.0;
        let without = simulate(&cfg);
        // Max one-step drop should be much larger with incidents.
        let max_step_drop = |d: &TrafficDataset| {
            let n = d.num_nodes();
            let mut worst = 0.0f32;
            for i in 0..n {
                for t in 1..d.num_steps() {
                    let drop = d.values.at(&[t - 1, i]) - d.values.at(&[t, i]);
                    worst = worst.max(drop);
                }
            }
            worst
        };
        assert!(max_step_drop(&with_inc) > max_step_drop(&without) + 5.0);
    }

    #[test]
    fn injected_incident_creates_local_drop() {
        let mut cfg = SimConfig::new("inj", Task::Speed, 8, 4);
        cfg.incident_rate = 0.0;
        cfg.missing_rate = 0.0;
        let mut d = simulate(&cfg);
        let before = d.values.at(&[500, 3]);
        inject_incident(&mut d, 3, 498, 4, 8, 0.9);
        let during = d.values.at(&[502, 3]);
        assert!(during < before * 0.5, "incident should halve speed: {before} -> {during}");
        // other nodes untouched
        let cfg2 = {
            let mut c = SimConfig::new("inj", Task::Speed, 8, 4);
            c.incident_rate = 0.0;
            c.missing_rate = 0.0;
            c
        };
        let clean = simulate(&cfg2);
        assert_eq!(d.values.at(&[502, 5]), clean.values.at(&[502, 5]));
        // recovery: far after the incident the series returns to normal
        assert!((d.values.at(&[600, 3]) - clean.values.at(&[600, 3])).abs() < 1e-4);
    }

    #[test]
    fn injected_incident_raises_moving_std() {
        use crate::intervals::{moving_std, PAPER_WINDOW};
        let mut cfg = SimConfig::new("inj2", Task::Speed, 6, 4);
        cfg.incident_rate = 0.0;
        cfg.missing_rate = 0.0;
        cfg.noise_level = 0.0;
        let mut d = simulate(&cfg);
        let before = moving_std(&d.node_series(2), PAPER_WINDOW);
        inject_incident(&mut d, 2, 300, 3, 6, 0.8);
        let after = moving_std(&d.node_series(2), PAPER_WINDOW);
        assert!(after.at(&[303]) > before.at(&[303]) + 1.0);
    }

    #[test]
    fn preset_scaling() {
        let info = dataset_info("METR-LA").unwrap();
        let cfg = SimConfig::for_dataset(info, 0.1);
        assert_eq!(cfg.nodes, 21);
        assert_eq!(cfg.days, 12);
        let full = SimConfig::for_dataset(info, 1.0);
        assert_eq!(full.nodes, 207);
        assert_eq!(full.days, 122);
    }

    #[test]
    fn spatial_correlation_of_neighbours() {
        // Adjacent corridor sensors should correlate more than distant ones.
        let mut cfg = SimConfig::new("corr", Task::Speed, 24, 6);
        cfg.missing_rate = 0.0;
        let d = simulate(&cfg);
        let corr = |a: usize, b: usize| -> f32 {
            let sa = d.node_series(a);
            let sb = d.node_series(b);
            let (ma, mb) = (sa.mean_all(), sb.mean_all());
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for t in 0..d.num_steps() {
                let xa = sa.at(&[t]) - ma;
                let xb = sb.at(&[t]) - mb;
                num += xa * xb;
                da += xa * xa;
                db += xb * xb;
            }
            num / (da.sqrt() * db.sqrt()).max(1e-6)
        };
        assert!(corr(5, 6) > corr(0, 23) - 0.05, "neighbours should correlate at least as much");
    }
}
