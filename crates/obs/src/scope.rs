//! Cell scopes: thread-local event tagging and per-cell sinks.
//!
//! The parallel experiment scheduler runs many sweep cells at once, and
//! the global sink table is shared by all of them — without scoping,
//! concurrent cells interleave their JSONL lines and sparklines beyond
//! repair. A [`CellScope`] fixes both halves:
//!
//! - **Tagging.** While a scope is active on a thread, every event
//!   dispatched from that thread gains a `cell` field with the scope's
//!   label, so shared sinks can tell concurrent cells apart.
//! - **Scoped sinks.** A scope may carry its own [`Sink`] (typically a
//!   [`crate::JsonlSink`] writing a per-cell manifest). Events emitted
//!   on the thread are delivered to the innermost scoped sink *and* to
//!   the global table; the scoped sink is flushed when the scope drops.
//!
//! Scopes are strictly thread-local and RAII: nothing leaks to other
//! threads (a concurrent cell never sees a neighbour's label) or past a
//! panic that unwinds through the scope. Nested scopes shadow the outer
//! label; the innermost sink wins.

use std::cell::RefCell;
use std::sync::Arc;

use crate::sink::Sink;

struct Frame {
    label: Arc<str>,
    sink: Option<Arc<dyn Sink>>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one cell scope (see module docs). `!Send`: must drop
/// on the thread that entered it.
#[must_use = "the scope ends when the guard drops"]
pub struct CellScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl CellScope {
    /// Enters a tag-only scope: events from this thread gain
    /// `cell=<label>` until drop.
    pub fn enter(label: &str) -> Self {
        Self::push(label, None)
    }

    /// Enters a scope that also routes this thread's events into `sink`
    /// (flushed on drop), in addition to the global sink table.
    pub fn enter_with_sink(label: &str, sink: Arc<dyn Sink>) -> Self {
        Self::push(label, Some(sink))
    }

    fn push(label: &str, sink: Option<Arc<dyn Sink>>) -> Self {
        STACK.with(|s| s.borrow_mut().push(Frame { label: Arc::from(label), sink }));
        CellScope { _not_send: std::marker::PhantomData }
    }
}

impl Drop for CellScope {
    fn drop(&mut self) {
        let frame = STACK.with(|s| s.borrow_mut().pop());
        if let Some(Frame { sink: Some(sink), .. }) = frame {
            sink.flush();
        }
    }
}

/// The innermost cell label active on the current thread, if any.
pub fn current_cell() -> Option<Arc<str>> {
    STACK.with(|s| s.borrow().last().map(|f| Arc::clone(&f.label)))
}

/// The innermost scoped sink active on the current thread, if any.
pub(crate) fn scoped_sink() -> Option<Arc<dyn Sink>> {
    STACK.with(|s| s.borrow().iter().rev().find_map(|f| f.sink.clone()))
}

/// True when any scope on the current thread carries a sink — part of
/// the [`crate::enabled`] fast path, so scoped-sink-only events are
/// still built.
pub(crate) fn has_scoped_sink() -> bool {
    STACK.with(|s| s.borrow().iter().any(|f| f.sink.is_some()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture {
        events: Mutex<Vec<Event>>,
        flushes: Mutex<usize>,
    }

    impl Sink for Capture {
        fn on_event(&self, event: &Event) {
            self.events.lock().unwrap().push(event.clone());
        }
        fn flush(&self) {
            *self.flushes.lock().unwrap() += 1;
        }
    }

    #[test]
    fn labels_nest_and_restore() {
        assert_eq!(current_cell(), None);
        let _a = CellScope::enter("outer");
        assert_eq!(current_cell().as_deref(), Some("outer"));
        {
            let _b = CellScope::enter("inner");
            assert_eq!(current_cell().as_deref(), Some("inner"));
        }
        assert_eq!(current_cell().as_deref(), Some("outer"));
    }

    #[test]
    fn scoped_sink_receives_tagged_events_and_flushes() {
        let cap = Arc::new(Capture::default());
        {
            let _scope = CellScope::enter_with_sink("fig1/x/y", cap.clone() as Arc<dyn Sink>);
            // No global sink is installed, yet emit_with must still fire.
            crate::emit_with(|| Event::new("epoch").with("loss", 1.0));
        }
        let events = cap.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        match events[0].get("cell") {
            Some(crate::Value::Str(s)) => assert_eq!(s, "fig1/x/y"),
            other => panic!("missing cell tag: {other:?}"),
        }
        assert!(*cap.flushes.lock().unwrap() >= 1, "scope drop must flush the sink");
    }

    #[test]
    fn scope_is_thread_local() {
        let _scope = CellScope::enter("here");
        std::thread::spawn(|| assert_eq!(current_cell(), None)).join().unwrap();
    }
}
