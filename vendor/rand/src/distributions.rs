//! Distribution traits (`rand::distributions` subset).

use std::ops::Range;

use crate::{RngCore, SampleRange};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform over `[low, high)`; panics when the range is empty.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with empty range");
        Uniform { low, high }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.low..self.high).sample_single(rng)
    }
}
