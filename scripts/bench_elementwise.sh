#!/usr/bin/env bash
# Regenerates BENCH_elementwise.json at the workspace root: scalar vs
# AVX2 for every SIMD kernel (tanh, sigmoid, fused gated fwd/bwd, add,
# axpy, fused Adam update, horizontal sum) at the METR-LA per-layer
# elementwise size 207×64.
#
# Usage:
#   scripts/bench_elementwise.sh            # full run (stable best-of timings)
#   BENCH_SMOKE=1 scripts/bench_elementwise.sh   # fast CI smoke pass
#
# TRAFFIC_SIMD=0 forces the scalar fallback (the JSON then records
# backend "scalar" and speedups of 1.0).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo bench -p traffic-bench --bench elementwise
echo
echo "--- BENCH_elementwise.json ---"
cat BENCH_elementwise.json
