#!/usr/bin/env bash
# Regenerates BENCH_report.json at the workspace root: the experiment
# scheduler's mini Fig-1 sweep timed serial vs parallel (wall-clock plus
# per-cell p50/p99 from the sched/cell_s histogram), and Graph-WaveNet's
# eval-mode forward with the adaptive-adjacency cache on vs off.
#
# The bench asserts the serial and parallel sweeps produced
# bit-identical rows before publishing any timing. The
# speedup_parallel_vs_serial key is emitted only on multi-core runners;
# cores and jobs are always recorded so the numbers stay interpretable.
#
# Usage:
#   scripts/bench_report.sh                 # full run
#   BENCH_SMOKE=1 scripts/bench_report.sh   # fast CI smoke pass
#
# TRAFFIC_THREADS caps the worker pool (default: all available cores).
set -euo pipefail
cd "$(dirname "$0")/.."

# Pin the pool size explicitly so the JSON's "cores" field reflects a
# deliberate choice rather than whatever the environment leaked in.
export TRAFFIC_THREADS="${TRAFFIC_THREADS:-$(nproc)}"

cargo bench -p traffic-bench --bench report
echo
echo "--- BENCH_report.json ---"
cat BENCH_report.json
