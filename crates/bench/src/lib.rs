//! # traffic-bench
//!
//! Criterion benches regenerating every table and figure of the paper.
//! Each bench target prints its table/figure once (at a small scale — see
//! [`report_scale`]) and then times the representative kernel behind it.
//!
//! | bench target              | regenerates |
//! |---------------------------|-------------|
//! | `table1_datasets`         | Table I     |
//! | `table3_computation_time` | Table III   |
//! | `fig1_model_comparison`   | Fig 1       |
//! | `fig2_difficult_intervals`| Fig 2       |
//! | `fig3_case_study`         | Fig 3       |
//! | `ablations`               | §VI design-choice ablations |
//! | `kernels`                 | substrate micro-benchmarks  |
//! | `gemm`                    | `BENCH_gemm.json` (seed vs blocked vs pool GEMM, CSR vs dense) |

use traffic_core::ExperimentScale;
use traffic_obs::Run;

pub mod regression;

/// The scale used inside timed loops. Criterion re-runs bench bodies many
/// times, so this stays at smoke size; use the examples for larger
/// regenerations.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

/// A slightly larger one-shot scale for the printed tables (run once per
/// bench process, outside the timed loops).
pub fn report_scale() -> ExperimentScale {
    let mut s = ExperimentScale::smoke();
    s.epochs = 2;
    s.max_train_batches = Some(20);
    s.max_test_samples = Some(60);
    s
}

/// Starts a telemetry run for a bench target, writing a JSONL manifest
/// to `reports/runs/bench-<name>.jsonl` at the workspace root (cargo
/// runs bench binaries from the package directory, so a relative path
/// would scatter manifests). Returns `None` — and the bench simply runs
/// without a manifest — if the directory is not writable.
pub fn bench_run(name: &str) -> Option<Run> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports/runs");
    Run::named(&format!("bench-{name}")).jsonl(dir).start().ok()
}
