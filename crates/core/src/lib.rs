//! # traffic-core
//!
//! Experiment harness reproducing the paper's evaluation: the trainer
//! (Adam + masked MAE + scheduled sampling, §V), Table III timing, the Fig
//! 1 model-comparison cross-product, the Fig 2 difficult-interval analysis,
//! the Fig 3 per-road case study, and text/CSV renderers for each.

pub mod ablation;
pub mod divergence;
pub mod experiment;
pub mod findings;
pub mod insight;
pub mod regimes;
pub mod report;
pub mod resume;
pub mod scale;
pub mod sched;
pub mod tables;
pub mod timing;
pub mod trainer;

pub use ablation::{
    gwn_adaptive_ablation, horizon_curve, stgcn_spatial_kind_ablation, AblationResult,
};
pub use divergence::{DivergencePolicy, LossMonitor, Verdict};
pub use experiment::{
    case_study, case_study_on, difficult_interval_experiment, eval_split, model_comparison,
    prepare_experiment, sample_difficult_mask, train_model, CaseStudy, Fig1Row, Fig2Row,
    PreparedExperiment, RoadCase,
};
pub use findings::{
    check_fig1, check_fig1_flow, check_fig2, check_table3, fig1_winners, render_findings, Finding,
};
pub use insight::{BlameEntry, BlameReport, HealthMonitor};
pub use regimes::{classify, decompose, regime_mask, Regime};
pub use report::{format_table, sparkline, write_csv};
pub use resume::{config_fingerprint, BestSnapshot, TrainState, STATE_VERSION};
pub use scale::ExperimentScale;
pub use sched::{planned_jobs, run_cells, set_jobs_override, CellOutcome};
pub use tables::{
    fig1_csv_rows, fig2_csv_rows, fig3_csv_rows, render_fig1, render_fig2, render_fig3,
    render_span_summary, render_table1, render_table2, render_table3, table3_csv_rows,
};
pub use timing::{computation_time, computation_time_on, Table3Row};
pub use trainer::{
    predict, teacher_probability, timed_predict, train, validation_loss, TrainConfig, TrainReport,
};
