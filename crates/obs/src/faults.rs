//! Deterministic fault injection for resilience testing.
//!
//! A fault *site* is a named point in the pipeline that asks
//! [`fire`] whether it should fail this time. [`SITES`] is the
//! canonical vocabulary — every site the workspace defines, in one
//! place:
//!
//! | site        | effect at the call site                              |
//! |-------------|------------------------------------------------------|
//! | `nan_grad`  | trainer poisons the captured gradients with NaN      |
//! | `ckpt_io`   | checkpoint writer returns an I/O error               |
//! | `abort`     | trainer panics (or hard-aborts) mid-epoch            |
//! | `nan_val`   | `validation_loss` returns NaN                        |
//! | `serve_io`  | serving-snapshot read returns a transient I/O error  |
//! | `reload`    | serving-snapshot decode reports corruption           |
//! | `serve_nan` | serve engine treats one batched forward as non-finite|
//! | `serve_panic` | serve worker thread panics outside any catch_unwind |
//!
//! The trainer sites (`nan_grad`/`ckpt_io`/`abort`/`nan_val`) exercise
//! training resilience (skip-and-recover, checkpoint retry, resume);
//! the serve sites (`serve_io`/`reload`/`serve_nan`/`serve_panic`)
//! exercise the serving degradation ladder (reload retry,
//! validate-then-swap keeping last-good, circuit breaker tripping to
//! `DEGRADED`, and the worker-death guard that answers `ERROR` to
//! every stranded client instead of hanging them).
//!
//! Triggers are **call-count based**, never time- or randomness-based:
//! the N-th call to `fire(site)` fires, exactly once, so a run with a
//! fixed seed and a fixed fault plan is fully reproducible. Faults are
//! armed programmatically ([`arm`]) or from the `TRAFFIC_FAULTS`
//! environment variable, parsed once on first use:
//!
//! ```text
//! TRAFFIC_FAULTS="nan_grad@5,abort@12:hard,ckpt_io@1"
//! ```
//!
//! `site@N` fires on the N-th call (1-based); an optional `:hard`
//! suffix upgrades the mode (meaningful for `abort`, where the default
//! is a catchable panic and `hard` is `std::process::abort`, i.e. a
//! SIGKILL-grade death no destructor or unwind handler sees).
//!
//! **Cell filter.** Under the parallel experiment scheduler, cells on
//! other threads would otherwise advance a site's global call counter
//! nondeterministically. A filter ([`set_cell_filter`] or the
//! `TRAFFIC_FAULT_CELL` env var) restricts counting to calls made
//! inside a cell scope whose label contains the given substring (see
//! [`crate::scope`]), making fault plans reproducible in both serial
//! and parallel sweeps.
//!
//! The disabled fast path is one relaxed atomic load — safe to leave
//! `fire` calls on hot paths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{counter, emit_with, Event};

/// Every fault site defined across the workspace, as
/// `(site, effect at the call site)` pairs — the single source of
/// truth for the vocabulary (the module table above renders the same
/// list). Tools that validate `TRAFFIC_FAULTS` plans or enumerate
/// chaos coverage iterate this instead of hard-coding names.
pub const SITES: &[(&str, &str)] = &[
    ("nan_grad", "trainer poisons the captured gradients with NaN"),
    ("ckpt_io", "checkpoint writer returns an I/O error"),
    ("abort", "trainer panics (or hard-aborts) mid-epoch"),
    ("nan_val", "validation_loss returns NaN"),
    ("serve_io", "serving-snapshot read returns a transient I/O error"),
    ("reload", "serving-snapshot decode reports corruption"),
    ("serve_nan", "serve engine treats one batched forward as non-finite"),
    ("serve_panic", "serve worker thread panics outside any catch_unwind"),
];

/// How the site should fail when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Recoverable failure: the site reports an error / poisons a value.
    Soft,
    /// Unrecoverable: the site should kill the process outright
    /// (`std::process::abort`), simulating SIGKILL / power loss.
    Hard,
}

struct Plan {
    /// Fires on the `at`-th call (1-based).
    at: u64,
    mode: FaultMode,
    calls: u64,
    fired: bool,
}

/// Number of armed-but-unfired faults; the `fire` fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);
static ENV_PARSED: AtomicBool = AtomicBool::new(false);

fn plans() -> &'static Mutex<HashMap<String, Plan>> {
    static PLANS: OnceLock<Mutex<HashMap<String, Plan>>> = OnceLock::new();
    PLANS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cell_filter() -> &'static Mutex<Option<String>> {
    static FILTER: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    FILTER.get_or_init(|| Mutex::new(None))
}

/// Restricts [`fire`] to calls made inside a cell scope whose label
/// contains `filter` (substring match); calls from other cells — or
/// from outside any cell — neither count nor fire. `None` removes the
/// restriction. [`reset`] also clears it.
pub fn set_cell_filter(filter: Option<&str>) {
    *cell_filter().lock().unwrap_or_else(|e| e.into_inner()) = filter.map(str::to_string);
}

fn cell_matches() -> bool {
    let f = cell_filter().lock().unwrap_or_else(|e| e.into_inner());
    match f.as_deref() {
        None => true,
        Some(f) => crate::scope::current_cell().is_some_and(|c| c.contains(f)),
    }
}

fn ensure_env_parsed() {
    if ENV_PARSED.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Ok(spec) = std::env::var("TRAFFIC_FAULTS") {
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match parse_item(item) {
                Some((site, at, mode)) => arm(&site, at, mode),
                None => eprintln!("TRAFFIC_FAULTS: ignoring malformed entry {item:?}"),
            }
        }
    }
    if let Ok(cell) = std::env::var("TRAFFIC_FAULT_CELL") {
        let cell = cell.trim();
        if !cell.is_empty() {
            set_cell_filter(Some(cell));
        }
    }
}

fn parse_item(item: &str) -> Option<(String, u64, FaultMode)> {
    let (site, rest) = item.split_once('@')?;
    let (at, mode) = match rest.split_once(':') {
        Some((n, "hard")) => (n, FaultMode::Hard),
        Some((n, "soft")) => (n, FaultMode::Soft),
        Some(_) => return None,
        None => (rest, FaultMode::Soft),
    };
    let at: u64 = at.parse().ok()?;
    (at > 0 && !site.is_empty()).then(|| (site.to_string(), at, mode))
}

/// Arms `site` to fire on its `at`-th call from now (1-based), once.
/// Re-arming a site replaces its previous plan and resets its counter.
pub fn arm(site: &str, at: u64, mode: FaultMode) {
    assert!(at > 0, "fault trigger counts are 1-based");
    let mut map = plans().lock().unwrap_or_else(|e| e.into_inner());
    let prev = map.insert(site.to_string(), Plan { at, mode, calls: 0, fired: false });
    if prev.is_none_or(|p| p.fired) {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarms every fault, resets call counters, and clears the cell
/// filter (tests).
pub fn reset() {
    let mut map = plans().lock().unwrap_or_else(|e| e.into_inner());
    map.clear();
    ARMED.store(0, Ordering::SeqCst);
    drop(map);
    set_cell_filter(None);
}

/// True when at least one fault is armed and unfired.
pub fn any_armed() -> bool {
    ensure_env_parsed();
    ARMED.load(Ordering::Relaxed) > 0
}

/// Counts one call of `site`; returns the fault mode when this call is
/// the one that should fail. Fires at most once per [`arm`].
pub fn fire(site: &str) -> Option<FaultMode> {
    ensure_env_parsed();
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    if !cell_matches() {
        return None;
    }
    let mut map = plans().lock().unwrap_or_else(|e| e.into_inner());
    let plan = map.get_mut(site)?;
    if plan.fired {
        return None;
    }
    plan.calls += 1;
    if plan.calls != plan.at {
        return None;
    }
    plan.fired = true;
    let mode = plan.mode;
    drop(map);
    ARMED.fetch_sub(1, Ordering::SeqCst);
    counter("faults/injected").inc();
    emit_with(|| {
        Event::new("fault_injected")
            .with("site", site.to_string())
            .with("mode", if mode == FaultMode::Hard { "hard" } else { "soft" })
    });
    Some(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global fault state: tests serialise on one lock.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn fires_on_nth_call_exactly_once() {
        let _g = lock();
        reset();
        arm("t.site", 3, FaultMode::Soft);
        assert!(any_armed());
        assert_eq!(fire("t.site"), None);
        assert_eq!(fire("t.site"), None);
        assert_eq!(fire("t.site"), Some(FaultMode::Soft));
        for _ in 0..5 {
            assert_eq!(fire("t.site"), None);
        }
        assert!(!any_armed());
        reset();
    }

    #[test]
    fn unknown_sites_do_not_fire() {
        let _g = lock();
        reset();
        arm("t.a", 1, FaultMode::Hard);
        assert_eq!(fire("t.other"), None);
        assert_eq!(fire("t.a"), Some(FaultMode::Hard));
        reset();
    }

    #[test]
    fn rearming_resets_the_counter() {
        let _g = lock();
        reset();
        arm("t.r", 2, FaultMode::Soft);
        assert_eq!(fire("t.r"), None);
        arm("t.r", 2, FaultMode::Soft); // counter back to 0
        assert_eq!(fire("t.r"), None);
        assert_eq!(fire("t.r"), Some(FaultMode::Soft));
        reset();
    }

    #[test]
    fn cell_filter_scopes_counting() {
        let _g = lock();
        reset();
        set_cell_filter(Some("fig1/METR-LA/STGCN"));
        arm("t.cell", 2, FaultMode::Soft);
        // Outside any cell: neither counts nor fires.
        assert_eq!(fire("t.cell"), None);
        {
            // A non-matching cell: still ignored.
            let _scope = crate::scope::CellScope::enter("fig1/METR-LA/DCRNN");
            assert_eq!(fire("t.cell"), None);
        }
        {
            let _scope = crate::scope::CellScope::enter("fig1/METR-LA/STGCN");
            assert_eq!(fire("t.cell"), None); // call 1
            assert_eq!(fire("t.cell"), Some(FaultMode::Soft)); // call 2
        }
        reset(); // must clear the filter too
        arm("t.cell2", 1, FaultMode::Soft);
        assert_eq!(fire("t.cell2"), Some(FaultMode::Soft));
        reset();
    }

    #[test]
    fn env_spec_parsing() {
        assert_eq!(parse_item("nan_grad@5"), Some(("nan_grad".into(), 5, FaultMode::Soft)));
        assert_eq!(parse_item("abort@12:hard"), Some(("abort".into(), 12, FaultMode::Hard)));
        assert_eq!(parse_item("x@1:soft"), Some(("x".into(), 1, FaultMode::Soft)));
        assert_eq!(parse_item("x@0"), None);
        assert_eq!(parse_item("x@"), None);
        assert_eq!(parse_item("@3"), None);
        assert_eq!(parse_item("x@3:weird"), None);
        assert_eq!(parse_item("no-at"), None);
    }
}
