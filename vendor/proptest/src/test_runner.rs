//! Test-runner configuration and the deterministic generation RNG.

/// How many cases each test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Deterministic RNG driving strategy generation (SplitMix64 seeded from
/// the test's fully qualified name, so every test has a stable stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
