//! Blocked single-precision GEMM (`out += a · b`, plus an
//! overwrite-mode `out = a · b` variant) and the naive reference
//! kernel it replaced.
//!
//! The kernel cache-blocks the reduction axis (`KC`) and register-tiles
//! the output (`MR × NR`): each tile is loaded once, accumulated in
//! registers across the whole `k`-block, and stored once, cutting
//! output traffic by `KC×` and `b`-row traffic by `MR×` versus the
//! seed's one-row-at-a-time loop, while the fixed-width `NR` strip
//! keeps the inner loop LLVM-vectorised (with hardware FMA when the
//! target provides it — the workspace builds with `target-cpu=native`).
//! Each output element receives its `k` addends one at a time in
//! ascending order (the tile is *loaded* before accumulating, never
//! merged as a block sum), so results are independent of thread count
//! and deterministic for a given build; without FMA they are
//! bit-identical to [`matmul_naive`], with FMA they differ from it only
//! by the fused roundings (≲1e-6 relative at k ≈ 200).
//!
//! FLOP accounting: callers that time a multiply report it through
//! [`record_flops`], which feeds the `compute/flops` counter and the
//! `compute/gemm_gflops` histogram in the `traffic-obs` registry —
//! that is where run manifests and `BENCH_gemm.json` read GFLOP/s from.

use std::sync::OnceLock;

use crate::pool;

/// Reduction-axis cache block: `KC · n` floats of `b` stay hot in L2
/// while `m` output rows stream past.
const KC: usize = 256;
/// Register tile height: rows of `a` advanced together.
const MR: usize = 6;
/// Register tile width: the accumulator strip held in registers while a
/// `k`-block streams past (`MR · NR` floats = 12 AVX2 registers, the
/// classic 6×16 kernel — leaves room for the `b` strip and broadcasts).
const NR: usize = 16;
/// Minimum rows per parallel task; below this, dispatch overhead wins.
const MIN_ROWS_PER_TASK: usize = 8;

/// Fused multiply-add when the target has hardware FMA (the workspace
/// builds with `target-cpu=native`, so this is compile-time constant);
/// plain mul+add otherwise — `f32::mul_add` without hardware support
/// falls back to a correctly-rounded software routine that is orders of
/// magnitude slower. Either way the kernel is deterministic for a given
/// build and independent of thread count.
#[inline(always)]
fn madd(a: f32, b: f32, acc: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Plain `m×k · k×n` triple loop on contiguous slices, accumulating
/// into `out`. This is the seed engine's kernel, kept verbatim —
/// including its per-element zero-skip branch — so it serves both as
/// the correctness reference for the blocked kernel's proptests and as
/// the baseline that `BENCH_gemm.json` speedups are measured against.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (l, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue; // adjacency matrices are sparse; skip zero rows cheaply
            }
            let b_row = &b[l * n..(l + 1) * n];
            for j in 0..n {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

/// Serial blocked GEMM: `out += a · b` with `a: [m, k]`, `b: [k, n]`,
/// `out: [m, n]`, all contiguous row-major.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_impl::<false>(a, b, out, m, k, n);
}

/// Serial blocked GEMM that *overwrites*: `out = a · b`, ignoring
/// whatever `out` held before (it may be recycled-buffer garbage).
///
/// The first `k`-block initialises the register tile to `0.0` instead
/// of loading `out` — the floating-point operation sequence per element
/// is exactly "start from zero, add `k` products in ascending order",
/// identical to calling [`gemm`] on a pre-zeroed buffer, so the two are
/// bit-for-bit equal. It exists so callers can feed pooled buffers from
/// `mem::take_uninit` and skip a full memset pass over the output.
pub fn gemm_overwrite(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if k == 0 {
        // Empty reduction: the product is all zeros, and there is no
        // k-block to write them for us.
        out.fill(0.0);
        return;
    }
    gemm_impl::<true>(a, b, out, m, k, n);
}

/// Overwrite-mode GEMM with the *left* operand given in transposed
/// storage: `at` holds `aᵀ` as a row-major `[k, m]` matrix and the call
/// computes `out = a · b`. The packing step reads `R` *consecutive*
/// elements per `k`-row (better than the strided gather the normal
/// orientation needs), so backward passes can feed activations straight
/// from memory instead of materialising a full `.t()` copy first.
/// Arithmetic per output element is the ascending-`k` sequence of
/// [`gemm`]; results are bit-identical to `gemm_overwrite` on a
/// pre-transposed copy.
pub fn gemm_overwrite_at(at: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }
    let mut a_pack = [0.0f32; MR * KC];
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let first = pc == 0;
        let b_panel = &b[pc * n..(pc + kc) * n];
        // `at` rows pc..pc+kc hold the k-slice; column i is output row i.
        let at_panel = &at[pc * m..(pc + kc) * m];
        let mut i = 0;
        while i + MR <= m {
            pack_at::<MR>(&mut a_pack, &at_panel[i..], m, kc);
            let out_rows = &mut out[i * n..(i + MR) * n];
            if first {
                micro_tile::<MR, true>(&a_pack, b_panel, out_rows, kc, n);
            } else {
                micro_tile::<MR, false>(&a_pack, b_panel, out_rows, kc, n);
            }
            i += MR;
        }
        let rem = m - i;
        if rem > 0 {
            let at_rows = &at_panel[i..];
            let out_rows = &mut out[i * n..(i + rem) * n];
            macro_rules! tail_at {
                ($r:literal, $first:literal) => {{
                    pack_at::<$r>(&mut a_pack, at_rows, m, kc);
                    micro_tile::<$r, $first>(&a_pack, b_panel, out_rows, kc, n);
                }};
            }
            match (rem, first) {
                (1, true) => tail_at!(1, true),
                (2, true) => tail_at!(2, true),
                (3, true) => tail_at!(3, true),
                (4, true) => tail_at!(4, true),
                (_, true) => tail_at!(5, true),
                (1, false) => tail_at!(1, false),
                (2, false) => tail_at!(2, false),
                (3, false) => tail_at!(3, false),
                (4, false) => tail_at!(4, false),
                (_, false) => tail_at!(5, false),
            }
        }
        pc += kc;
    }
}

/// Overwrite-mode GEMM with the *right* operand given in transposed
/// storage: `bt` holds `bᵀ` as a row-major `[n, k]` matrix and the call
/// computes `out = a · b`. Each `k`-block transposes its `kc × n` slice
/// of `b` into `scratch` (caller-provided, at least `min(k, KC) · n`
/// long — pass a pooled buffer) and then runs the normal kernel on the
/// packed panel, which is a pure data-movement change: results are
/// bit-identical to `gemm_overwrite` on a pre-transposed copy, without
/// ever materialising one at full size.
pub fn gemm_overwrite_bt(
    a: &[f32],
    bt: &[f32],
    scratch: &mut [f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(scratch.len() >= KC.min(k) * n);
    let mut a_pack = [0.0f32; MR * KC];
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let first = pc == 0;
        // Transpose this k-slice of bᵀ into the scratch panel:
        // scratch[p][j] = bt[j][pc + p]. The panel is small enough to
        // stay cached while every output row streams past it.
        for (j, bt_row) in bt.chunks_exact(k).enumerate() {
            for (p, &v) in bt_row[pc..pc + kc].iter().enumerate() {
                scratch[p * n + j] = v;
            }
        }
        let b_panel = &scratch[..kc * n];
        let mut i = 0;
        while i + MR <= m {
            pack_a::<MR>(&mut a_pack, &a[i * k + pc..], k, kc);
            let out_rows = &mut out[i * n..(i + MR) * n];
            if first {
                micro_tile::<MR, true>(&a_pack, b_panel, out_rows, kc, n);
            } else {
                micro_tile::<MR, false>(&a_pack, b_panel, out_rows, kc, n);
            }
            i += MR;
        }
        let rem = m - i;
        if rem > 0 {
            let a_rows = &a[i * k + pc..];
            let out_rows = &mut out[i * n..(i + rem) * n];
            if first {
                match rem {
                    1 => tail::<1, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    2 => tail::<2, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    3 => tail::<3, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    4 => tail::<4, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    _ => tail::<5, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                }
            } else {
                match rem {
                    1 => tail::<1, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    2 => tail::<2, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    3 => tail::<3, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    4 => tail::<4, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    _ => tail::<5, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                }
            }
        }
        pc += kc;
    }
}

/// Scratch length [`gemm_overwrite_bt`] needs for a `k × n` right-hand
/// side: one `kc × n` panel.
pub fn bt_scratch_len(k: usize, n: usize) -> usize {
    KC.min(k) * n
}

/// Shared body of [`gemm`] / [`gemm_overwrite`]. `OVERWRITE` selects
/// whether the *first* `k`-block loads the output tile (accumulate) or
/// starts it at zero (overwrite); later blocks always accumulate.
fn gemm_impl<const OVERWRITE: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Block the reduction so the active `b` panel (`kc · n` floats)
    // stays cached across the whole sweep over `m`.
    let mut a_pack = [0.0f32; MR * KC];
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let first = OVERWRITE && pc == 0;
        let b_panel = &b[pc * n..(pc + kc) * n];
        let mut i = 0;
        while i + MR <= m {
            pack_a::<MR>(&mut a_pack, &a[i * k + pc..], k, kc);
            let out_rows = &mut out[i * n..(i + MR) * n];
            if first {
                micro_tile::<MR, true>(&a_pack, b_panel, out_rows, kc, n);
            } else {
                micro_tile::<MR, false>(&a_pack, b_panel, out_rows, kc, n);
            }
            i += MR;
        }
        let rem = m - i;
        if rem > 0 {
            let a_rows = &a[i * k + pc..];
            let out_rows = &mut out[i * n..(i + rem) * n];
            if first {
                match rem {
                    1 => tail::<1, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    2 => tail::<2, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    3 => tail::<3, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    4 => tail::<4, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    _ => tail::<5, true>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                }
            } else {
                match rem {
                    1 => tail::<1, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    2 => tail::<2, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    3 => tail::<3, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    4 => tail::<4, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                    _ => tail::<5, false>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                }
            }
        }
        pc += kc;
    }
}

/// Packs an `R × kc` tile of `a` (row stride `lda`) into `p`-major
/// layout: `a_pack[p * R + r] = a[r][p]`, so the micro-kernel's
/// per-`p` coefficient loads are contiguous.
#[inline(always)]
fn pack_a<const R: usize>(a_pack: &mut [f32], a_rows: &[f32], lda: usize, kc: usize) {
    for p in 0..kc {
        for r in 0..R {
            a_pack[p * R + r] = a_rows[r * lda + p];
        }
    }
}

/// Packs an `R × kc` tile of `a` from *transposed* storage: `at_cols`
/// starts at row 0, column `i` of the `[kc, m]` panel (row stride
/// `ldat`), so `a_pack[p * R + r] = at[p][r]` — a contiguous `R`-wide
/// copy per `k`-row, no striding at all.
#[inline(always)]
fn pack_at<const R: usize>(a_pack: &mut [f32], at_cols: &[f32], ldat: usize, kc: usize) {
    for p in 0..kc {
        a_pack[p * R..p * R + R].copy_from_slice(&at_cols[p * ldat..p * ldat + R]);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal trampoline mirroring micro_tile
fn tail<const R: usize, const FIRST: bool>(
    a_pack: &mut [f32],
    a_rows: &[f32],
    lda: usize,
    b_panel: &[f32],
    out_rows: &mut [f32],
    kc: usize,
    n: usize,
) {
    pack_a::<R>(a_pack, a_rows, lda, kc);
    micro_tile::<R, FIRST>(a_pack, b_panel, out_rows, kc, n);
}

/// `R`-row register tile: walks the output in `R × NR` strips, each
/// loaded into a register accumulator, updated for every `p` in the
/// `k`-block, and stored back once. `a_pack` is the tile of `a` in
/// `p`-major packed layout (see [`pack_a`]); `out_rows` is `R`
/// contiguous output rows. With `FIRST` the accumulator starts at zero
/// instead of loading `out_rows` (whose contents may be garbage) —
/// per-element arithmetic is otherwise identical.
#[inline(always)]
fn micro_tile<const R: usize, const FIRST: bool>(
    a_pack: &[f32],
    b_panel: &[f32],
    out_rows: &mut [f32],
    kc: usize,
    n: usize,
) {
    debug_assert_eq!(out_rows.len(), R * n);
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        if !FIRST {
            for (r, acc_row) in acc.iter_mut().enumerate() {
                acc_row.copy_from_slice(&out_rows[r * n + j..r * n + j + NR]);
            }
        }
        for p in 0..kc {
            let b_strip: &[f32; NR] =
                b_panel[p * n + j..p * n + j + NR].try_into().expect("NR strip");
            let coeffs = &a_pack[p * R..(p + 1) * R];
            for (acc_row, &coeff) in acc.iter_mut().zip(coeffs) {
                for (av, &bv) in acc_row.iter_mut().zip(b_strip) {
                    *av = madd(coeff, bv, *av);
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out_rows[r * n + j..r * n + j + NR].copy_from_slice(acc_row);
        }
        j += NR;
    }
    if j < n {
        // Remainder strip (< NR columns): accumulate straight into the
        // output rows; same ascending-`p` order, just without the
        // register residency. In `FIRST` mode seed the strip with the
        // zeros the accumulate path would have read.
        if FIRST {
            for r in 0..R {
                out_rows[r * n + j..r * n + n].fill(0.0);
            }
        }
        for p in 0..kc {
            let b_row = &b_panel[p * n + j..(p + 1) * n];
            let coeffs = &a_pack[p * R..(p + 1) * R];
            for r in 0..R {
                let coeff = coeffs[r];
                let out_row = &mut out_rows[r * n + j..r * n + n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = madd(coeff, bv, *o);
                }
            }
        }
    }
}

/// Row-parallel blocked GEMM: splits `m` into disjoint row blocks
/// across the worker pool, each running the serial kernel. Per-element
/// accumulation order is unchanged, so results are bit-identical to
/// [`gemm`] at any thread count.
pub fn gemm_parallel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = pool::effective_threads();
    if threads <= 1 || m < 2 * MIN_ROWS_PER_TASK {
        return gemm(a, b, out, m, k, n);
    }
    let rows_per_task = m.div_ceil(threads * 2).max(MIN_ROWS_PER_TASK);
    pool::parallel_chunks_mut(out, rows_per_task * n, |ci, out_chunk| {
        let r0 = ci * rows_per_task;
        let rows = out_chunk.len() / n;
        gemm(&a[r0 * k..(r0 + rows) * k], b, out_chunk, rows, k, n);
    });
}

struct GemmMetrics {
    flops: &'static traffic_obs::Counter,
    gflops: &'static traffic_obs::Histogram,
}

fn metrics() -> &'static GemmMetrics {
    static METRICS: OnceLock<GemmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        flops: traffic_obs::counter("compute/flops"),
        gflops: traffic_obs::histogram("compute/gemm_gflops"),
    })
}

/// Records `flops` floating-point operations taking `secs` seconds:
/// bumps the cumulative `compute/flops` counter and, for non-trivial
/// timings, the `compute/gemm_gflops` rate histogram.
pub fn record_flops(flops: usize, secs: f64) {
    let m = metrics();
    m.flops.add(flops as u64);
    if secs > 0.0 && flops > 0 {
        m.gflops.record(flops as f64 / secs / 1e9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 500.0)
                    - 1.0
            })
            .collect()
    }

    fn check_shape(m: usize, k: usize, n: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut want = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm(&a, &b, &mut got, m, k, n);
        if cfg!(target_feature = "fma") {
            // FMA changes each addend's rounding, nothing else.
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w} at {m}x{k}x{n}");
            }
        } else {
            assert_eq!(got, want, "blocked kernel diverged at {m}x{k}x{n}");
        }
        // Thread-count determinism is unconditional: the parallel kernel
        // must match the serial one bit for bit.
        let mut par = vec![0.0f32; m * n];
        gemm_parallel(&a, &b, &mut par, m, k, n);
        assert_eq!(par, got, "parallel kernel diverged at {m}x{k}x{n}");
    }

    #[test]
    fn matches_naive_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 4, 4),
            (5, 3, 7),
            (7, 300, 1), // k crosses a KC boundary, n = 1
            (64, 64, 64),
            (207, 207, 64), // METR-LA graph-conv shape
            (33, 513, 17),
        ] {
            check_shape(m, k, n);
        }
    }

    #[test]
    fn degenerate_dims_are_noops() {
        check_shape(0, 3, 3);
        check_shape(3, 0, 3);
        check_shape(3, 3, 0);
        let mut out = vec![1.0f32; 9];
        gemm(&[], &[], &mut out, 3, 0, 3);
        assert!(out.iter().all(|&v| v == 1.0), "k = 0 must leave the accumulator untouched");
    }

    #[test]
    fn overwrite_matches_zeroed_accumulate_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (7, 300, 17), (64, 64, 64), (13, 513, 1)] {
            let a = fill(m * k, 5);
            let b = fill(k * n, 6);
            let mut want = vec![0.0f32; m * n];
            gemm(&a, &b, &mut want, m, k, n);
            // Seed with garbage the overwrite kernel must ignore.
            let mut got = vec![f32::NAN; m * n];
            gemm_overwrite(&a, &b, &mut got, m, k, n);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "overwrite kernel diverged at {m}x{k}x{n}"
            );
        }
        // k = 0: empty reduction must produce zeros, not stale garbage.
        let mut out = vec![f32::NAN; 6];
        gemm_overwrite(&[], &[], &mut out, 2, 0, 3);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accumulates_into_out() {
        let (m, k, n) = (3, 3, 3);
        let a = fill(9, 3);
        let b = fill(9, 4);
        let mut once = vec![0.0f32; 9];
        gemm(&a, &b, &mut once, m, k, n);
        let mut twice = vec![0.0f32; 9];
        gemm(&a, &b, &mut twice, m, k, n);
        gemm(&a, &b, &mut twice, m, k, n);
        for (t, o) in twice.iter().zip(&once) {
            assert!((t - 2.0 * o).abs() < 1e-4);
        }
    }
}
