//! Fig 2 regenerator: difficult-interval MAE and relative degradation.
//! Prints the reduced experiment once, then times interval extraction and
//! masked evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use traffic_bench::{bench_scale, report_scale};
use traffic_core::{
    difficult_interval_experiment, eval_split, predict, prepare_experiment, render_fig2,
    sample_difficult_mask, train_model,
};
use traffic_data::{difficult_mask, PAPER_QUANTILE, PAPER_WINDOW};
use traffic_metrics::evaluate;

fn bench(c: &mut Criterion) {
    let _run = traffic_bench::bench_run("fig2_difficult_intervals");
    let rows = difficult_interval_experiment(
        "METR-LA",
        &["Graph-WaveNet", "ASTGCN", "ST-MetaNet"],
        &report_scale(),
    );
    println!("\n== Fig 2 (reduced regeneration) ==\n{}", render_fig2(&rows));

    let scale = bench_scale();
    let exp = prepare_experiment("METR-LA", &scale, 42);
    let test = eval_split(&exp.data.test, &scale);
    let (model, _) = train_model("Graph-WaveNet", &exp, &scale, 1);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    let mask = sample_difficult_mask(&exp.dataset, &test);

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("interval_extraction", |b| {
        b.iter(|| difficult_mask(&exp.dataset.values, PAPER_WINDOW, PAPER_QUANTILE));
    });
    group.bench_function("masked_evaluation", |b| {
        b.iter(|| (evaluate(&pred, &test.y_raw, None), evaluate(&pred, &test.y_raw, Some(&mask))));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
