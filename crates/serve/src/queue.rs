//! Deadline-aware admission queue.
//!
//! Every robustness decision the server makes *before* touching compute
//! lives here, and all of it is a pure function of `(queue state,
//! now_ns)` — the clock is an explicit argument, never read internally,
//! so `SHED`/`TIMEOUT` decisions are bit-identical whether the kernels
//! underneath run on one worker thread or eight (tested in
//! `tests/determinism.rs`).
//!
//! - **Admission control**: past the high-water mark the queue refuses
//!   new work with [`ServeResponse::Shed`] — bounded memory, and the
//!   refusal is instant so clients can retry elsewhere instead of
//!   waiting on a doomed request.
//! - **Deadlines**: a request whose deadline has already passed is
//!   answered [`ServeResponse::Timeout`] at admission; one that expires
//!   while queued is timed out at batch-formation time, so expired work
//!   never occupies a forward pass.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use traffic_obs::{counter, gauge};

/// A single prediction request on the raw (vehicle-count / km/h) scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Raw observed window, row-major `[t_in, n]` (oldest frame first).
    pub window: Vec<f32>,
    /// Time-of-day of the *first* window frame, as a fraction of a day
    /// in `[0, 1)`.
    pub tod: f32,
    /// Absolute deadline on the serve clock, in nanoseconds
    /// (`u64::MAX` = no deadline).
    pub deadline_ns: u64,
}

/// What the server answered. Every request gets exactly one of these —
/// the server never drops a request on the floor.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// Model prediction, raw scale, row-major `[t_out, n]`.
    Ok(Vec<f32>),
    /// Persistence-baseline fallback (circuit breaker open): last
    /// observed frame repeated across the horizon, raw scale.
    Degraded(Vec<f32>),
    /// Refused at admission: queue past its high-water mark.
    Shed,
    /// Deadline expired before a forward pass could serve it.
    Timeout,
    /// Terminal rejection that is neither load nor deadline: the
    /// request no longer matches the live model geometry (a hot reload
    /// changed `n`/`t_in` after admission) or the serve worker is down.
    /// Always answered — a broken server tells you so instead of
    /// hanging your connection.
    Error(String),
}

impl ServeResponse {
    /// Wire status string (`OK`/`DEGRADED`/`SHED`/`TIMEOUT`/`ERROR`).
    pub fn status(&self) -> &'static str {
        match self {
            ServeResponse::Ok(_) => "OK",
            ServeResponse::Degraded(_) => "DEGRADED",
            ServeResponse::Shed => "SHED",
            ServeResponse::Timeout => "TIMEOUT",
            ServeResponse::Error(_) => "ERROR",
        }
    }
}

/// A queued request plus its reply channel.
pub struct Job {
    /// The request.
    pub req: ServeRequest,
    /// When the request was admitted (serve clock, ns).
    pub submit_ns: u64,
    /// Where the single response goes. Send failures are ignored — a
    /// client that hung up doesn't destabilise the server.
    pub reply: mpsc::Sender<ServeResponse>,
}

impl Job {
    /// Replies and swallows hung-up clients.
    pub fn respond(self, resp: ServeResponse) {
        let _ = self.reply.send(resp);
    }
}

/// Admission verdict from [`DeadlineQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Accepted; the reply channel will eventually carry a response.
    Queued,
    /// Refused (`SHED` already sent on the reply channel).
    Shed,
    /// Dead on arrival (`TIMEOUT` already sent on the reply channel).
    Expired,
    /// Queue closed — the consumer is gone (`ERROR` already sent on
    /// the reply channel).
    Rejected,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Set by [`DeadlineQueue::close_and_drain`] when the consumer is
    /// gone for good. Checked under the same lock as admission, so a
    /// job is either drained by the closer or refused at submit —
    /// never silently stranded between the two.
    closed: bool,
}

/// Bounded FIFO with deadline enforcement at both ends.
pub struct DeadlineQueue {
    inner: Mutex<QueueState>,
    nonempty: Condvar,
    high_water: usize,
}

impl DeadlineQueue {
    /// A queue that sheds beyond `high_water` pending jobs.
    pub fn new(high_water: usize) -> Self {
        assert!(high_water > 0, "a zero-capacity queue would shed everything");
        gauge("serve/queue_high_water").set(high_water as f64);
        DeadlineQueue {
            inner: Mutex::new(QueueState::default()),
            nonempty: Condvar::new(),
            high_water,
        }
    }

    /// The shed threshold.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current depth (for `/status`; the gauge tracks it too).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    /// Admission control. `now_ns` is the caller's reading of the serve
    /// clock; the decision depends only on it and the queue contents.
    pub fn submit(&self, job: Job, now_ns: u64) -> Admission {
        counter("serve/requests").inc();
        if job.req.deadline_ns <= now_ns {
            counter("serve/timeouts").inc();
            job.respond(ServeResponse::Timeout);
            return Admission::Expired;
        }
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.closed {
            drop(q);
            counter("serve/worker_down_rejects").inc();
            job.respond(ServeResponse::Error("serve worker is down".into()));
            return Admission::Rejected;
        }
        if q.jobs.len() >= self.high_water {
            drop(q);
            counter("serve/shed").inc();
            job.respond(ServeResponse::Shed);
            return Admission::Shed;
        }
        q.jobs.push_back(job);
        gauge("serve/queue_depth").set(q.jobs.len() as f64);
        drop(q);
        self.nonempty.notify_one();
        Admission::Queued
    }

    /// Closes the queue for good and returns every pending job. After
    /// this, [`DeadlineQueue::submit`] refuses everything with an
    /// `ERROR` response. Called by the serve worker's failure guard so
    /// a dead consumer strands no client: jobs admitted before the
    /// close come back here for a terminal answer, jobs racing the
    /// close are refused at submit — the lock makes those exhaustive.
    pub fn close_and_drain(&self) -> Vec<Job> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        let jobs: Vec<Job> = q.jobs.drain(..).collect();
        gauge("serve/queue_depth").set(0.0);
        jobs
    }

    /// Takes up to `max_batch` live jobs, answering `TIMEOUT` for any
    /// whose deadline passed while queued. Blocks up to `wait` for work
    /// (`None` = non-blocking). Returns an empty vec on timeout — the
    /// caller's loop decides what idleness means.
    pub fn pop_batch(&self, now_ns: u64, max_batch: usize, wait: Option<Duration>) -> Vec<Job> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.jobs.is_empty() {
            match wait {
                Some(d) => {
                    let (guard, _timeout) =
                        self.nonempty.wait_timeout(q, d).unwrap_or_else(|e| e.into_inner());
                    q = guard;
                }
                None => return Vec::new(),
            }
        }
        let mut live = Vec::new();
        let mut expired = Vec::new();
        while live.len() < max_batch {
            let Some(job) = q.jobs.pop_front() else { break };
            if job.req.deadline_ns <= now_ns {
                expired.push(job);
            } else {
                live.push(job);
            }
        }
        gauge("serve/queue_depth").set(q.jobs.len() as f64);
        drop(q);
        for job in expired {
            counter("serve/timeouts").inc();
            job.respond(ServeResponse::Timeout);
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(deadline_ns: u64) -> (Job, mpsc::Receiver<ServeResponse>) {
        let (tx, rx) = mpsc::channel();
        let req = ServeRequest { window: vec![0.0; 4], tod: 0.0, deadline_ns };
        (Job { req, submit_ns: 0, reply: tx }, rx)
    }

    #[test]
    fn expired_requests_never_enter_the_queue() {
        let q = DeadlineQueue::new(4);
        let (j, rx) = job(100);
        assert_eq!(q.submit(j, 100), Admission::Expired);
        assert_eq!(rx.recv().unwrap(), ServeResponse::Timeout);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn high_water_sheds_and_bounds_memory() {
        let q = DeadlineQueue::new(2);
        let mut rxs = Vec::new();
        for _ in 0..2 {
            let (j, rx) = job(u64::MAX);
            assert_eq!(q.submit(j, 0), Admission::Queued);
            rxs.push(rx);
        }
        let (j, rx) = job(u64::MAX);
        assert_eq!(q.submit(j, 0), Admission::Shed);
        assert_eq!(rx.recv().unwrap(), ServeResponse::Shed);
        assert_eq!(q.depth(), 2, "shed must not grow the queue");
    }

    #[test]
    fn queued_jobs_expire_at_batch_formation() {
        let q = DeadlineQueue::new(8);
        let (early, early_rx) = job(50);
        let (late, late_rx) = job(u64::MAX);
        q.submit(early, 0);
        q.submit(late, 0);
        // Clock has advanced past the first deadline by drain time.
        let batch = q.pop_batch(60, 8, None);
        assert_eq!(batch.len(), 1);
        assert_eq!(early_rx.recv().unwrap(), ServeResponse::Timeout);
        batch.into_iter().next().unwrap().respond(ServeResponse::Ok(vec![1.0]));
        assert_eq!(late_rx.recv().unwrap(), ServeResponse::Ok(vec![1.0]));
    }

    #[test]
    fn close_drains_pending_and_refuses_new_work() {
        let q = DeadlineQueue::new(4);
        let (j, queued_rx) = job(u64::MAX);
        assert_eq!(q.submit(j, 0), Admission::Queued);
        let pending = q.close_and_drain();
        assert_eq!(pending.len(), 1, "close must hand back every queued job");
        for job in pending {
            job.respond(ServeResponse::Error("worker gone".into()));
        }
        assert_eq!(queued_rx.recv().unwrap().status(), "ERROR");
        // Post-close submissions are refused immediately, never queued.
        let (j, rx) = job(u64::MAX);
        assert_eq!(q.submit(j, 0), Admission::Rejected);
        assert_eq!(rx.recv().unwrap().status(), "ERROR");
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn batch_size_is_respected_fifo_order_kept() {
        let q = DeadlineQueue::new(16);
        for _ in 0..5 {
            let (j, rx) = job(u64::MAX);
            q.submit(j, 0);
            std::mem::forget(rx);
        }
        assert_eq!(q.pop_batch(0, 3, None).len(), 3);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_batch(0, 3, None).len(), 2);
    }
}
