//! Experiment scale presets: one knob trading fidelity against CPU budget.
//!
//! The paper trains on 8× Titan RTX GPUs; this reproduction runs on CPU
//! with an interpreted autograd, so experiments default to reduced node
//! counts, days, and epochs. `full()` restores the paper's dimensions.

/// How big an experiment run should be.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Fraction of Table I node/day counts to simulate, in `(0, 1]`.
    pub dataset_scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Independent repeats (the paper uses 5).
    pub repeats: usize,
    /// Cap on train batches per epoch (`None` = all).
    pub max_train_batches: Option<usize>,
    /// Cap on evaluated test samples (`None` = all). Samples are strided
    /// across the test range, not truncated from its head.
    pub max_test_samples: Option<usize>,
}

impl ExperimentScale {
    /// Seconds-scale runs for unit/integration tests.
    pub fn smoke() -> Self {
        ExperimentScale {
            dataset_scale: 0.04,
            epochs: 1,
            batch_size: 8,
            repeats: 1,
            max_train_batches: Some(6),
            max_test_samples: Some(24),
        }
    }

    /// Minutes-scale runs for the examples and benches.
    pub fn quick() -> Self {
        ExperimentScale {
            dataset_scale: 0.08,
            epochs: 4,
            batch_size: 16,
            repeats: 1,
            max_train_batches: Some(40),
            max_test_samples: Some(120),
        }
    }

    /// Hours-scale runs closer to the paper's statistical setup
    /// (still reduced from the full PeMS dimensions).
    pub fn thorough() -> Self {
        ExperimentScale {
            dataset_scale: 0.15,
            epochs: 12,
            batch_size: 32,
            repeats: 3,
            max_train_batches: None,
            max_test_samples: Some(400),
        }
    }

    /// The paper's dimensions (requires serious compute).
    pub fn full() -> Self {
        ExperimentScale {
            dataset_scale: 1.0,
            epochs: 50,
            batch_size: 64,
            repeats: 5,
            max_train_batches: None,
            max_test_samples: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordered_by_cost() {
        let s = ExperimentScale::smoke();
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(s.dataset_scale < q.dataset_scale);
        assert!(q.dataset_scale < f.dataset_scale);
        assert!(s.epochs <= q.epochs && q.epochs <= f.epochs);
        assert_eq!(f.repeats, 5); // the paper's repeat count
        assert_eq!(f.batch_size, 64); // the paper's batch size
        assert!(f.max_test_samples.is_none());
    }
}
