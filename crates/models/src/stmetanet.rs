//! ST-MetaNet (Pan et al., KDD 2019): deep meta learning for traffic
//! prediction. Node meta knowledge (static geo-graph attributes) is fed
//! through meta-learner MLPs that *generate* the weights of the sequence
//! model — here realised as FiLM-style hypernetworks producing per-node
//! scales/biases for shared GRU cells — plus a meta graph-attention layer
//! between encoder and decoder.
//!
//! The reliance on static ("invariant prior") node knowledge is exactly
//! what the paper blames for ST-MetaNet's large degradation on difficult
//! intervals (§V-B).

use rand::rngs::StdRng;
use traffic_nn::{GraphAttention, GruCell, Linear, ParamStore};
use traffic_tensor::{Tape, Tensor, Var};

use crate::common::{GraphContext, TrafficModel, TrainCtx};
use crate::meta::{taxonomy, ModelMeta};

/// ST-MetaNet hyper-parameters.
#[derive(Debug, Clone)]
pub struct StMetaNetConfig {
    /// GRU hidden width.
    pub hidden: usize,
    /// Meta-learner hidden width.
    pub meta_hidden: usize,
    /// GAT heads.
    pub heads: usize,
    /// Horizons / features.
    pub t_in: usize,
    pub t_out: usize,
    pub in_features: usize,
}

impl Default for StMetaNetConfig {
    fn default() -> Self {
        StMetaNetConfig {
            hidden: 16,
            meta_hidden: 16,
            heads: 2,
            t_in: 12,
            t_out: 12,
            in_features: 2,
        }
    }
}

/// The ST-MetaNet model.
pub struct StMetaNet {
    store: ParamStore,
    /// Node meta-knowledge input `[N, D_meta]` (spectral embedding +
    /// degree), a constant of the graph.
    node_meta: Tensor,
    /// Meta learner producing per-node FiLM parameters for the encoder.
    meta_enc: (Linear, Linear),
    /// Meta learner for the decoder.
    meta_dec: (Linear, Linear),
    encoder: GruCell,
    gat: GraphAttention,
    gat_proj: Linear,
    decoder: GruCell,
    proj: Linear,
    cfg: StMetaNetConfig,
}

impl StMetaNet {
    /// Builds ST-MetaNet for a graph context.
    pub fn new(ctx: &GraphContext, cfg: StMetaNetConfig, rng: &mut StdRng) -> Self {
        let mut store = ParamStore::new();
        // Node meta knowledge: spectral embedding + in/out degree.
        let n = ctx.n;
        let se = &ctx.node_embedding;
        let d_se = se.shape()[1];
        let mut meta = Tensor::zeros(&[n, d_se + 2]);
        {
            let buf = meta.make_mut();
            let adj = ctx.adjacency.as_slice();
            for i in 0..n {
                for d in 0..d_se {
                    buf[i * (d_se + 2) + d] = se.at(&[i, d]);
                }
                let out_deg: f32 = (0..n).map(|j| adj[i * n + j]).sum();
                let in_deg: f32 = (0..n).map(|j| adj[j * n + i]).sum();
                buf[i * (d_se + 2) + d_se] = out_deg / n as f32;
                buf[i * (d_se + 2) + d_se + 1] = in_deg / n as f32;
            }
        }
        let d_meta = d_se + 2;
        let film = 2 * cfg.hidden; // scale + bias per hidden unit
        let meta_enc = (
            Linear::new(&mut store, "meta_enc.l1", d_meta, cfg.meta_hidden, true, rng),
            Linear::new(&mut store, "meta_enc.l2", cfg.meta_hidden, film, true, rng),
        );
        let meta_dec = (
            Linear::new(&mut store, "meta_dec.l1", d_meta, cfg.meta_hidden, true, rng),
            Linear::new(&mut store, "meta_dec.l2", cfg.meta_hidden, film, true, rng),
        );
        let encoder = GruCell::new(&mut store, "encoder", cfg.in_features, cfg.hidden, rng);
        let f_head = cfg.hidden / cfg.heads;
        assert!(cfg.hidden.is_multiple_of(cfg.heads), "hidden must divide heads");
        let gat = GraphAttention::new(
            &mut store,
            "gat",
            &ctx.adjacency,
            cfg.heads,
            cfg.hidden,
            f_head,
            rng,
        );
        let gat_proj = Linear::new(&mut store, "gat_proj", cfg.hidden, cfg.hidden, true, rng);
        let decoder = GruCell::new(&mut store, "decoder", 1, cfg.hidden, rng);
        let proj = Linear::new(&mut store, "proj", cfg.hidden, 1, true, rng);
        StMetaNet {
            store,
            node_meta: meta,
            meta_enc,
            meta_dec,
            encoder,
            gat,
            gat_proj,
            decoder,
            proj,
            cfg,
        }
    }

    /// Runs a meta learner: `[N, D_meta] -> ([1, N, H] scale, [1, N, H] bias)`.
    fn film<'t>(&self, tape: &'t Tape, learner: &(Linear, Linear)) -> (Var<'t>, Var<'t>) {
        let meta = tape.constant(self.node_meta.clone());
        let h = learner.0.forward(tape, meta).relu();
        let out = learner.1.forward(tape, h); // [N, 2H]
        let n = self.node_meta.shape()[0];
        let scale = out.narrow(1, 0, self.cfg.hidden).reshape(&[1, n, self.cfg.hidden]);
        let bias =
            out.narrow(1, self.cfg.hidden, self.cfg.hidden).reshape(&[1, n, self.cfg.hidden]);
        (scale, bias)
    }

    /// Applies FiLM modulation: `h ⊙ (1 + scale) + bias` on `[B, N, H]`.
    fn modulate<'t>(h: Var<'t>, scale: &Var<'t>, bias: &Var<'t>) -> Var<'t> {
        h.mul(&scale.add_scalar(1.0)).add(bias)
    }
}

impl TrafficModel for StMetaNet {
    fn name(&self) -> &'static str {
        "ST-MetaNet"
    }

    fn meta(&self) -> ModelMeta {
        *taxonomy("ST-MetaNet").expect("taxonomy entry")
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        x: Var<'t>,
        mut train: Option<&mut TrainCtx<'_>>,
    ) -> Var<'t> {
        use rand::Rng;
        let shape = x.shape();
        let (b, t_in, n, c) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(t_in, self.cfg.t_in);
        let h_dim = self.cfg.hidden;
        let (enc_scale, enc_bias) = self.film(tape, &self.meta_enc);
        let (dec_scale, dec_bias) = self.film(tape, &self.meta_dec);
        // ---- encoder: shared GRU over [B·N, C], FiLM per node ----
        let mut h = tape.constant(Tensor::zeros(&[b * n, h_dim]));
        for t in 0..t_in {
            let xt = x.narrow(1, t, 1).reshape(&[b * n, c]);
            h = self.encoder.step(tape, xt, h);
            let hb = h.reshape(&[b, n, h_dim]);
            h = Self::modulate(hb, &enc_scale, &enc_bias).reshape(&[b * n, h_dim]);
        }
        // ---- meta-GAT spatial mixing ----
        let hb = h.reshape(&[b, n, h_dim]);
        let sp = self.gat.forward(tape, hb); // [B, N, H] (heads concat = H)
        let mixed = self.gat_proj.forward(tape, sp).relu().add(&hb); // residual
                                                                     // ---- decoder (meta-GAT interleaved, as in the original's
                                                                     // RNN → meta-GAT → RNN stacking) ----
        let mut hd = mixed.reshape(&[b * n, h_dim]);
        let mut dec_in = tape.constant(Tensor::zeros(&[b * n, 1]));
        let mut outs = Vec::with_capacity(self.cfg.t_out);
        for t in 0..self.cfg.t_out {
            hd = self.decoder.step(tape, dec_in, hd);
            let hdb = hd.reshape(&[b, n, h_dim]);
            // Spatial mixing through the meta-GAT every decode step keeps
            // the forecast anchored to static neighbourhood knowledge.
            let sp = self.gat.forward(tape, hdb);
            let hdb = self.gat_proj.forward(tape, sp).relu().add(&hdb);
            hd = Self::modulate(hdb, &dec_scale, &dec_bias).reshape(&[b * n, h_dim]);
            let y = self.proj.forward(tape, hd); // [B·N, 1]
            outs.push(y.reshape(&[b, 1, n]));
            let use_teacher = train.as_deref_mut().is_some_and(|ctx| {
                ctx.teacher.is_some() && ctx.rng.gen::<f32>() < ctx.teacher_prob
            });
            dec_in = if use_teacher {
                let teach = train.as_deref().and_then(|c| c.teacher).expect("checked above");
                tape.constant(teach.narrow(1, t, 1).reshape(&[b * n, 1]))
            } else {
                y
            };
        }
        Var::concat(&outs, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use traffic_graph::freeway_corridor;

    fn setup() -> (GraphContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(9);
        let net = freeway_corridor(6, 1.0, &mut rng);
        (GraphContext::from_network(&net, 4), rng)
    }

    #[test]
    fn forward_shape() {
        let (ctx, mut rng) = setup();
        let model = StMetaNet::new(&ctx, StMetaNetConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[2, 12, 6, 2]));
        let y = model.forward(&tape, x, None);
        assert_eq!(y.shape(), vec![2, 12, 6]);
    }

    #[test]
    fn node_meta_includes_embedding_and_degree() {
        let (ctx, mut rng) = setup();
        let model = StMetaNet::new(&ctx, StMetaNetConfig::default(), &mut rng);
        assert_eq!(model.node_meta.shape(), &[6, 6]); // 4 SE dims + 2 degrees
        assert!(!model.node_meta.has_non_finite());
        // degrees positive
        for i in 0..6 {
            assert!(model.node_meta.at(&[i, 4]) > 0.0);
        }
    }

    #[test]
    fn film_differs_across_nodes() {
        let (ctx, mut rng) = setup();
        let model = StMetaNet::new(&ctx, StMetaNetConfig::default(), &mut rng);
        let tape = Tape::new();
        let (scale, _bias) = model.film(&tape, &model.meta_enc);
        let v = scale.value();
        // At least two nodes should get different FiLM scales.
        let row =
            |i: usize| -> Vec<f32> { (0..model.cfg.hidden).map(|h| v.at(&[0, i, h])).collect() };
        assert_ne!(row(0), row(5));
    }

    #[test]
    fn grads_reach_meta_learners() {
        let (ctx, mut rng) = setup();
        let model = StMetaNet::new(&ctx, StMetaNetConfig::default(), &mut rng);
        let tape = Tape::new();
        let x = tape.constant(traffic_tensor::init::uniform(&[1, 12, 6, 2], -1.0, 1.0, &mut rng));
        let y = model.forward(&tape, x, None);
        let grads = tape.backward(y.powf(2.0).mean_all());
        model.store().capture_grads(&tape, &grads);
        for p in model.store().params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn teacher_forcing_changes_rollout() {
        let (ctx, mut rng) = setup();
        let model = StMetaNet::new(&ctx, StMetaNetConfig::default(), &mut rng);
        let teacher = Tensor::full(&[1, 12, 6], 2.0);
        let run = |prob: f32| {
            let tape = Tape::new();
            let x = tape.constant(Tensor::zeros(&[1, 12, 6, 2]));
            let mut trng = StdRng::seed_from_u64(3);
            let mut ctx2 = TrainCtx { rng: &mut trng, teacher: Some(&teacher), teacher_prob: prob };
            model.forward(&tape, x, Some(&mut ctx2)).value()
        };
        assert_ne!(run(1.0), run(0.0));
    }
}
