//! Convolution layers over `[B, C, N, T]` spatio-temporal tensors.

use rand::Rng;
use traffic_tensor::{init, Tape, Tensor, Var};

use crate::param::{Param, ParamStore};

/// How a [`Conv2d`] pads its input along the time axis before convolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalPadding {
    /// No padding — output shrinks by `(k-1)·dilation` (STGCN style).
    Valid,
    /// Left-pad by `(k-1)·dilation` so output length equals input length and
    /// position `t` only sees inputs `≤ t` (WaveNet causal convolution).
    Causal,
    /// Symmetric padding keeping the output length equal (odd kernels only).
    Same,
}

/// Stride-1 2-D convolution, `[B, C_in, N, T] -> [B, C_out, N, T']`.
///
/// Kernel height (node axis) is usually 1 in traffic models; spatial mixing
/// is done by graph convolutions instead.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    kernel: (usize, usize),
    dilation: (usize, usize),
    padding: TemporalPadding,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-uniform weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        dilation: (usize, usize),
        padding: TemporalPadding,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        if padding == TemporalPadding::Same {
            assert!(kernel.1 % 2 == 1, "Same padding requires odd temporal kernel");
        }
        let weight = store.add(
            format!("{prefix}.weight"),
            init::kaiming_uniform(&[out_channels, in_channels, kernel.0, kernel.1], rng),
        );
        let bias =
            bias.then(|| store.add(format!("{prefix}.bias"), Tensor::zeros(&[out_channels])));
        Conv2d { weight, bias, kernel, dilation, padding }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Forward pass on `[B, C, N, T]`.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let x = match self.padding {
            TemporalPadding::Valid => x,
            TemporalPadding::Causal => {
                let p = (self.kernel.1 - 1) * self.dilation.1;
                x.pad(&[(0, 0), (0, 0), (0, 0), (p, 0)])
            }
            TemporalPadding::Same => {
                let p = (self.kernel.1 - 1) * self.dilation.1 / 2;
                x.pad(&[(0, 0), (0, 0), (0, 0), (p, p)])
            }
        };
        let w = self.weight.var(tape);
        let y = x.conv2d(&w, self.dilation.0, self.dilation.1);
        match &self.bias {
            Some(b) => {
                // bias broadcast over [B, C, N, T]: reshape to [C, 1, 1]
                let c = self.out_channels();
                y.add(&b.var(tape).reshape(&[c, 1, 1]))
            }
            None => y,
        }
    }
}

/// Gated temporal convolution used by STGCN and Graph-WaveNet:
/// `tanh(conv_f(x)) ⊙ sigmoid(conv_g(x))`.
pub struct GatedTemporalConv {
    filter: Conv2d,
    gate: Conv2d,
}

impl GatedTemporalConv {
    /// Builds the filter/gate pair with a shared configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_channels: usize,
        out_channels: usize,
        kernel_t: usize,
        dilation_t: usize,
        padding: TemporalPadding,
        rng: &mut impl Rng,
    ) -> Self {
        let filter = Conv2d::new(
            store,
            &format!("{prefix}.filter"),
            in_channels,
            out_channels,
            (1, kernel_t),
            (1, dilation_t),
            padding,
            true,
            rng,
        );
        let gate = Conv2d::new(
            store,
            &format!("{prefix}.gate"),
            in_channels,
            out_channels,
            (1, kernel_t),
            (1, dilation_t),
            padding,
            true,
            rng,
        );
        GatedTemporalConv { filter, gate }
    }

    /// `tanh(F(x)) ⊙ σ(G(x))` on `[B, C, N, T]`, as one fused tape node
    /// (`Var::gated_tanh_sigmoid`): single-pass forward and backward
    /// instead of three elementwise ops, bit-identical arithmetic.
    pub fn forward<'t>(&self, tape: &'t Tape, x: Var<'t>) -> Var<'t> {
        let f = self.filter.forward(tape, x);
        let g = self.gate.forward(tape, x);
        f.gated_tanh_sigmoid(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traffic_tensor::Tape;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn valid_shrinks_time() {
        let mut store = ParamStore::new();
        let conv = Conv2d::new(
            &mut store,
            "c",
            2,
            4,
            (1, 3),
            (1, 1),
            TemporalPadding::Valid,
            true,
            &mut rng(),
        );
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 2, 5, 12]));
        let y = conv.forward(&tape, x);
        assert_eq!(y.shape(), vec![2, 4, 5, 10]);
    }

    #[test]
    fn causal_preserves_time_and_causality() {
        let mut store = ParamStore::new();
        let conv = Conv2d::new(
            &mut store,
            "c",
            1,
            1,
            (1, 2),
            (1, 2),
            TemporalPadding::Causal,
            false,
            &mut rng(),
        );
        let tape = Tape::new();
        // impulse at t = 5
        let mut imp = vec![0.0f32; 12];
        imp[5] = 1.0;
        let x = tape.constant(Tensor::from_vec(imp, &[1, 1, 1, 12]));
        let y = conv.forward(&tape, x).value();
        assert_eq!(y.shape(), &[1, 1, 1, 12]);
        // response must be zero strictly before t = 5
        for t in 0..5 {
            assert_eq!(y.at(&[0, 0, 0, t]), 0.0, "acausal leak at t={t}");
        }
    }

    #[test]
    fn same_keeps_length() {
        let mut store = ParamStore::new();
        let conv = Conv2d::new(
            &mut store,
            "c",
            1,
            3,
            (1, 3),
            (1, 1),
            TemporalPadding::Same,
            true,
            &mut rng(),
        );
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 1, 4, 7]));
        assert_eq!(conv.forward(&tape, x).shape(), vec![1, 3, 4, 7]);
    }

    #[test]
    fn gated_conv_bounded_output() {
        let mut store = ParamStore::new();
        let g = GatedTemporalConv::new(
            &mut store,
            "g",
            2,
            3,
            2,
            1,
            TemporalPadding::Causal,
            &mut rng(),
        );
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 2, 3, 6]));
        let y = g.forward(&tape, x).value();
        assert_eq!(y.shape(), &[1, 3, 3, 6]);
        // tanh × sigmoid is bounded by (-1, 1)
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn grads_reach_conv_weights() {
        let mut store = ParamStore::new();
        let conv = Conv2d::new(
            &mut store,
            "c",
            2,
            2,
            (1, 2),
            (1, 1),
            TemporalPadding::Causal,
            true,
            &mut rng(),
        );
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 2, 2, 4]));
        let loss = conv.forward(&tape, x).powf(2.0).mean_all();
        let grads = tape.backward(loss);
        store.capture_grads(&tape, &grads);
        for p in store.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
