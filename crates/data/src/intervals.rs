//! Difficult-interval extraction (paper §V-B): compute a moving standard
//! deviation with a 30-minute window, then keep the steps in the upper 25%
//! of that statistic per sensor.

use traffic_tensor::Tensor;

/// 30 minutes at 5-minute resolution.
pub const PAPER_WINDOW: usize = 6;
/// Upper 25% (the paper's choice).
pub const PAPER_QUANTILE: f64 = 0.75;

/// Trailing moving standard deviation of a `[T]` series.
///
/// Position `t` covers `[t-window+1, t]`; the first `window-1` positions
/// use the shorter available prefix.
pub fn moving_std(series: &Tensor, window: usize) -> Tensor {
    assert!(window >= 1, "window must be >= 1");
    assert_eq!(series.rank(), 1, "moving_std expects a [T] series");
    let t = series.len();
    let x = series.as_slice();
    let mut out = vec![0.0f32; t];
    // Incremental sums for O(T) total work.
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for i in 0..t {
        sum += x[i] as f64;
        sum_sq += (x[i] as f64) * (x[i] as f64);
        if i >= window {
            sum -= x[i - window] as f64;
            sum_sq -= (x[i - window] as f64) * (x[i - window] as f64);
        }
        let len = (i + 1).min(window) as f64;
        let mean = sum / len;
        let var = (sum_sq / len - mean * mean).max(0.0);
        out[i] = var.sqrt() as f32;
    }
    Tensor::from_vec(out, &[t])
}

/// Empirical quantile of a slice (linear interpolation between order
/// statistics). `q ∈ [0, 1]`.
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q));
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Boolean (0/1) mask `[T, N]` marking the difficult steps of each sensor:
/// steps whose moving-std lies in the upper `1 − q` fraction for that
/// sensor.
pub fn difficult_mask(values: &Tensor, window: usize, q: f64) -> Tensor {
    difficult_mask_range(values, window, q, 0..values.shape()[0])
}

/// Like [`difficult_mask`], but the per-sensor quantile threshold is fitted
/// on (and the mask restricted to) the step range `range` — used to extract
/// difficult intervals of the *test* region specifically, as the paper's
/// §V-B evaluation does.
pub fn difficult_mask_range(
    values: &Tensor,
    window: usize,
    q: f64,
    range: std::ops::Range<usize>,
) -> Tensor {
    assert_eq!(values.rank(), 2, "difficult_mask expects [T, N]");
    let (t, n) = (values.shape()[0], values.shape()[1]);
    assert!(range.end <= t && !range.is_empty(), "invalid range {range:?} for {t} steps");
    let data = values.as_slice();
    let mut mask = vec![0.0f32; t * n];
    for i in 0..n {
        let series = Tensor::from_vec((0..t).map(|k| data[k * n + i]).collect(), &[t]);
        let ms = moving_std(&series, window);
        let in_range: Vec<f32> = range.clone().map(|k| ms.at(&[k])).collect();
        let thresh = quantile(&in_range, q);
        for k in range.clone() {
            if ms.at(&[k]) >= thresh {
                mask[k * n + i] = 1.0;
            }
        }
    }
    Tensor::from_vec(mask, &[t, n])
}

/// Contiguous `[start, end)` runs of difficult steps for one sensor —
/// the blue-shaded intervals of the paper's Fig 3.
pub fn difficult_runs(mask: &Tensor, node: usize) -> Vec<(usize, usize)> {
    let (t, n) = (mask.shape()[0], mask.shape()[1]);
    assert!(node < n);
    let data = mask.as_slice();
    let mut runs = Vec::new();
    let mut start = None;
    for k in 0..t {
        let on = data[k * n + node] > 0.5;
        match (on, start) {
            (true, None) => start = Some(k),
            (false, Some(s)) => {
                runs.push((s, k));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push((s, t));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_std_constant_is_zero() {
        let s = Tensor::full(&[20], 5.0);
        let ms = moving_std(&s, 6);
        assert!(ms.as_slice().iter().all(|&v| v.abs() < 1e-4));
    }

    #[test]
    fn moving_std_spikes_on_jump() {
        let mut v = vec![10.0f32; 30];
        for x in v.iter_mut().skip(15).take(3) {
            *x = 0.0; // abrupt drop
        }
        let ms = moving_std(&Tensor::from_vec(v, &[30]), 6);
        // std near the jump must dominate the flat regions
        let peak = (13..22).map(|i| ms.at(&[i])).fold(0.0f32, f32::max);
        let flat = ms.at(&[8]);
        assert!(peak > flat + 1.0, "peak {peak} flat {flat}");
    }

    #[test]
    fn moving_std_matches_naive() {
        let x = Tensor::from_vec(vec![1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 1.0], &[7]);
        let w = 3;
        let ms = moving_std(&x, w);
        for t in 0..7usize {
            let lo = t.saturating_sub(w - 1);
            let window: Vec<f32> = (lo..=t).map(|k| x.at(&[k])).collect();
            let mean: f32 = window.iter().sum::<f32>() / window.len() as f32;
            let var: f32 =
                window.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / window.len() as f32;
            assert!((ms.at(&[t]) - var.sqrt()).abs() < 1e-4, "t={t}");
        }
    }

    #[test]
    fn quantile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
    }

    #[test]
    fn difficult_mask_selects_upper_quartile() {
        // sensor 0 volatile in second half; sensor 1 flat
        let t = 200;
        let mut v = vec![0.0f32; t * 2];
        for k in 0..t {
            v[k * 2] = if k >= 100 {
                if k % 2 == 0 {
                    10.0
                } else {
                    50.0
                }
            } else {
                30.0
            };
            v[k * 2 + 1] = 25.0;
        }
        let mask = difficult_mask(&Tensor::from_vec(v, &[t, 2]), PAPER_WINDOW, PAPER_QUANTILE);
        let frac0: f32 = (0..t).map(|k| mask.at(&[k, 0])).sum::<f32>() / t as f32;
        // roughly a quarter of steps marked, all in the volatile half
        assert!(frac0 > 0.2 && frac0 < 0.6, "frac {frac0}");
        let early: f32 = (0..90).map(|k| mask.at(&[k, 0])).sum();
        assert_eq!(early, 0.0, "flat half should not be difficult");
    }

    #[test]
    fn runs_extraction() {
        let mask = Tensor::from_vec(
            [0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0].iter().flat_map(|&v| [v]).collect(),
            &[8, 1],
        );
        let runs = difficult_runs(&mask, 0);
        assert_eq!(runs, vec![(1, 3), (4, 5), (6, 8)]);
    }
}
