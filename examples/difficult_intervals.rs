//! Fig 2: MAE and relative degradation on abruptly-changing ("difficult")
//! intervals — 30-minute moving std, upper 25% — on METR-LA.
//!
//! ```text
//! cargo run --release --example difficult_intervals [-- --scale smoke|quick]
//! ```

use traffic_suite::core::{difficult_interval_experiment, fig2_csv_rows, render_fig2, write_csv};
use traffic_suite::models::ALL_MODELS;
use traffic_suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("== Fig 2: difficult intervals on METR-LA ==\n");
    let rows = difficult_interval_experiment("METR-LA", &ALL_MODELS, &scale);
    print!("{}", render_fig2(&rows));
    println!("\nPaper shape checks:");
    let worst = rows
        .iter()
        .filter(|r| r.degradation_pct.is_finite())
        .max_by(|a, b| a.degradation_pct.partial_cmp(&b.degradation_pct).unwrap());
    let best = rows
        .iter()
        .filter(|r| r.degradation_pct.is_finite())
        .min_by(|a, b| a.degradation_pct.partial_cmp(&b.degradation_pct).unwrap());
    if let (Some(w), Some(b)) = (worst, best) {
        println!("  most robust (paper: ASTGCN): {} ({:+.1}%)", b.model, b.degradation_pct);
        println!("  least robust (paper: ST-MetaNet): {} ({:+.1}%)", w.model, w.degradation_pct);
    }
    let (headers, csv) = fig2_csv_rows(&rows);
    let out = std::path::Path::new("reports/fig2_difficult_intervals.csv");
    match write_csv(out, &headers, &csv) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
