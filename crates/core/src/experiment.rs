//! The paper's experiments: Fig 1 (model comparison across datasets and
//! horizons), Fig 2 (difficult intervals + degradation), Fig 3 (per-road
//! case study).
//!
//! Sweeps are **panic-isolated**: each (dataset, model) cell runs under
//! [`run_cell`], so one model blowing up (a panic in a kernel, an
//! injected fault, a pathological config) marks only that cell as failed
//! — [`Fig1Row::error`] / [`Fig2Row::error`] — instead of killing the
//! whole cross-product. Failed cells carry NaN metrics, which every
//! downstream aggregate (findings, winners) already filters out.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_data::{
    dataset_info, difficult_mask_range, difficult_runs, moving_std, prepare, simulate,
    PreparedData, SimConfig, TrafficDataset, WindowedData, PAPER_QUANTILE, PAPER_WINDOW,
};
use traffic_metrics::{
    degradation_pct, evaluate, evaluate_horizons, mean_std, MetricSet, PAPER_HORIZONS,
    PAPER_HORIZON_LABELS,
};
use traffic_models::{build_model, GraphContext, TrafficModel};
use traffic_tensor::Tensor;

use crate::scale::ExperimentScale;
use crate::trainer::{predict, train, TrainConfig, TrainReport};

/// Extracts the human-readable message from a panic payload.
pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one experiment cell with panic isolation: a panic inside `f`
/// becomes `Err(reason)` (counted under `experiment/failed_cells` and
/// emitted as a `cell_failed` event) instead of unwinding through the
/// sweep. `AssertUnwindSafe` is sound here because a failed cell's state
/// (model, tapes) is dropped wholesale — nothing half-mutated survives.
pub(crate) fn run_cell<T>(label: &str, f: impl FnOnce() -> T) -> Result<T, String> {
    // Cell scope in serial and parallel sweeps alike: events from this
    // thread gain a `cell` tag, and fault plans restricted by cell
    // (`TRAFFIC_FAULT_CELL`) count calls identically in both modes.
    let _scope = traffic_obs::CellScope::enter(label);
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let reason = panic_reason(payload.as_ref());
            traffic_obs::counter("experiment/failed_cells").inc();
            traffic_obs::emit_with(|| {
                traffic_obs::Event::new("cell_failed")
                    .with("cell", label.to_string())
                    .with("reason", reason.clone())
            });
            eprintln!("traffic-resilience: experiment cell {label} failed: {reason}");
            Err(reason)
        }
    }
}

/// A simulated dataset, windowed and ready to train on.
pub struct PreparedExperiment {
    /// The simulated dataset.
    pub dataset: TrafficDataset,
    /// Windowed splits + scaler.
    pub data: PreparedData,
    /// Graph matrices.
    pub ctx: GraphContext,
}

/// Simulates and prepares one of the catalog datasets at the given scale.
/// Each stage (simulate, windowing, graph matrices) runs under its own
/// span, and a `dataset_prepared` event summarises the result.
pub fn prepare_experiment(name: &str, scale: &ExperimentScale, seed: u64) -> PreparedExperiment {
    let _phase = traffic_obs::live::phase(traffic_obs::live::Phase::Prepare);
    let info = dataset_info(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let cfg = SimConfig::for_dataset(info, scale.dataset_scale).with_seed(seed);
    let prep_span = traffic_obs::span!("prepare", dataset = name, seed = seed);

    let sim_span = traffic_obs::span!("simulate");
    let dataset = simulate(&cfg);
    sim_span.finish();

    let window_span = traffic_obs::span!("window");
    let data = prepare(&dataset, 12, 12);
    window_span.finish();

    let graph_span = traffic_obs::span!("graph");
    let ctx = GraphContext::from_network(&dataset.network, 8);
    graph_span.finish();

    let prep_s = prep_span.finish().as_secs_f64();
    traffic_obs::emit_with(|| {
        traffic_obs::Event::new("dataset_prepared")
            .with("dataset", name)
            .with("nodes", dataset.num_nodes() as u64)
            .with("steps", dataset.values.shape()[0] as u64)
            .with("train_windows", data.train.len() as u64)
            .with("val_windows", data.val.len() as u64)
            .with("test_windows", data.test.len() as u64)
            .with("prepare_s", prep_s)
    });
    PreparedExperiment { dataset, data, ctx }
}

/// Restricts a test split to the configured evaluation budget.
pub fn eval_split(test: &WindowedData, scale: &ExperimentScale) -> WindowedData {
    match scale.max_test_samples {
        Some(cap) if test.len() > cap => {
            let k = test.len().div_ceil(cap);
            test.stride(k)
        }
        _ => test.clone(),
    }
}

/// Trains one model (fresh init from `seed`) and returns it with its
/// training report.
pub fn train_model(
    name: &str,
    exp: &PreparedExperiment,
    scale: &ExperimentScale,
    seed: u64,
) -> (Box<dyn TrafficModel>, TrainReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = build_model(name, &exp.ctx, &mut rng);
    let profile = traffic_models::train_profile(name);
    let cfg = TrainConfig {
        epochs: ((scale.epochs as f32 * profile.epoch_multiplier).ceil() as usize).max(1),
        batch_size: scale.batch_size,
        max_batches_per_epoch: scale.max_train_batches,
        lr: profile.lr,
        seed,
        ..Default::default()
    };
    let report = train(model.as_ref(), &exp.data, &cfg);
    (model, report)
}

// ---------------------------------------------------------------------
// Fig 1: model comparison
// ---------------------------------------------------------------------

/// One (dataset, model, horizon) cell of Fig 1, aggregated over repeats.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// "15 min" / "30 min" / "60 min".
    pub horizon: &'static str,
    /// (mean, std) over repeats.
    pub mae: (f32, f32),
    /// (mean, std) over repeats.
    pub rmse: (f32, f32),
    /// (mean, std) over repeats, percent.
    pub mape: (f32, f32),
    /// `Some(reason)` when this cell's training/evaluation panicked and
    /// was isolated; metrics are then NaN and excluded from aggregates.
    pub error: Option<String>,
}

impl Fig1Row {
    /// A failed cell: NaN metrics plus the panic reason.
    pub fn failed(dataset: &str, model: &str, horizon: &'static str, reason: String) -> Self {
        let nan = (f32::NAN, f32::NAN);
        Fig1Row {
            dataset: dataset.to_string(),
            model: model.to_string(),
            horizon,
            mae: nan,
            rmse: nan,
            mape: nan,
            error: Some(reason),
        }
    }
}

/// Runs the Fig 1 cross-product: every model on every dataset, evaluated at
/// 15/30/60 minutes, `scale.repeats` times. Each (dataset, model) cell is
/// panic-isolated: a crash yields [`Fig1Row::failed`] rows for its three
/// horizons and the sweep continues.
///
/// Cells run on the experiment scheduler ([`crate::sched::run_cells`]):
/// `TRAFFIC_JOBS=N` trains N cells concurrently, each on its own core
/// group of the compute pool; rows come back in canonical
/// (dataset, model, horizon) order and bit-identical to `TRAFFIC_JOBS=1`
/// (the exact legacy serial path) because every cell seeds its own RNGs.
pub fn model_comparison(
    datasets: &[&str],
    models: &[&str],
    scale: &ExperimentScale,
) -> Vec<Fig1Row> {
    // Phase 1: prepare every dataset (scheduled cells, so one bad
    // dataset fails its own rows instead of sinking the sweep).
    let prep_cells: Vec<(String, _)> = datasets
        .iter()
        .map(|&ds| {
            (format!("fig1/{ds}/prepare"), move || {
                let exp = prepare_experiment(ds, scale, 42);
                let test = eval_split(&exp.data.test, scale);
                (exp, test)
            })
        })
        .collect();
    let prepared = crate::sched::run_cells("fig1/prepare", prep_cells);

    // Phase 2: one scheduled cell per (dataset, model); cells borrow
    // their dataset's PreparedExperiment by shared reference (Tensors
    // are Arc-backed, so this is cheap and thread-safe).
    let mut train_cells = Vec::new();
    for (di, &ds) in datasets.iter().enumerate() {
        let Ok((exp, test)) = &prepared[di].result else { continue };
        for &m in models {
            train_cells.push((format!("fig1/{ds}/{m}"), move || {
                // per-repeat metric collection: [horizon][repeat]
                let mut mae = vec![Vec::new(); 3];
                let mut rmse = vec![Vec::new(); 3];
                let mut mape = vec![Vec::new(); 3];
                for rep in 0..scale.repeats {
                    let (model, _report) = train_model(m, exp, scale, 1000 + rep as u64);
                    let pred = predict(model.as_ref(), test, &exp.data.scaler, scale.batch_size);
                    let metrics = evaluate_horizons(&pred, &test.y_raw, &PAPER_HORIZONS, None);
                    for (h, met) in metrics.iter().enumerate() {
                        mae[h].push(met.mae);
                        rmse[h].push(met.rmse);
                        mape[h].push(met.mape);
                    }
                }
                (mae, rmse, mape)
            }));
        }
    }
    let outcomes = crate::sched::run_cells("fig1", train_cells);

    // Deterministic collection: emit rows in canonical
    // (dataset, model, horizon) order regardless of completion order.
    let mut rows = Vec::new();
    let mut next_outcome = outcomes.iter();
    for (di, &ds) in datasets.iter().enumerate() {
        if let Err(reason) = &prepared[di].result {
            // The whole dataset is unusable: fail every dependent cell
            // explicitly rather than dropping it silently.
            for &m in models {
                for &label in &PAPER_HORIZON_LABELS {
                    rows.push(Fig1Row::failed(ds, m, label, reason.clone()));
                }
            }
            continue;
        }
        for &m in models {
            let outcome = next_outcome.next().expect("one outcome per scheduled cell");
            debug_assert_eq!(outcome.label, format!("fig1/{ds}/{m}"));
            match &outcome.result {
                Ok((mae, rmse, mape)) => {
                    for h in 0..3 {
                        rows.push(Fig1Row {
                            dataset: ds.to_string(),
                            model: m.to_string(),
                            horizon: PAPER_HORIZON_LABELS[h],
                            mae: mean_std(&mae[h]),
                            rmse: mean_std(&rmse[h]),
                            mape: mean_std(&mape[h]),
                            error: None,
                        });
                    }
                }
                Err(reason) => {
                    for &label in &PAPER_HORIZON_LABELS {
                        rows.push(Fig1Row::failed(ds, m, label, reason.clone()));
                    }
                }
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Fig 2: difficult intervals
// ---------------------------------------------------------------------

/// One model's row of Fig 2.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Model name.
    pub model: String,
    /// MAE over the whole test set.
    pub overall: MetricSet,
    /// MAE restricted to difficult intervals.
    pub difficult: MetricSet,
    /// `100·(difficult − overall)/overall` (the paper reports 67–180%).
    pub degradation_pct: f32,
    /// `Some(reason)` when this model's cell panicked and was isolated;
    /// metrics are then NaN and excluded from aggregates.
    pub error: Option<String>,
}

impl Fig2Row {
    /// A failed cell: NaN metrics plus the panic reason.
    pub fn failed(model: &str, reason: String) -> Self {
        let nan = MetricSet { mae: f32::NAN, rmse: f32::NAN, mape: f32::NAN, count: 0 };
        Fig2Row {
            model: model.to_string(),
            overall: nan,
            difficult: nan,
            degradation_pct: f32::NAN,
            error: Some(reason),
        }
    }
}

/// Builds the `[S, T_out, N]` difficult mask aligned with a windowed split.
pub fn sample_difficult_mask(dataset: &TrafficDataset, split: &WindowedData) -> Tensor {
    let (s, t_out, n) = (split.len(), split.y_raw.shape()[1], split.y_raw.shape()[2]);
    let lo = *split.target_start.iter().min().expect("non-empty split");
    let hi = *split.target_start.iter().max().expect("non-empty split") + t_out;
    let full = difficult_mask_range(&dataset.values, PAPER_WINDOW, PAPER_QUANTILE, lo..hi); // [T, N]
    let mut out = vec![0.0f32; s * t_out * n];
    let fm = full.as_slice();
    for (si, &start) in split.target_start.iter().enumerate() {
        for h in 0..t_out {
            let t = start + h;
            for i in 0..n {
                out[(si * t_out + h) * n + i] = fm[t * n + i];
            }
        }
    }
    Tensor::from_vec(out, &[s, t_out, n])
}

/// Runs the Fig 2 experiment on one dataset (the paper uses METR-LA).
/// Model cells run on the experiment scheduler — same `TRAFFIC_JOBS`
/// semantics and determinism guarantees as [`model_comparison`].
pub fn difficult_interval_experiment(
    dataset: &str,
    models: &[&str],
    scale: &ExperimentScale,
) -> Vec<Fig2Row> {
    let exp = prepare_experiment(dataset, scale, 42);
    let test = eval_split(&exp.data.test, scale);
    let dmask = sample_difficult_mask(&exp.dataset, &test);
    let cells: Vec<(String, _)> = models
        .iter()
        .map(|&m| {
            let (exp, test, dmask) = (&exp, &test, &dmask);
            (format!("fig2/{dataset}/{m}"), move || {
                let (model, _) = train_model(m, exp, scale, 2000);
                let pred = predict(model.as_ref(), test, &exp.data.scaler, scale.batch_size);
                let overall = evaluate(&pred, &test.y_raw, None);
                let difficult = evaluate(&pred, &test.y_raw, Some(dmask));
                let degradation = if overall.mae > 0.0 && difficult.count > 0 {
                    degradation_pct(overall.mae, difficult.mae)
                } else {
                    f32::NAN
                };
                Fig2Row {
                    model: m.to_string(),
                    overall,
                    difficult,
                    degradation_pct: degradation,
                    error: None,
                }
            })
        })
        .collect();
    crate::sched::run_cells("fig2", cells)
        .into_iter()
        .zip(models)
        .map(|(o, &m)| o.result.unwrap_or_else(|reason| Fig2Row::failed(m, reason)))
        .collect()
}

// ---------------------------------------------------------------------
// Fig 3: case study
// ---------------------------------------------------------------------

/// One road's trace in the case study.
#[derive(Debug, Clone)]
pub struct RoadCase {
    /// Sensor index.
    pub node: usize,
    /// MAE of the 1-step-ahead prediction on this road.
    pub mae: f32,
    /// Ground-truth series over the evaluated window.
    pub actual: Vec<f32>,
    /// Predicted series (5-minute-ahead predictions, consecutive samples).
    pub predicted: Vec<f32>,
    /// Difficult intervals `[start, end)` relative to the plotted window.
    pub difficult: Vec<(usize, usize)>,
}

/// Fig 3: the same trained model on a smooth road vs a volatile road.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Model used (Graph-WaveNet in the paper).
    pub model: String,
    /// Dataset used (PeMS-BAY in the paper).
    pub dataset: String,
    /// The easy road (paper: MAE ≈ 1).
    pub smooth: RoadCase,
    /// The hard road (paper: MAE ≈ 4.5).
    pub volatile: RoadCase,
}

/// Runs the Fig 3 case study: train Graph-WaveNet on PeMS-BAY, then compare
/// its 1-step trace on the steadiest vs the most volatile sensor.
pub fn case_study(scale: &ExperimentScale) -> CaseStudy {
    case_study_on("PeMS-BAY", "Graph-WaveNet", scale)
}

/// Parameterised variant of [`case_study`].
pub fn case_study_on(dataset: &str, model_name: &str, scale: &ExperimentScale) -> CaseStudy {
    let exp = prepare_experiment(dataset, scale, 42);
    // Consecutive test samples (no striding) so the 1-step predictions form
    // a contiguous series.
    let test = match scale.max_test_samples {
        Some(cap) => exp.data.test.truncate(cap),
        None => exp.data.test.clone(),
    };
    let (model, _) = train_model(model_name, &exp, scale, 3000);
    let pred = predict(model.as_ref(), &test, &exp.data.scaler, scale.batch_size);
    let n = exp.dataset.num_nodes();
    // Rank sensors by mean moving-std over the evaluated window.
    let vol = |node: usize| -> f32 {
        let series = exp.dataset.node_series(node);
        let ms = moving_std(&series, PAPER_WINDOW);
        let lo = test.target_start[0];
        let hi = *test.target_start.last().expect("non-empty test split");
        let window: Vec<f32> = (lo..hi).map(|t| ms.at(&[t])).collect();
        window.iter().sum::<f32>() / window.len().max(1) as f32
    };
    let mut ranked: Vec<(usize, f32)> = (0..n).map(|i| (i, vol(i))).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let smooth_node = ranked[0].0;
    let volatile_node = ranked[n - 1].0;
    let lo_step = test.target_start[0];
    let hi_step = *test.target_start.last().expect("non-empty test split") + 12;
    let full_mask =
        difficult_mask_range(&exp.dataset.values, PAPER_WINDOW, PAPER_QUANTILE, lo_step..hi_step);
    let build_case = |node: usize| -> RoadCase {
        let s = test.len();
        let mut actual = Vec::with_capacity(s);
        let mut predicted = Vec::with_capacity(s);
        let mut abs_err = 0.0f32;
        let mut cnt = 0usize;
        for si in 0..s {
            let a = test.y_raw.at(&[si, 0, node]);
            let p = pred.at(&[si, 0, node]);
            actual.push(a);
            predicted.push(p);
            if a != 0.0 {
                abs_err += (p - a).abs();
                cnt += 1;
            }
        }
        // Difficult runs clipped to the plotted window.
        let lo = test.target_start[0];
        let runs = difficult_runs(&full_mask, node)
            .into_iter()
            .filter_map(|(a, b)| {
                let a = a.max(lo);
                let b = b.min(lo + s);
                (a < b).then(|| (a - lo, b - lo))
            })
            .collect();
        RoadCase {
            node,
            mae: if cnt > 0 { abs_err / cnt as f32 } else { f32::NAN },
            actual,
            predicted,
            difficult: runs,
        }
    };
    CaseStudy {
        model: model_name.to_string(),
        dataset: dataset.to_string(),
        smooth: build_case(smooth_node),
        volatile: build_case(volatile_node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_experiment_scales_dims() {
        let scale = ExperimentScale::smoke();
        let exp = prepare_experiment("METR-LA", &scale, 1);
        // 4% of 207 nodes ≈ 8, floor 12
        assert_eq!(exp.dataset.num_nodes(), 12);
        assert!(!exp.data.train.is_empty());
        assert_eq!(exp.ctx.n, 12);
    }

    #[test]
    fn eval_split_respects_cap() {
        let scale = ExperimentScale::smoke();
        let exp = prepare_experiment("METR-LA", &scale, 1);
        let test = eval_split(&exp.data.test, &scale);
        assert!(test.len() <= 24);
        assert!(!test.is_empty());
    }

    #[test]
    fn sample_mask_alignment() {
        let scale = ExperimentScale::smoke();
        let exp = prepare_experiment("METR-LA", &scale, 1);
        let test = eval_split(&exp.data.test, &scale);
        let m = sample_difficult_mask(&exp.dataset, &test);
        assert_eq!(m.shape(), test.y_raw.shape());
        // binary
        assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // roughly a quarter of entries marked (allow a broad band)
        let frac = m.mean_all();
        assert!(frac > 0.1 && frac < 0.5, "difficult fraction {frac}");
    }

    #[test]
    fn fig2_smoke_two_models() {
        let scale = ExperimentScale::smoke();
        let rows = difficult_interval_experiment("METR-LA", &["STSGCN", "STG2Seq"], &scale);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.overall.mae.is_finite(), "{}", r.model);
            assert!(r.difficult.mae.is_finite(), "{}", r.model);
            // Difficult intervals should be harder (allowing slack for the
            // tiny smoke run).
            assert!(
                r.difficult.mae > r.overall.mae * 0.5,
                "{}: difficult {} vs overall {}",
                r.model,
                r.difficult.mae,
                r.overall.mae
            );
        }
    }

    #[test]
    fn fig1_smoke_one_cell() {
        let scale = ExperimentScale::smoke();
        let rows = model_comparison(&["PeMSD8"], &["Graph-WaveNet"], &scale);
        assert_eq!(rows.len(), 3); // three horizons
        for r in &rows {
            assert!(r.mae.0.is_finite());
            assert!(r.rmse.0 >= r.mae.0);
            assert_eq!(r.dataset, "PeMSD8");
        }
    }

    #[test]
    fn case_study_smoke() {
        let scale = ExperimentScale::smoke();
        let cs = case_study_on("PeMS-BAY", "STG2Seq", &scale);
        assert_ne!(cs.smooth.node, cs.volatile.node);
        assert_eq!(cs.smooth.actual.len(), cs.smooth.predicted.len());
        assert!(cs.smooth.actual.len() > 5);
        assert!(cs.smooth.mae.is_finite());
        assert!(cs.volatile.mae.is_finite());
    }
}
