//! Full-state training checkpoints: everything [`crate::train`] needs to
//! continue a run **bit-identically** after a crash.
//!
//! A weights-only checkpoint (`TNN1`, [`traffic_nn::save_weights`]) is
//! not enough to resume: Adam's moment estimates, the scheduled-sampling
//! RNG, the global step (which drives the teacher-forcing probability),
//! and the early-stopping bookkeeping all shape the remaining
//! trajectory. [`TrainState`] captures the lot and serialises it into
//! the sectioned, CRC-checked `TNN2` container
//! ([`traffic_nn::tnn2`]), written atomically so a crash mid-save
//! leaves the previous checkpoint intact.
//!
//! Resume correctness is guarded two ways:
//! - a **config fingerprint** ([`config_fingerprint`]) of every
//!   math-relevant [`TrainConfig`] field is stored and compared on load,
//!   so a checkpoint is never silently continued under different
//!   hyper-parameters;
//! - [`TrainState::apply_weights`] validates parameter names and shapes
//!   against the live [`ParamStore`] before writing anything.

use std::path::Path;
use std::time::Duration;

use traffic_nn::tnn2::{self, PayloadReader, PayloadWriter};
use traffic_nn::{AdamState, CheckpointError, ParamStore};
use traffic_obs::counter;
use traffic_tensor::Tensor;

use crate::trainer::TrainConfig;

/// Version of the **state schema** inside the `TNN2` container (the
/// container itself has its own format version).
pub const STATE_VERSION: u32 = 1;

/// Default attempt budget for the `*_with_retry` checkpoint I/O
/// wrappers (1 try + 2 retries).
pub const CKPT_IO_ATTEMPTS: u32 = 3;

/// Default initial backoff for checkpoint I/O retries (doubles per
/// retry: 5ms, 10ms).
pub const CKPT_IO_BACKOFF: Duration = Duration::from_millis(5);

/// Bounded retry-with-backoff around a checkpoint I/O operation.
/// Retries **only** [`CheckpointError::Io`] — transient by nature;
/// corruption and mismatches return immediately because retrying can't
/// make a structurally bad file good. Each retry increments
/// `train/ckpt_retries`.
fn io_retry<T>(
    what: &str,
    path: &Path,
    attempts: u32,
    backoff: Duration,
    mut op: impl FnMut() -> Result<T, CheckpointError>,
) -> Result<T, CheckpointError> {
    let mut delay = backoff;
    for attempt in 1.. {
        match op() {
            Err(CheckpointError::Io(e)) if attempt < attempts => {
                counter("train/ckpt_retries").inc();
                eprintln!(
                    "resume: {what} {} failed ({e}); retry {attempt}/{}",
                    path.display(),
                    attempts - 1
                );
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            other => return other,
        }
    }
    unreachable!("retry loop returns on the last attempt")
}

/// Best-validation-epoch snapshot carried inside a [`TrainState`].
#[derive(Debug, Clone)]
pub struct BestSnapshot {
    /// Best validation loss seen so far.
    pub val: f32,
    /// Epoch that produced it.
    pub epoch: usize,
    /// Weight snapshot from that epoch (store order).
    pub weights: Vec<Tensor>,
}

/// Everything the trainer needs to continue a run bit-identically.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Fingerprint of the math-relevant config fields (see
    /// [`config_fingerprint`]); checked on resume.
    pub fingerprint: u64,
    /// Number of fully completed epochs; training resumes at this epoch
    /// index.
    pub epochs_done: usize,
    /// Batches processed across all epochs (drives scheduled sampling).
    pub global_step: usize,
    /// Scheduled-sampling / dropout RNG state (xoshiro256++ words).
    pub rng: [u64; 4],
    /// Divergence-supervisor LR backoff accumulated so far.
    pub lr_scale: f32,
    /// Cumulative rollbacks performed by the divergence supervisor.
    pub rollbacks: usize,
    /// Cumulative optimizer steps skipped on non-finite gradients.
    pub skipped_steps: usize,
    /// Early-stopping staleness counter at the checkpoint.
    pub stale: usize,
    /// Mean training loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation loss of each completed epoch (may be empty).
    pub val_losses: Vec<f32>,
    /// Wall-clock seconds of each completed epoch.
    pub epoch_times: Vec<f64>,
    /// Current model weights, `(name, value)` in store order.
    pub weights: Vec<(String, Tensor)>,
    /// Adam step count, lr, and moment estimates.
    pub adam: AdamState,
    /// Best-epoch snapshot for early stopping, if any.
    pub best: Option<BestSnapshot>,
}

/// FNV-1a hash of every [`TrainConfig`] field that affects the training
/// trajectory. `epochs` is deliberately excluded (extending a finished
/// run is a legitimate resume), as are the checkpoint paths themselves.
pub fn config_fingerprint(cfg: &TrainConfig) -> u64 {
    let mut h = Fnv::new();
    h.u64(cfg.batch_size as u64);
    h.u32(cfg.lr.to_bits());
    h.u32(cfg.grad_clip.to_bits());
    h.u64(cfg.seed);
    h.u64(cfg.max_batches_per_epoch.map_or(u64::MAX, |v| v as u64));
    h.u32(cfg.teacher_decay.to_bits());
    h.u64(cfg.early_stop_patience.map_or(u64::MAX, |v| v as u64));
    h.u64(cfg.max_val_batches.map_or(u64::MAX, |v| v as u64));
    match cfg.lr_decay {
        Some((gamma, every)) => {
            h.u32(1);
            h.u32(gamma.to_bits());
            h.u64(every as u64);
        }
        None => h.u32(0),
    }
    match &cfg.divergence {
        Some(p) => {
            h.u32(1);
            h.u64(p.window as u64);
            h.u32(p.explode_factor.to_bits());
            h.u64(p.max_retries as u64);
            h.u32(p.lr_backoff.to_bits());
        }
        None => h.u32(0),
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl TrainState {
    /// Serialises into `TNN2` sections and writes them atomically to
    /// `path` (temp sibling + fsync + rename).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut meta = PayloadWriter::new();
        meta.u32(STATE_VERSION);
        meta.u64(self.fingerprint);
        meta.u64(self.epochs_done as u64);
        meta.u64(self.global_step as u64);
        for w in self.rng {
            meta.u64(w);
        }
        meta.f32(self.lr_scale);
        meta.u64(self.rollbacks as u64);
        meta.u64(self.skipped_steps as u64);
        meta.u64(self.stale as u64);

        let mut progress = PayloadWriter::new();
        progress.u32(self.epoch_losses.len() as u32);
        for &l in &self.epoch_losses {
            progress.f32(l);
        }
        progress.u32(self.val_losses.len() as u32);
        for &l in &self.val_losses {
            progress.f32(l);
        }
        progress.u32(self.epoch_times.len() as u32);
        for &t in &self.epoch_times {
            progress.f64(t);
        }

        let mut weights = PayloadWriter::new();
        weights.u32(self.weights.len() as u32);
        for (name, value) in &self.weights {
            weights.str(name);
            weights.tensor(value);
        }

        let mut adam = PayloadWriter::new();
        adam.u32(self.adam.t as u32);
        adam.f32(self.adam.lr);
        debug_assert_eq!(self.adam.m.len(), self.adam.v.len());
        adam.u32(self.adam.m.len() as u32);
        for m in &self.adam.m {
            adam.opt_tensor(m.as_ref());
        }
        for v in &self.adam.v {
            adam.opt_tensor(v.as_ref());
        }

        let mut best = PayloadWriter::new();
        match &self.best {
            Some(b) => {
                best.u32(1);
                best.f32(b.val);
                best.u64(b.epoch as u64);
                best.u32(b.weights.len() as u32);
                for t in &b.weights {
                    best.tensor(t);
                }
            }
            None => best.u32(0),
        }

        tnn2::write_file(
            path,
            &[
                ("meta", meta.into_bytes()),
                ("progress", progress.into_bytes()),
                ("weights", weights.into_bytes()),
                ("adam", adam.into_bytes()),
                ("best", best.into_bytes()),
            ],
        )
    }

    /// [`TrainState::save`] with bounded retry-with-backoff on **I/O**
    /// errors (`ckpt_io` faults, NFS hiccups, disk-full races that
    /// clear). Corruption/mismatch never retries — rewriting won't fix
    /// a structural bug. Retries count as `train/ckpt_retries`.
    pub fn save_with_retry(
        &self,
        path: &Path,
        attempts: u32,
        backoff: Duration,
    ) -> Result<(), CheckpointError> {
        io_retry("checkpoint save", path, attempts, backoff, || self.save(path))
    }

    /// [`TrainState::load`] with the same bounded I/O retry policy as
    /// [`TrainState::save_with_retry`].
    pub fn load_with_retry(
        path: &Path,
        attempts: u32,
        backoff: Duration,
    ) -> Result<TrainState, CheckpointError> {
        io_retry("checkpoint load", path, attempts, backoff, || TrainState::load(path))
    }

    /// Reads and verifies a checkpoint written by [`TrainState::save`].
    /// Any structural problem — bad magic, CRC mismatch, truncation,
    /// missing section — is [`CheckpointError::Corrupt`].
    pub fn load(path: &Path) -> Result<TrainState, CheckpointError> {
        let sections = tnn2::read_file(path)?;
        let find = |name: &str| -> Result<&[u8], CheckpointError> {
            sections
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| p.as_slice())
                .ok_or_else(|| CheckpointError::Corrupt(format!("missing section {name:?}")))
        };

        let mut meta = PayloadReader::new(find("meta")?);
        let version = meta.u32()?;
        if version != STATE_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported train-state version {version} (reader supports {STATE_VERSION})"
            )));
        }
        let fingerprint = meta.u64()?;
        let epochs_done = meta.u64()? as usize;
        let global_step = meta.u64()? as usize;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = meta.u64()?;
        }
        let lr_scale = meta.f32()?;
        let rollbacks = meta.u64()? as usize;
        let skipped_steps = meta.u64()? as usize;
        let stale = meta.u64()? as usize;

        let mut progress = PayloadReader::new(find("progress")?);
        let n = progress.u32()? as usize;
        let mut epoch_losses = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            epoch_losses.push(progress.f32()?);
        }
        let n = progress.u32()? as usize;
        let mut val_losses = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            val_losses.push(progress.f32()?);
        }
        let n = progress.u32()? as usize;
        let mut epoch_times = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            epoch_times.push(progress.f64()?);
        }

        let mut wsec = PayloadReader::new(find("weights")?);
        let n = wsec.u32()? as usize;
        let mut weights = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = wsec.str()?;
            let value = wsec.tensor()?;
            weights.push((name, value));
        }

        let mut asec = PayloadReader::new(find("adam")?);
        let t = asec.u32()? as i32;
        let lr = asec.f32()?;
        let n = asec.u32()? as usize;
        let mut m = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            m.push(asec.opt_tensor()?);
        }
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(asec.opt_tensor()?);
        }
        let adam = AdamState { t, lr, m, v };

        let mut bsec = PayloadReader::new(find("best")?);
        let best = match bsec.u32()? {
            0 => None,
            1 => {
                let val = bsec.f32()?;
                let epoch = bsec.u64()? as usize;
                let n = bsec.u32()? as usize;
                let mut bw = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    bw.push(bsec.tensor()?);
                }
                Some(BestSnapshot { val, epoch, weights: bw })
            }
            f => return Err(CheckpointError::Corrupt(format!("bad best-presence flag {f}"))),
        };

        Ok(TrainState {
            fingerprint,
            epochs_done,
            global_step,
            rng,
            lr_scale,
            rollbacks,
            skipped_steps,
            stale,
            epoch_losses,
            val_losses,
            epoch_times,
            weights,
            adam,
            best,
        })
    }

    /// Captures the current weights of `store` as `(name, value)` pairs.
    pub fn capture_weights(store: &ParamStore) -> Vec<(String, Tensor)> {
        store.params().iter().map(|p| (p.name().to_string(), p.value())).collect()
    }

    /// Writes the checkpointed weights into `store`, validating names
    /// and shapes first (all-or-nothing: a mismatch writes no value).
    pub fn apply_weights(&self, store: &ParamStore) -> Result<(), CheckpointError> {
        if self.weights.len() != store.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} params, store has {}",
                self.weights.len(),
                store.len()
            )));
        }
        for ((name, value), p) in self.weights.iter().zip(store.params()) {
            if name != p.name() {
                return Err(CheckpointError::Mismatch(format!(
                    "parameter order mismatch: checkpoint {name} vs store {}",
                    p.name()
                )));
            }
            if value.shape() != p.shape() {
                return Err(CheckpointError::Mismatch(format!(
                    "{name}: checkpoint shape {:?} vs store {:?}",
                    value.shape(),
                    p.shape()
                )));
            }
        }
        for ((_, value), p) in self.weights.iter().zip(store.params()) {
            p.set_value(value.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("traffic_state_{name}_{}", std::process::id()))
    }

    fn sample_state() -> TrainState {
        TrainState {
            fingerprint: 0xdead_beef_cafe_f00d,
            epochs_done: 3,
            global_step: 42,
            rng: [1, u64::MAX, 0x1234_5678_9abc_def0, 7],
            lr_scale: 0.25,
            rollbacks: 2,
            skipped_steps: 5,
            stale: 1,
            epoch_losses: vec![1.5, 0.9, 0.7],
            val_losses: vec![1.2, f32::NAN, 0.8],
            epoch_times: vec![0.5, 0.45, 0.48],
            weights: vec![
                ("a.w".into(), Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.0], &[2, 2])),
                ("a.b".into(), Tensor::from_vec(vec![0.1], &[1])),
            ],
            adam: AdamState {
                t: 42,
                lr: 1e-3,
                m: vec![Some(Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[2, 2])), None],
                v: vec![Some(Tensor::from_vec(vec![0.5, 0.6, 0.7, 0.8], &[2, 2])), None],
            },
            best: Some(BestSnapshot {
                val: 0.8,
                epoch: 2,
                weights: vec![Tensor::ones(&[2, 2]), Tensor::zeros(&[1])],
            }),
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let st = sample_state();
        let path = tmp("roundtrip");
        st.save(&path).unwrap();
        let back = TrainState::load(&path).unwrap();
        assert_eq!(back.fingerprint, st.fingerprint);
        assert_eq!(back.epochs_done, 3);
        assert_eq!(back.global_step, 42);
        assert_eq!(back.rng, st.rng);
        assert_eq!(back.lr_scale.to_bits(), st.lr_scale.to_bits());
        assert_eq!(back.rollbacks, 2);
        assert_eq!(back.skipped_steps, 5);
        assert_eq!(back.stale, 1);
        assert_eq!(back.epoch_losses, st.epoch_losses);
        // NaN val loss must survive by bit pattern
        assert!(back.val_losses[1].is_nan());
        assert_eq!(back.epoch_times, st.epoch_times);
        assert_eq!(back.weights.len(), 2);
        assert_eq!(back.weights[0].0, "a.w");
        assert_eq!(back.weights[0].1, st.weights[0].1);
        assert_eq!(back.adam.t, 42);
        assert_eq!(back.adam.m[0], st.adam.m[0]);
        assert!(back.adam.m[1].is_none());
        let best = back.best.unwrap();
        assert_eq!(best.epoch, 2);
        assert_eq!(best.weights.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let st = sample_state();
        let path = tmp("corrupt");
        st.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(TrainState::load(&path), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn apply_weights_validates_before_writing() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        store.add("a.w", traffic_tensor::init::xavier_uniform(&[2, 2], &mut rng));
        store.add("a.b", traffic_tensor::init::uniform(&[1], -1.0, 1.0, &mut rng));
        let before = store.snapshot();

        let st = sample_state();
        st.apply_weights(&store).unwrap();
        assert_eq!(store.params()[0].value(), st.weights[0].1);

        // Shape mismatch: nothing is written, not even the matching param.
        store.restore(&before);
        let mut bad = st.clone();
        bad.weights[1].1 = Tensor::zeros(&[3]);
        assert!(matches!(bad.apply_weights(&store), Err(CheckpointError::Mismatch(_))));
        assert_eq!(store.params()[0].value(), before[0]);
        assert_eq!(store.params()[1].value(), before[1]);
    }

    #[test]
    fn fingerprint_tracks_math_fields_only() {
        let base = TrainConfig::default();
        let fp = config_fingerprint(&base);
        // epochs and checkpoint knobs do not change the fingerprint
        let mut more_epochs = base.clone();
        more_epochs.epochs += 10;
        more_epochs.checkpoint_every = Some(1);
        more_epochs.checkpoint_path = Some("x.tnn2".into());
        more_epochs.resume_from = Some("x.tnn2".into());
        assert_eq!(config_fingerprint(&more_epochs), fp);
        // but seed / lr / schedule do
        let mut other_seed = base.clone();
        other_seed.seed ^= 1;
        assert_ne!(config_fingerprint(&other_seed), fp);
        let mut other_lr = base.clone();
        other_lr.lr *= 2.0;
        assert_ne!(config_fingerprint(&other_lr), fp);
        let mut with_decay = base.clone();
        with_decay.lr_decay = Some((0.5, 2));
        assert_ne!(config_fingerprint(&with_decay), fp);
    }
}
