//! Blocked single-precision GEMM (`out += a · b`) and the naive
//! reference kernel it replaced.
//!
//! The kernel cache-blocks the reduction axis (`KC`) and register-tiles
//! the output (`MR × NR`): each tile is loaded once, accumulated in
//! registers across the whole `k`-block, and stored once, cutting
//! output traffic by `KC×` and `b`-row traffic by `MR×` versus the
//! seed's one-row-at-a-time loop, while the fixed-width `NR` strip
//! keeps the inner loop LLVM-vectorised (with hardware FMA when the
//! target provides it — the workspace builds with `target-cpu=native`).
//! Each output element receives its `k` addends one at a time in
//! ascending order (the tile is *loaded* before accumulating, never
//! merged as a block sum), so results are independent of thread count
//! and deterministic for a given build; without FMA they are
//! bit-identical to [`matmul_naive`], with FMA they differ from it only
//! by the fused roundings (≲1e-6 relative at k ≈ 200).
//!
//! FLOP accounting: callers that time a multiply report it through
//! [`record_flops`], which feeds the `compute/flops` counter and the
//! `compute/gemm_gflops` histogram in the `traffic-obs` registry —
//! that is where run manifests and `BENCH_gemm.json` read GFLOP/s from.

use std::sync::OnceLock;

use crate::pool;

/// Reduction-axis cache block: `KC · n` floats of `b` stay hot in L2
/// while `m` output rows stream past.
const KC: usize = 256;
/// Register tile height: rows of `a` advanced together.
const MR: usize = 6;
/// Register tile width: the accumulator strip held in registers while a
/// `k`-block streams past (`MR · NR` floats = 12 AVX2 registers, the
/// classic 6×16 kernel — leaves room for the `b` strip and broadcasts).
const NR: usize = 16;
/// Minimum rows per parallel task; below this, dispatch overhead wins.
const MIN_ROWS_PER_TASK: usize = 8;

/// Fused multiply-add when the target has hardware FMA (the workspace
/// builds with `target-cpu=native`, so this is compile-time constant);
/// plain mul+add otherwise — `f32::mul_add` without hardware support
/// falls back to a correctly-rounded software routine that is orders of
/// magnitude slower. Either way the kernel is deterministic for a given
/// build and independent of thread count.
#[inline(always)]
fn madd(a: f32, b: f32, acc: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Plain `m×k · k×n` triple loop on contiguous slices, accumulating
/// into `out`. This is the seed engine's kernel, kept verbatim —
/// including its per-element zero-skip branch — so it serves both as
/// the correctness reference for the blocked kernel's proptests and as
/// the baseline that `BENCH_gemm.json` speedups are measured against.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (l, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue; // adjacency matrices are sparse; skip zero rows cheaply
            }
            let b_row = &b[l * n..(l + 1) * n];
            for j in 0..n {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

/// Serial blocked GEMM: `out += a · b` with `a: [m, k]`, `b: [k, n]`,
/// `out: [m, n]`, all contiguous row-major.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Block the reduction so the active `b` panel (`kc · n` floats)
    // stays cached across the whole sweep over `m`.
    let mut a_pack = [0.0f32; MR * KC];
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let b_panel = &b[pc * n..(pc + kc) * n];
        let mut i = 0;
        while i + MR <= m {
            pack_a::<MR>(&mut a_pack, &a[i * k + pc..], k, kc);
            micro_tile::<MR>(&a_pack, b_panel, &mut out[i * n..(i + MR) * n], kc, n);
            i += MR;
        }
        let rem = m - i;
        if rem > 0 {
            let a_rows = &a[i * k + pc..];
            let out_rows = &mut out[i * n..(i + rem) * n];
            match rem {
                1 => tail::<1>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                2 => tail::<2>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                3 => tail::<3>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                4 => tail::<4>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
                _ => tail::<5>(&mut a_pack, a_rows, k, b_panel, out_rows, kc, n),
            }
        }
        pc += kc;
    }
}

/// Packs an `R × kc` tile of `a` (row stride `lda`) into `p`-major
/// layout: `a_pack[p * R + r] = a[r][p]`, so the micro-kernel's
/// per-`p` coefficient loads are contiguous.
#[inline(always)]
fn pack_a<const R: usize>(a_pack: &mut [f32], a_rows: &[f32], lda: usize, kc: usize) {
    for p in 0..kc {
        for r in 0..R {
            a_pack[p * R + r] = a_rows[r * lda + p];
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)] // internal trampoline mirroring micro_tile
fn tail<const R: usize>(
    a_pack: &mut [f32],
    a_rows: &[f32],
    lda: usize,
    b_panel: &[f32],
    out_rows: &mut [f32],
    kc: usize,
    n: usize,
) {
    pack_a::<R>(a_pack, a_rows, lda, kc);
    micro_tile::<R>(a_pack, b_panel, out_rows, kc, n);
}

/// `R`-row register tile: walks the output in `R × NR` strips, each
/// loaded into a register accumulator, updated for every `p` in the
/// `k`-block, and stored back once. `a_pack` is the tile of `a` in
/// `p`-major packed layout (see [`pack_a`]); `out_rows` is `R`
/// contiguous output rows.
#[inline(always)]
fn micro_tile<const R: usize>(
    a_pack: &[f32],
    b_panel: &[f32],
    out_rows: &mut [f32],
    kc: usize,
    n: usize,
) {
    debug_assert_eq!(out_rows.len(), R * n);
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; R];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            acc_row.copy_from_slice(&out_rows[r * n + j..r * n + j + NR]);
        }
        for p in 0..kc {
            let b_strip: &[f32; NR] =
                b_panel[p * n + j..p * n + j + NR].try_into().expect("NR strip");
            let coeffs = &a_pack[p * R..(p + 1) * R];
            for (acc_row, &coeff) in acc.iter_mut().zip(coeffs) {
                for (av, &bv) in acc_row.iter_mut().zip(b_strip) {
                    *av = madd(coeff, bv, *av);
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out_rows[r * n + j..r * n + j + NR].copy_from_slice(acc_row);
        }
        j += NR;
    }
    if j < n {
        // Remainder strip (< NR columns): accumulate straight into the
        // output rows; same ascending-`p` order, just without the
        // register residency.
        for p in 0..kc {
            let b_row = &b_panel[p * n + j..(p + 1) * n];
            let coeffs = &a_pack[p * R..(p + 1) * R];
            for r in 0..R {
                let coeff = coeffs[r];
                let out_row = &mut out_rows[r * n + j..r * n + n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = madd(coeff, bv, *o);
                }
            }
        }
    }
}

/// Row-parallel blocked GEMM: splits `m` into disjoint row blocks
/// across the worker pool, each running the serial kernel. Per-element
/// accumulation order is unchanged, so results are bit-identical to
/// [`gemm`] at any thread count.
pub fn gemm_parallel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = pool::effective_threads();
    if threads <= 1 || m < 2 * MIN_ROWS_PER_TASK {
        return gemm(a, b, out, m, k, n);
    }
    let rows_per_task = m.div_ceil(threads * 2).max(MIN_ROWS_PER_TASK);
    pool::parallel_chunks_mut(out, rows_per_task * n, |ci, out_chunk| {
        let r0 = ci * rows_per_task;
        let rows = out_chunk.len() / n;
        gemm(&a[r0 * k..(r0 + rows) * k], b, out_chunk, rows, k, n);
    });
}

struct GemmMetrics {
    flops: &'static traffic_obs::Counter,
    gflops: &'static traffic_obs::Histogram,
}

fn metrics() -> &'static GemmMetrics {
    static METRICS: OnceLock<GemmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        flops: traffic_obs::counter("compute/flops"),
        gflops: traffic_obs::histogram("compute/gemm_gflops"),
    })
}

/// Records `flops` floating-point operations taking `secs` seconds:
/// bumps the cumulative `compute/flops` counter and, for non-trivial
/// timings, the `compute/gemm_gflops` rate histogram.
pub fn record_flops(flops: usize, secs: f64) {
    let m = metrics();
    m.flops.add(flops as u64);
    if secs > 0.0 && flops > 0 {
        m.gflops.record(flops as f64 / secs / 1e9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 500.0)
                    - 1.0
            })
            .collect()
    }

    fn check_shape(m: usize, k: usize, n: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut want = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm(&a, &b, &mut got, m, k, n);
        if cfg!(target_feature = "fma") {
            // FMA changes each addend's rounding, nothing else.
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w} at {m}x{k}x{n}");
            }
        } else {
            assert_eq!(got, want, "blocked kernel diverged at {m}x{k}x{n}");
        }
        // Thread-count determinism is unconditional: the parallel kernel
        // must match the serial one bit for bit.
        let mut par = vec![0.0f32; m * n];
        gemm_parallel(&a, &b, &mut par, m, k, n);
        assert_eq!(par, got, "parallel kernel diverged at {m}x{k}x{n}");
    }

    #[test]
    fn matches_naive_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 4, 4),
            (5, 3, 7),
            (7, 300, 1), // k crosses a KC boundary, n = 1
            (64, 64, 64),
            (207, 207, 64), // METR-LA graph-conv shape
            (33, 513, 17),
        ] {
            check_shape(m, k, n);
        }
    }

    #[test]
    fn degenerate_dims_are_noops() {
        check_shape(0, 3, 3);
        check_shape(3, 0, 3);
        check_shape(3, 3, 0);
        let mut out = vec![1.0f32; 9];
        gemm(&[], &[], &mut out, 3, 0, 3);
        assert!(out.iter().all(|&v| v == 1.0), "k = 0 must leave the accumulator untouched");
    }

    #[test]
    fn accumulates_into_out() {
        let (m, k, n) = (3, 3, 3);
        let a = fill(9, 3);
        let b = fill(9, 4);
        let mut once = vec![0.0f32; 9];
        gemm(&a, &b, &mut once, m, k, n);
        let mut twice = vec![0.0f32; 9];
        gemm(&a, &b, &mut twice, m, k, n);
        gemm(&a, &b, &mut twice, m, k, n);
        for (t, o) in twice.iter().zip(&once) {
            assert!((t - 2.0 * o).abs() < 1e-4);
        }
    }
}
