#!/usr/bin/env bash
# Regenerates BENCH_serve.json at the workspace root: sustained QPS and
# per-request latency percentiles for the inference server under an
# open-loop client load, plus the chaos-ladder robustness counters
# (reload rejections, breaker trips, shed/timeout handling, recovery).
#
# Usage:
#   scripts/bench_serve.sh                 # full run (8 clients x 200)
#   BENCH_SMOKE=1 scripts/bench_serve.sh   # fast CI smoke pass
#
# TRAFFIC_THREADS caps the kernel worker pool (default: all cores).
set -euo pipefail
cd "$(dirname "$0")/.."

export TRAFFIC_THREADS="${TRAFFIC_THREADS:-$(nproc)}"

cargo run --release -q --bin serve -- bench
echo
echo "--- BENCH_serve.json ---"
cat BENCH_serve.json
