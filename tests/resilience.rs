//! Resilience integration tests: kill-and-resume bit-identity, the
//! divergence supervisor's rollback/give-up paths, NaN-gradient step
//! skipping, and panic isolation in the experiment sweeps.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_suite::core::{
    model_comparison, train, DivergencePolicy, ExperimentScale, TrainConfig, TrainReport,
};
use traffic_suite::data::{prepare, simulate, PreparedData, SimConfig, Task};
use traffic_suite::models::{build_model, GraphContext};
use traffic_suite::obs::counter;
use traffic_suite::obs::faults::{self, FaultMode};

/// Fault state is process-global: every test that arms a fault holds
/// this lock for its whole duration (same pattern as `knob_lock` in
/// determinism.rs).
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("traffic_resilience_{tag}_{}.tnn2", std::process::id()))
}

fn tiny_setup() -> (PreparedData, GraphContext) {
    let ds = simulate(&SimConfig::new("resil", Task::Speed, 6, 4));
    let data = prepare(&ds, 12, 12);
    let ctx = GraphContext::from_network(&ds.network, 4);
    (data, ctx)
}

fn loss_bits(r: &TrainReport) -> Vec<u32> {
    r.epoch_losses.iter().map(|l| l.to_bits()).collect()
}

#[test]
fn kill_and_resume_is_bit_identical() {
    let _g = fault_lock();
    faults::reset();
    let (data, ctx) = tiny_setup();
    let ckpt = tmp("kill_resume");
    let _ = std::fs::remove_file(&ckpt);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 8,
        max_batches_per_epoch: Some(6),
        seed: 13,
        checkpoint_every: Some(1),
        checkpoint_path: Some(ckpt.clone()),
        resume_from: Some(ckpt.clone()),
        ..Default::default()
    };

    // Uninterrupted reference: no checkpoint knobs at all, so this also
    // proves checkpointing itself does not perturb the trajectory.
    let reference = {
        let mut rng = StdRng::seed_from_u64(21);
        let model = build_model("STGCN", &ctx, &mut rng);
        let plain = TrainConfig {
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
            ..cfg.clone()
        };
        train(model.as_ref(), &data, &plain)
    };
    assert_eq!(reference.epoch_losses.len(), 3);

    // "Crash" mid-epoch 1 (soft abort = catchable panic standing in for
    // SIGKILL; scripts/resume_smoke.sh exercises the hard variant).
    faults::arm("abort", 8, FaultMode::Soft);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(21);
        let model = build_model("STGCN", &ctx, &mut rng);
        train(model.as_ref(), &data, &cfg)
    }));
    faults::reset();
    assert!(crashed.is_err(), "armed abort should have interrupted training");
    assert!(ckpt.exists(), "epoch-0 checkpoint should have survived the crash");

    // "New process": a freshly built model, resumed from the checkpoint.
    let mut rng = StdRng::seed_from_u64(21);
    let model = build_model("STGCN", &ctx, &mut rng);
    let resumed = train(model.as_ref(), &data, &cfg);
    std::fs::remove_file(&ckpt).ok();

    assert_eq!(resumed.resumed_at, Some(1), "should resume after the one completed epoch");
    assert_eq!(
        loss_bits(&resumed),
        loss_bits(&reference),
        "resumed losses must be bit-identical: {:?} vs {:?}",
        resumed.epoch_losses,
        reference.epoch_losses
    );
    assert!(!model.store().has_non_finite());
}

#[test]
fn resume_rejects_checkpoint_from_different_config() {
    let _g = fault_lock();
    faults::reset();
    let (data, ctx) = tiny_setup();
    let ckpt = tmp("fingerprint");
    let _ = std::fs::remove_file(&ckpt);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        max_batches_per_epoch: Some(3),
        seed: 5,
        checkpoint_every: Some(1),
        checkpoint_path: Some(ckpt.clone()),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let model = build_model("STGCN", &ctx, &mut rng);
    train(model.as_ref(), &data, &cfg);
    assert!(ckpt.exists());

    // Same checkpoint, different math config (seed): must start fresh,
    // not silently continue under the wrong hyper-parameters.
    let other = TrainConfig { seed: 6, resume_from: Some(ckpt.clone()), ..cfg.clone() };
    let mut rng = StdRng::seed_from_u64(3);
    let model = build_model("STGCN", &ctx, &mut rng);
    let report = train(model.as_ref(), &data, &other);
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(report.resumed_at, None, "fingerprint mismatch must force a fresh start");
    assert_eq!(report.epoch_losses.len(), 1);
}

#[test]
fn divergence_supervisor_gives_up_after_max_retries() {
    let (data, ctx) = tiny_setup();
    let mut rng = StdRng::seed_from_u64(9);
    let model = build_model("STGCN", &ctx, &mut rng);
    let init = model.store().snapshot();
    // explode_factor < 1 flags every healthy batch as an explosion once
    // the window fills: a deterministic worst case that must exhaust the
    // retry budget and give up cleanly.
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        max_batches_per_epoch: Some(4),
        divergence: Some(DivergencePolicy {
            window: 2,
            explode_factor: 0.5,
            max_retries: 2,
            lr_backoff: 0.5,
        }),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);
    assert!(report.diverged, "pathological policy must end in give-up");
    // retries 0 and 1 roll back and back off; the third rollback trips
    // max_retries = 2 and gives up.
    assert_eq!(report.rollbacks, 3);
    assert!(report.epoch_losses.is_empty(), "no epoch ever completed");
    // The give-up path restores the epoch-start snapshot: weights are
    // exactly the initial ones, not a half-stepped mess.
    for (p, w) in model.store().params().iter().zip(&init) {
        assert_eq!(&p.value(), w, "{} should be rolled back to init", p.name());
    }
}

#[test]
fn divergence_supervisor_recovers_from_unstable_lr() {
    let (data, ctx) = tiny_setup();
    let mut rng = StdRng::seed_from_u64(17);
    let model = build_model("STG2Seq", &ctx, &mut rng);
    // An absurd learning rate blows the loss up; each rollback scales it
    // by 0.1, so within a few retries the run is stable and completes.
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        max_batches_per_epoch: Some(6),
        lr: 30.0,
        divergence: Some(DivergencePolicy {
            window: 3,
            explode_factor: 4.0,
            max_retries: 8,
            lr_backoff: 0.1,
        }),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);
    assert!(!report.diverged, "backoff should rescue the run: {report:?}");
    assert!(report.rollbacks >= 1, "lr 30.0 should have triggered at least one rollback");
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(!model.store().has_non_finite());
}

#[test]
fn nan_gradients_skip_the_step_and_keep_weights_finite() {
    let _g = fault_lock();
    faults::reset();
    let (data, ctx) = tiny_setup();
    let mut rng = StdRng::seed_from_u64(23);
    let model = build_model("STGCN", &ctx, &mut rng);
    faults::arm("nan_grad", 2, FaultMode::Soft);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        max_batches_per_epoch: Some(4),
        ..Default::default()
    };
    let report = train(model.as_ref(), &data, &cfg);
    faults::reset();
    assert_eq!(report.skipped_steps, 1, "the poisoned batch must be skipped, not stepped");
    assert!(report.epoch_losses[0].is_finite());
    assert!(!model.store().has_non_finite(), "NaN gradients must never reach the weights");
}

#[test]
fn checkpoint_io_failure_does_not_kill_training() {
    let _g = fault_lock();
    faults::reset();
    let (data, ctx) = tiny_setup();
    let ckpt = tmp("ckpt_io");
    let _ = std::fs::remove_file(&ckpt);
    faults::arm("ckpt_io", 1, FaultMode::Soft);
    let mut rng = StdRng::seed_from_u64(31);
    let model = build_model("STGCN", &ctx, &mut rng);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        max_batches_per_epoch: Some(3),
        checkpoint_every: Some(1),
        checkpoint_path: Some(ckpt.clone()),
        ..Default::default()
    };
    let retries_before = counter("train/ckpt_retries").get();
    let report = train(model.as_ref(), &data, &cfg);
    faults::reset();
    assert_eq!(report.epoch_losses.len(), 2, "a failed checkpoint save must not stop the run");
    // Epoch 0's save hit the injected one-shot I/O error; the bounded
    // retry absorbed it (counted), so both checkpoints went through.
    assert_eq!(
        counter("train/ckpt_retries").get(),
        retries_before + 1,
        "the transient ckpt_io fault must be retried exactly once"
    );
    assert!(ckpt.exists(), "the checkpoint should exist after the retried save");
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn sweep_isolates_a_crashing_cell() {
    let _g = fault_lock();
    faults::reset();
    // First training batch of the sweep panics: that is the first model's
    // cell. It must come back as an explicit failure while every other
    // cell completes normally.
    faults::arm("abort", 1, FaultMode::Soft);
    let mut scale = ExperimentScale::smoke();
    scale.epochs = 1;
    scale.max_train_batches = Some(2);
    let rows = model_comparison(&["METR-LA"], &["STGCN", "STG2Seq"], &scale);
    faults::reset();

    let (failed, ok): (Vec<_>, Vec<_>) = rows.iter().partition(|r| r.error.is_some());
    assert_eq!(failed.len(), 3, "one crashed model = three failed horizon rows");
    assert!(failed.iter().all(|r| r.model == "STGCN"));
    assert!(failed.iter().all(|r| r.mae.0.is_nan()), "failed cells carry NaN metrics");
    assert_eq!(ok.len(), 3, "the surviving model still produced all horizons");
    assert!(ok.iter().all(|r| r.model == "STG2Seq" && r.mae.0.is_finite()));
}
