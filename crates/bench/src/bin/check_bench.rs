//! CLI front-end for [`traffic_bench::regression`]: compares a candidate
//! bench report against a baseline and exits non-zero on regressions.
//!
//! ```text
//! check_bench [--tol 0.15] [--min-secs 0.001] [--strict] <baseline.json> <candidate.json>
//! ```
//!
//! `--tol` (or the `BENCH_TOL` env var) sets the relative tolerance; a
//! timing leaf fails only when `candidate > baseline * (1 + tol)`.
//! `--min-secs` (or `BENCH_MIN_SECS`, default 1ms) skips baselines too
//! short to gate on a relative tolerance. Gated leaves missing from the
//! candidate are warnings unless `--strict`.

use std::process::ExitCode;

use traffic_bench::regression::{compare, render};
use traffic_obs::json::parse;

fn usage() -> ExitCode {
    eprintln!(
        "usage: check_bench [--tol X] [--min-secs S] [--strict] <baseline.json> <candidate.json>"
    );
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<traffic_obs::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: invalid JSON: {e:?}"))
}

fn main() -> ExitCode {
    let mut tol: f64 = std::env::var("BENCH_TOL").ok().and_then(|s| s.parse().ok()).unwrap_or(0.15);
    let mut min_secs: f64 =
        std::env::var("BENCH_MIN_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(0.001);
    let mut strict = false;
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--tol" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => tol = v,
                None => return usage(),
            },
            "--min-secs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => min_secs = v,
                None => return usage(),
            },
            _ if arg.starts_with('-') => return usage(),
            _ => paths.push(arg),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return usage();
    };

    let (base, cand) = match (load(baseline), load(candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("check_bench: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let cmp = compare(&base, &cand, tol, min_secs);
    print!("{baseline} vs {candidate}\n{}", render(&cmp, tol));

    if !cmp.regressions.is_empty() || (strict && !cmp.missing.is_empty()) {
        eprintln!("check_bench: FAIL");
        ExitCode::FAILURE
    } else {
        println!("check_bench: OK");
        ExitCode::SUCCESS
    }
}
