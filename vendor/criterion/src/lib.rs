//! Offline vendored subset of the `criterion` API.
//!
//! Provides the types and macros the workspace benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! `criterion_group!`, `criterion_main!`, [`black_box`] — with a simple
//! time-bounded measurement loop instead of criterion's full statistical
//! pipeline. Each benchmark prints `name  time: [mean]  (iters)` so the
//! bench binaries stay useful for coarse regression tracking in an
//! environment with no crates.io access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to bench functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    default_cfg: MeasurementConfig,
}

#[derive(Debug, Clone, Copy)]
struct MeasurementConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_cfg: MeasurementConfig {
                sample_size: 10,
                warm_up_time: Duration::from_millis(200),
                measurement_time: Duration::from_secs(1),
            },
        }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; the stub accepts them silently so
    /// `cargo bench -- <filter>` does not error.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let cfg = self.default_cfg;
        BenchmarkGroup { _parent: self, name: name.into(), cfg }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.default_cfg;
        run_benchmark(&id.to_string(), cfg, f);
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    cfg: MeasurementConfig,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.cfg, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.cfg, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    cfg: MeasurementConfig,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, warming up first, then sampling until the measurement
    /// budget or sample count is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, bounded by the configured time.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let budget = self.cfg.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.cfg.sample_size as u64 && start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        let total = start.elapsed();
        self.mean = Some(total / iters.max(1) as u32);
        self.iters = iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, cfg: MeasurementConfig, mut f: F) {
    // Respect `cargo bench -- <filter>` the way libtest does: skip
    // benchmarks whose name does not contain any given filter substring.
    let filters: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    if !filters.is_empty() && !filters.iter().any(|needle| name.contains(needle.as_str())) {
        return;
    }
    let mut b = Bencher { cfg, mean: None, iters: 0 };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{name:<50} time: [{mean:>12.3?}]  ({} iters)", b.iters),
        None => println!("{name:<50} (no measurement — Bencher::iter never called)"),
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("GMAN").to_string(), "GMAN");
    }
}
