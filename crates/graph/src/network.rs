//! Road-network representation: sensors (nodes) with coordinates, and
//! directed weighted edges carrying road distances.

/// A sensor station on the freeway network.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensor {
    /// Stable id (mirrors the PeMS sensor-id column noted in Table I).
    pub id: u32,
    /// Planar coordinates in kilometres (synthetic networks use a local
    /// projection; only relative distances matter).
    pub x: f64,
    pub y: f64,
}

/// A directed edge `from -> to` with a road distance in kilometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub distance_km: f64,
}

/// A directed road network over `N` sensors.
#[derive(Debug, Clone, Default)]
pub struct RoadNetwork {
    sensors: Vec<Sensor>,
    edges: Vec<Edge>,
}

impl RoadNetwork {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sensor, returning its index.
    pub fn add_sensor(&mut self, id: u32, x: f64, y: f64) -> usize {
        self.sensors.push(Sensor { id, x, y });
        self.sensors.len() - 1
    }

    /// Adds a directed edge. Panics on out-of-range endpoints or
    /// non-positive distance.
    pub fn add_edge(&mut self, from: usize, to: usize, distance_km: f64) {
        assert!(from < self.sensors.len() && to < self.sensors.len(), "edge endpoint out of range");
        assert!(distance_km > 0.0, "edge distance must be positive");
        self.edges.push(Edge { from, to, distance_km });
    }

    /// Number of sensors.
    pub fn num_nodes(&self) -> usize {
        self.sensors.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All sensors.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Straight-line distance between two sensors in km.
    pub fn euclidean(&self, a: usize, b: usize) -> f64 {
        let sa = &self.sensors[a];
        let sb = &self.sensors[b];
        ((sa.x - sb.x).powi(2) + (sa.y - sb.y).powi(2)).sqrt()
    }

    /// Out-neighbour lists (indices into `edges`).
    pub fn out_edges(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_nodes()];
        for (i, e) in self.edges.iter().enumerate() {
            out[e.from].push(i);
        }
        out
    }

    /// Node indices with no incident edges (degenerate sensors).
    pub fn isolated_nodes(&self) -> Vec<usize> {
        let mut touched = vec![false; self.num_nodes()];
        for e in &self.edges {
            touched[e.from] = true;
            touched[e.to] = true;
        }
        touched.iter().enumerate().filter(|(_, &t)| !t).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_network() {
        let mut net = RoadNetwork::new();
        let a = net.add_sensor(100, 0.0, 0.0);
        let b = net.add_sensor(101, 3.0, 4.0);
        net.add_edge(a, b, 5.5);
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_edges(), 1);
        assert!((net.euclidean(a, b) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let mut net = RoadNetwork::new();
        net.add_sensor(1, 0.0, 0.0);
        net.add_edge(0, 3, 1.0);
    }

    #[test]
    fn isolated_detection() {
        let mut net = RoadNetwork::new();
        net.add_sensor(1, 0.0, 0.0);
        net.add_sensor(2, 1.0, 0.0);
        net.add_sensor(3, 2.0, 0.0);
        net.add_edge(0, 1, 1.0);
        assert_eq!(net.isolated_nodes(), vec![2]);
    }

    #[test]
    fn out_edges_grouping() {
        let mut net = RoadNetwork::new();
        for i in 0..3 {
            net.add_sensor(i, i as f64, 0.0);
        }
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(1, 2, 1.0);
        let out = net.out_edges();
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[1].len(), 1);
        assert_eq!(out[2].len(), 0);
    }
}
